//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal wall-clock benchmarking harness with the `criterion` API subset
//! its benches use (see DESIGN.md, substitution 3): `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter`.
//!
//! Methodology: each benchmark is warmed up, then timed for `sample_size`
//! samples (one closure invocation per sample, more for very fast bodies),
//! and the minimum / median / mean per-iteration times are printed. No
//! statistical regression analysis, no HTML reports — numbers on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { name, sample_size: self.sample_size, _criterion: self }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks a closure parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the body to time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording per-iteration wall-clock samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that runs >= ~1 ms
        // per sample so timer resolution does not dominate fast bodies.
        let mut iters_per_sample = 1usize;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:<50} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        sorted.len()
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_runs_groups_and_ids() {
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = quick
        }
        benches();
        assert_eq!(BenchmarkId::new("a", 7).label, "a/7");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
