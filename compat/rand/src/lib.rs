//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a deterministic, dependency-free implementation of exactly the `rand 0.8`
//! API surface the Jellyfish reproduction uses (see DESIGN.md,
//! substitution 3):
//!
//! * [`rngs::StdRng`] — a seedable RNG (xoshiro256++ seeded via SplitMix64,
//!   instead of upstream's ChaCha12; streams therefore differ from upstream
//!   `rand`, but every consumer in this workspace only relies on seeded
//!   determinism, not on specific streams);
//! * [`Rng::gen_range`] over integer and float ranges;
//! * [`Rng::gen`] for `f64`/`bool`/integer primitives;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! All sampling is fully deterministic given the seed, across platforms and
//! thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Statistically strong enough for randomized-construction and
    /// property-test use; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply rejection sampling (Lemire): unbiased and cheap.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let m = (v as u128) * (span as u128);
            ((m >> 64) as u64, m as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`gen_range(0..n)`, `gen_range(0.0..x)`…).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Uniform sample of a primitive (`gen::<f64>()` is uniform in [0, 1)).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 1000 uniforms is close to 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input in order");
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
