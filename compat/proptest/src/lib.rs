//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a dependency-free property-testing harness with the `proptest` surface the
//! Jellyfish reproduction's tests use (see DESIGN.md, substitution 3):
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header and `arg in strategy` bindings;
//! * strategies: integer and float ranges, [`any`], tuples of strategies, and
//!   [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics with
//! the assertion message immediately. Case generation is deterministic — the
//! RNG is seeded from the test function's name — so failures reproduce
//! exactly on re-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not produce a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// Deterministic RNG for case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Marker for types [`any`] can generate.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (see [`any`]).
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).max(1024),
                            "{}: too many rejected cases ({} accepted)",
                            stringify!($name),
                            accepted
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("{} failed after {} passing cases: {}", stringify!($name), accepted, msg);
                    }
                }
            }
        }
    )*};
}

/// Assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Precondition inside a [`proptest!`] body: rejects the case when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in 0.0f64..1.0, c in any::<u64>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            let _ = c;
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }

        #[test]
        fn tuples_and_vecs(ops in crate::collection::vec((0usize..5, any::<bool>()), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for (v, _flag) in ops {
                prop_assert!(v < 5);
            }
        }
    }

    #[test]
    fn deterministic_rng_streams() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(TestRng::deterministic("x").next_u64(), c.next_u64());
    }

    proptest! {
        // Deliberately not marked #[test]: invoked by the should_panic check.
        fn always_fails(n in 0usize..10) {
            prop_assert!(n > 100, "n = {n} is not large");
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        always_fails();
    }
}
