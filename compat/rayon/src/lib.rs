//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a dependency-free data-parallelism shim with the `rayon` API subset the
//! Jellyfish reproduction uses (see DESIGN.md, substitution 3):
//! `par_iter()` / `into_par_iter()`, `map`, `collect`, `for_each`.
//!
//! Semantics match rayon where it matters for this workspace:
//!
//! * **Order preservation** — `collect()` yields results in input order, so a
//!   parallel sweep is item-for-item identical to the serial loop;
//! * **Deterministic results** regardless of thread count or scheduling:
//!   items never observe each other, and reduction order is the input order;
//! * **Load balancing** — workers claim items from a shared atomic counter,
//!   so an expensive item does not serialize the rest of the batch.
//!
//! The implementation is eager (the whole input is materialized, then
//! processed on `std::thread::scope` workers), which is fine at the
//! granularity this workspace parallelizes: per-source BFS sweeps, per-pair
//! path computations, per-figure-point solver runs. With a single available
//! core the shim degrades to a plain serial loop with no thread overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a caller needs to write `x.par_iter().map(f).collect()`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads used for parallel batches.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn run_parallel<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item claimed twice");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("worker skipped an item"))
        .collect()
}

/// A parallel iterator: an eager pipeline over an owned batch of items.
pub trait ParallelIterator: Sized {
    /// The element type this stage produces.
    type Item: Send;

    /// Evaluates the pipeline and returns the results in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the results, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Runs `f` on every item in parallel (no result).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = Map { base: self, f: |x| f(x) }.drive();
    }

    /// Sums the items in input order (deterministic also for floats).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }
}

/// Source stage over an owned `Vec` (or anything converted into one).
pub struct IntoIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// A `map` stage.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        run_parallel(self.base.drive(), &self.f)
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoIter<T>;

    fn into_par_iter(self) -> IntoIter<T> {
        IntoIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IntoIter<usize>;

    fn into_par_iter(self) -> IntoIter<usize> {
        IntoIter { items: self.collect() }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing parallel iterator (`slice.par_iter()`).
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoIter<&'a T>;

    fn par_iter(&'a self) -> IntoIter<&'a T> {
        IntoIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoIter<&'a T>;

    fn par_iter(&'a self) -> IntoIter<&'a T> {
        IntoIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = data.par_iter().map(|&x| x + 10).collect();
        assert_eq!(out, vec![11, 12, 13, 14]);
        assert_eq!(data.len(), 4, "input still usable after par_iter");
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        // Items with wildly different costs still come back in order.
        let out: Vec<usize> = (0..64)
            .into_par_iter()
            .map(|i| {
                if i % 7 == 0 {
                    (0..(i * 1000)).fold(0usize, usize::wrapping_add) % 2 + i
                } else {
                    i
                }
            })
            .collect();
        for (i, &v) in out.iter().enumerate() {
            assert!(v == i || v == i + 1);
        }
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        (0..100).into_par_iter().for_each(|i| {
            counter.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(counter.into_inner(), 99 * 100 / 2);
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> =
            (0..5).into_par_iter().map(|i| i + 1).map(|i| i.to_string()).collect();
        assert_eq!(out, vec!["1", "2", "3", "4", "5"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn sum_is_deterministic() {
        let a: f64 = (0..1000).into_par_iter().map(|i| (i as f64).sqrt()).sum();
        let b: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
        assert_eq!(a, b);
    }
}
