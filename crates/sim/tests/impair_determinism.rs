//! Property tests pinning down the determinism contract of the impairment
//! layer: a packet's fate is a pure function of the impairment config, the
//! impairment seed, and that link's own packet history — never of wall
//! clock, traffic on other links, or how work is sharded. This is what lets
//! `figures run --shard K/N` and `figures launch` reproduce an impaired
//! single-process run bit for bit.

use jellyfish_sim::engine::{SimConfig, Simulator};
use jellyfish_sim::impair::stream_seed;
use jellyfish_sim::net::{LinkParams, Network};
use jellyfish_sim::routing::{PathPolicy, TransportPolicy};
use jellyfish_sim::workload::build_connections;
use jellyfish_topology::spec::{ImpairConfig, JitterDist};
use jellyfish_topology::JellyfishBuilder;
use jellyfish_traffic::{ServerMap, TrafficMatrix};
use proptest::prelude::*;

/// Maps primitive draws to a valid [`ImpairConfig`] spanning every knob
/// (the vendored proptest has no `prop_map`, so the mapping is explicit).
/// `ge_on`/`jdist_exp` are 0/1 selectors; `queue_sel < 4` means no queue
/// override (4 is the smallest override the strategy produces).
fn cfg_from(
    (loss, jitter_ms, reorder, duplicate): (f64, f64, f64, f64),
    (ge_on, jdist_exp, queue_sel): (usize, usize, usize),
    (ge_p, ge_r): (f64, f64),
) -> ImpairConfig {
    ImpairConfig {
        loss,
        ge_good_to_bad: if ge_on == 1 { ge_p } else { 0.0 },
        ge_bad_to_good: if ge_on == 1 { ge_r } else { 0.0 },
        jitter_ms,
        jitter_dist: if jdist_exp == 1 { JitterDist::Exp } else { JitterDist::Uniform },
        reorder,
        duplicate,
        queue: if queue_sel < 4 { None } else { Some(queue_sel) },
    }
}

/// The knob strategies behind [`cfg_from`]'s three tuples.
fn knobs(
) -> (core::ops::Range<f64>, core::ops::Range<f64>, core::ops::Range<f64>, core::ops::Range<f64>) {
    (0.0..0.3, 0.0..10.0, 0.0..0.2, 0.0..0.2)
}

fn kinds() -> (core::ops::Range<usize>, core::ops::Range<usize>, core::ops::Range<usize>) {
    (0..2, 0..2, 0..64)
}

fn ge_probs() -> (core::ops::Range<f64>, core::ops::Range<f64>) {
    (0.01..0.2, 0.05..0.5)
}

fn impaired_network(cfg: ImpairConfig, impair_seed: u64) -> Network {
    let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
    let servers = ServerMap::new(&topo);
    Network::build(&topo.csr(), &servers, LinkParams::default()).with_impairment(cfg, impair_seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two networks built from the same `(config, seed)` hand every packet
    /// the same fate: the outcome sequence of an identical transmit schedule
    /// is identical, drop for drop and jitter for jitter.
    #[test]
    fn same_config_and_seed_reproduce_every_outcome(
        k in knobs(),
        sel in kinds(),
        ge in ge_probs(),
        seed in any::<u64>(),
    ) {
        let cfg = cfg_from(k, sel, ge);
        let mut a = impaired_network(cfg, seed);
        let mut b = impaired_network(cfg, seed);
        let (u, v) = (a.host_node(0), 0);
        for i in 0..300 {
            let now = i as f64 * 0.004;
            prop_assert_eq!(a.transmit(u, v, now), b.transmit(u, v, now), "packet {}", i);
        }
        prop_assert_eq!(a.total_wire_losses(), b.total_wire_losses());
        prop_assert_eq!(a.total_drops(), b.total_drops());
    }

    /// A link's impairment stream is blind to traffic elsewhere: packets on
    /// one link see the same fates whether or not another link carries
    /// traffic in between. (This per-link independence is why sharding the
    /// work items cannot change any packet's fate.)
    #[test]
    fn a_links_fates_ignore_traffic_on_other_links(
        k in knobs(),
        sel in kinds(),
        ge in ge_probs(),
        seed in any::<u64>(),
    ) {
        let cfg = cfg_from(k, sel, ge);
        let mut interleaved = impaired_network(cfg, seed);
        let mut solo = impaired_network(cfg, seed);
        // Observed link: host 0's uplink. Background traffic: host 0's
        // downlink — a distinct directed link with its own stream.
        let (u, v) = (interleaved.host_node(0), 0);
        for i in 0..200 {
            let now = i as f64 * 0.004;
            interleaved.transmit(v, u, now);
            let a = interleaved.transmit(u, v, now);
            let b = solo.transmit(u, v, now);
            prop_assert_eq!(a, b, "packet {}", i);
        }
    }

    /// Per-link stream seeds are distinct under any impairment seed (the
    /// splitmix-style spread keeps neighbouring link keys uncorrelated).
    #[test]
    fn stream_seeds_are_distinct_across_links(seed in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for key in 0..512usize {
            prop_assert!(seen.insert(stream_seed(seed, key)), "key {} collides", key);
        }
    }
}

proptest! {
    // Full engine runs are the expensive property: a handful of cases is
    // plenty — each one covers thousands of per-packet draws.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// An impaired end-to-end simulation is bit-reproducible: two runs from
    /// the same seeds produce identical reports, down to every per-flow
    /// throughput, RTT sample and drop counter (compared through their full
    /// `Debug` rendering, which includes all of them).
    #[test]
    fn impaired_simulation_reports_are_bit_identical(
        k in knobs(),
        sel in kinds(),
        ge in ge_probs(),
        seed in 0u64..1_000,
    ) {
        let cfg = cfg_from(k, sel, ge);
        let run = || {
            let topo = JellyfishBuilder::new(6, 6, 3).seed(seed).build().unwrap();
            let servers = ServerMap::new(&topo);
            let csr = topo.csr();
            let tm = TrafficMatrix::random_permutation(&servers, seed ^ 0xABCD);
            let conns = build_connections(
                &csr,
                &servers,
                &tm,
                PathPolicy::ksp8(),
                TransportPolicy::Mptcp { subflows: 8 },
                seed,
            );
            let net = Network::build(&csr, &servers, LinkParams::default())
                .with_impairment(cfg, seed ^ 0x1417);
            let config = SimConfig { duration: 3.0, warmup: 0.75, seed, ..Default::default() };
            Simulator::new(net, conns, config).run()
        };
        prop_assert_eq!(format!("{:?}", run()), format!("{:?}", run()));
    }
}
