//! MPTCP coupled congestion control: the Linked-Increases Algorithm (LIA)
//! of Wischik et al. (NSDI 2011), which the paper uses with 8 subflows.
//!
//! Each subflow runs the normal TCP machinery (loss detection, halving,
//! slow start) from [`crate::tcp`], but the congestion-avoidance *increase*
//! is coupled across the connection's subflows so that the aggregate is no
//! more aggressive than a single TCP flow on the best path, while traffic
//! shifts away from congested paths:
//!
//! ```text
//! per-ACK increase on subflow r = min( α / cwnd_total , 1 / cwnd_r )
//! α = cwnd_total · max_i(cwnd_i / rtt_i²) / ( Σ_i cwnd_i / rtt_i )²
//! ```

/// Computes LIA's α for a connection, given each subflow's congestion window
/// (segments) and smoothed RTT (time units). Subflows with a non-positive
/// window or RTT are ignored. Returns 0 when no subflow is usable.
pub fn lia_alpha(cwnds: &[f64], rtts: &[f64]) -> f64 {
    assert_eq!(cwnds.len(), rtts.len());
    let total: f64 =
        cwnds.iter().zip(rtts).filter(|(&c, &r)| c > 0.0 && r > 0.0).map(|(&c, _)| c).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let max_term = cwnds
        .iter()
        .zip(rtts)
        .filter(|(&c, &r)| c > 0.0 && r > 0.0)
        .map(|(&c, &r)| c / (r * r))
        .fold(0.0f64, f64::max);
    let sum_term: f64 =
        cwnds.iter().zip(rtts).filter(|(&c, &r)| c > 0.0 && r > 0.0).map(|(&c, &r)| c / r).sum();
    if sum_term <= 0.0 {
        return 0.0;
    }
    total * max_term / (sum_term * sum_term)
}

/// The per-ACK congestion-avoidance increase for subflow `r` under LIA.
///
/// This is what gets passed as `increase_per_segment` to
/// [`crate::tcp::TcpSender::on_ack`]. It is capped at the uncoupled TCP
/// increase `1 / cwnd_r`, so a multipath connection is never more aggressive
/// on a path than a plain TCP flow would be.
pub fn lia_increase_per_ack(cwnds: &[f64], rtts: &[f64], r: usize) -> f64 {
    let total: f64 = cwnds.iter().filter(|&&c| c > 0.0).sum();
    if total <= 0.0 || cwnds[r] <= 0.0 {
        return 0.0;
    }
    let alpha = lia_alpha(cwnds, rtts);
    (alpha / total).min(1.0 / cwnds[r])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_subflow_reduces_to_reno() {
        // With one subflow, α = cwnd·(c/r²)/(c/r)² = 1, so the increase is
        // min(1/cwnd, 1/cwnd) = 1/cwnd: plain TCP.
        let cwnds = [10.0];
        let rtts = [0.1];
        assert!((lia_alpha(&cwnds, &rtts) - 1.0).abs() < 1e-12);
        assert!((lia_increase_per_ack(&cwnds, &rtts, 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn equal_subflows_get_the_rfc_increase() {
        // n equal subflows on equal-RTT paths: α = 1/n (RFC 6356), so the
        // per-ACK increase on each subflow is α/cwnd_total = 1/(n²·cwnd),
        // strictly less aggressive than an uncoupled TCP flow's 1/cwnd.
        let n = 8usize;
        let c = 5.0;
        let cwnds = vec![c; n];
        let rtts = vec![0.2; n];
        let per_ack = lia_increase_per_ack(&cwnds, &rtts, 0);
        let expected = 1.0 / (n as f64 * n as f64 * c);
        assert!((per_ack - expected).abs() < 1e-12, "per-ack increase {per_ack}");
        assert!(per_ack < 1.0 / c);
    }

    #[test]
    fn increase_capped_by_uncoupled_tcp() {
        // A tiny subflow next to a huge one: its increase must not exceed
        // 1/cwnd_r (it would otherwise overshoot), and the huge subflow's
        // increase must be far below its uncoupled value.
        let cwnds = [1.0, 100.0];
        let rtts = [0.1, 0.1];
        let small = lia_increase_per_ack(&cwnds, &rtts, 0);
        assert!(small <= 1.0 / 1.0 + 1e-12);
        let large = lia_increase_per_ack(&cwnds, &rtts, 1);
        assert!(large < 1.0 / 100.0);
    }

    #[test]
    fn shorter_rtt_paths_get_larger_alpha_share() {
        // LIA favours paths with lower RTT (higher cwnd/rtt²): with one fast
        // and one slow path of equal windows, α exceeds the equal-RTT value.
        let equal = lia_alpha(&[10.0, 10.0], &[0.1, 0.1]);
        let skewed = lia_alpha(&[10.0, 10.0], &[0.05, 0.2]);
        assert!(skewed > equal);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(lia_alpha(&[], &[]), 0.0);
        assert_eq!(lia_alpha(&[0.0, 0.0], &[0.1, 0.1]), 0.0);
        assert_eq!(lia_increase_per_ack(&[0.0, 5.0], &[0.1, 0.1], 0), 0.0);
        // A subflow with zero RTT (no sample yet) is ignored, not a NaN source.
        let a = lia_alpha(&[5.0, 5.0], &[0.0, 0.1]);
        assert!(a.is_finite());
    }

    #[test]
    fn alpha_scales_total_increase_not_per_flow_fairness() {
        // Sanity: α for n equal subflows equals 1/n of the single-flow α
        // times n... concretely α = 1/n for equal windows and RTTs.
        for n in [2usize, 4, 8] {
            let cwnds = vec![7.0; n];
            let rtts = vec![0.15; n];
            let alpha = lia_alpha(&cwnds, &rtts);
            assert!((alpha - 1.0 / n as f64).abs() < 1e-9, "n={n}: alpha={alpha}");
        }
    }
}
