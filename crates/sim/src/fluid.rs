//! A fluid (flow-level) engine: max-min fair rate allocation over the
//! subflows' fixed paths.
//!
//! Every subflow is treated as a fluid flow pinned to its path; link
//! capacities include the host access links, so a connection's aggregate
//! rate can never exceed its NIC. The allocation is the classic max-min fair
//! water-filling: repeatedly find the most-constrained link, give every
//! unfrozen flow crossing it an equal share of the remaining capacity, and
//! freeze those flows.
//!
//! Links are assigned dense indices in first-seen order over the subflow
//! paths, and the water-filling loop scans flat vectors in index order —
//! ties between equally constrained links always break the same way, so the
//! allocation is deterministic across runs and platforms (the previous
//! `HashMap` formulation could break ties by hasher state).
//!
//! This is a good approximation of many long-lived TCP flows sharing a
//! network (and a slightly optimistic approximation of MPTCP's resource
//! pooling); the packet engine in [`crate::engine`] is the ground truth the
//! fluid engine is cross-checked against in the integration tests. Figures
//! that sweep hundreds of topology sizes use this engine.

use crate::net::SimNode;
use crate::workload::Connection;
use std::collections::HashMap;

/// Result of a fluid allocation.
#[derive(Debug, Clone)]
pub struct FluidReport {
    /// Per-connection normalized throughput (fraction of the NIC rate).
    pub throughputs: Vec<f64>,
    /// Per-directed-link utilization in `[0, 1]`.
    pub link_utilization: HashMap<(SimNode, SimNode), f64>,
}

impl FluidReport {
    /// Mean normalized throughput across connections.
    pub fn mean_throughput(&self) -> f64 {
        if self.throughputs.is_empty() {
            return 0.0;
        }
        self.throughputs.iter().sum::<f64>() / self.throughputs.len() as f64
    }

    /// Minimum normalized throughput across connections.
    pub fn min_throughput(&self) -> f64 {
        self.throughputs.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Computes the max-min fair allocation for the given connections. All links
/// a subflow path traverses (switch-to-switch and host access) have capacity
/// 1.0 (one NIC rate).
pub fn max_min_fair_allocation(connections: &[Connection]) -> FluidReport {
    // Dense link ids in first-seen order; flows hold link-id lists.
    let mut link_ids: HashMap<(SimNode, SimNode), usize> = HashMap::new();
    let mut link_keys: Vec<(SimNode, SimNode)> = Vec::new();
    struct FluidFlow {
        conn: usize,
        links: Vec<usize>,
        rate: f64,
        frozen: bool,
    }
    let mut flows: Vec<FluidFlow> = Vec::new();
    for (ci, c) in connections.iter().enumerate() {
        for path in &c.subflow_paths {
            let links: Vec<usize> = path
                .windows(2)
                .map(|w| {
                    *link_ids.entry((w[0], w[1])).or_insert_with(|| {
                        link_keys.push((w[0], w[1]));
                        link_keys.len() - 1
                    })
                })
                .collect();
            flows.push(FluidFlow { conn: ci, links, rate: 0.0, frozen: false });
        }
    }
    let num_links = link_keys.len();
    let mut crossing: Vec<Vec<usize>> = vec![Vec::new(); num_links];
    for (fi, f) in flows.iter().enumerate() {
        for &l in &f.links {
            crossing[l].push(fi);
        }
    }

    // Water-filling over flat vectors, scanning links in id order.
    let mut remaining = vec![1.0f64; num_links];
    loop {
        let mut bottleneck: Option<(usize, f64)> = None;
        for (link, flow_ids) in crossing.iter().enumerate() {
            let unfrozen = flow_ids.iter().filter(|&&fi| !flows[fi].frozen).count();
            if unfrozen == 0 {
                continue;
            }
            let share = remaining[link] / unfrozen as f64;
            if bottleneck.is_none_or(|(_, s)| share < s) {
                bottleneck = Some((link, share));
            }
        }
        let Some((link, share)) = bottleneck else {
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at the share.
        let to_freeze: Vec<usize> =
            crossing[link].iter().copied().filter(|&fi| !flows[fi].frozen).collect();
        for fi in to_freeze {
            flows[fi].frozen = true;
            flows[fi].rate = share;
            for &l in &flows[fi].links {
                remaining[l] -= share;
            }
        }
    }

    // Aggregate subflow rates per connection; the host access links already
    // cap the aggregate at 1.0, but clamp for numeric safety.
    let mut throughputs = vec![0.0f64; connections.len()];
    for f in &flows {
        throughputs[f.conn] += f.rate;
    }
    for t in &mut throughputs {
        *t = t.min(1.0);
    }
    let link_utilization = link_keys
        .iter()
        .enumerate()
        .map(|(l, &key)| (key, (1.0 - remaining[l]).clamp(0.0, 1.0)))
        .collect();
    FluidReport { throughputs, link_utilization }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{PathPolicy, TransportPolicy};
    use crate::workload::build_connections;
    use jellyfish_topology::{Graph, JellyfishBuilder, Topology};
    use jellyfish_traffic::{Flow, ServerMap, TrafficMatrix};

    fn two_switch_topo() -> Topology {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        Topology::homogeneous(g, 4, 2)
    }

    #[test]
    fn single_flow_gets_full_nic() {
        let topo = two_switch_topo();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::from_flows(
            vec![Flow { src: 0, dst: 2, demand: 1.0 }],
            servers.num_servers(),
            "one",
        );
        let conns = build_connections(
            &topo.csr(),
            &servers,
            &tm,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 1 },
            1,
        );
        let report = max_min_fair_allocation(&conns);
        assert_eq!(report.throughputs.len(), 1);
        assert!((report.throughputs[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_bottleneck_equally() {
        let topo = two_switch_topo();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::from_flows(
            vec![Flow { src: 0, dst: 2, demand: 1.0 }, Flow { src: 1, dst: 3, demand: 1.0 }],
            servers.num_servers(),
            "two",
        );
        let conns = build_connections(
            &topo.csr(),
            &servers,
            &tm,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 1 },
            1,
        );
        let report = max_min_fair_allocation(&conns);
        assert!((report.throughputs[0] - 0.5).abs() < 1e-9);
        assert!((report.throughputs[1] - 0.5).abs() < 1e-9);
        // The inter-switch link is fully utilized.
        assert!((report.link_utilization[&(0, 1)] - 1.0).abs() < 1e-9);
        assert!((report.mean_throughput() - 0.5).abs() < 1e-9);
        assert!((report.min_throughput() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multiple_subflows_cannot_exceed_the_nic() {
        let topo = two_switch_topo();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::from_flows(
            vec![Flow { src: 0, dst: 2, demand: 1.0 }],
            servers.num_servers(),
            "multi",
        );
        let conns = build_connections(
            &topo.csr(),
            &servers,
            &tm,
            PathPolicy::ksp8(),
            TransportPolicy::Mptcp { subflows: 8 },
            1,
        );
        let report = max_min_fair_allocation(&conns);
        assert!(report.throughputs[0] <= 1.0 + 1e-9);
        assert!(report.throughputs[0] > 0.99);
    }

    #[test]
    fn ksp_reaches_capacity_that_ecmp_leaves_idle() {
        // The §5 / Figure 9 effect in fluid form: under ECMP (shortest paths
        // only) a sizeable share of the inter-switch links carries no traffic
        // at all, while 8-shortest-path routing touches nearly every link and
        // no connection is left starved.
        let topo = JellyfishBuilder::new(20, 9, 4).seed(6).build().unwrap();
        let servers = ServerMap::new(&topo);
        let csr = topo.csr();
        let tm = TrafficMatrix::random_permutation(&servers, 3);
        let ecmp = build_connections(
            &csr,
            &servers,
            &tm,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 1 },
            2,
        );
        let ksp = build_connections(
            &csr,
            &servers,
            &tm,
            PathPolicy::ksp8(),
            TransportPolicy::Mptcp { subflows: 8 },
            2,
        );
        let ecmp_report = max_min_fair_allocation(&ecmp);
        let ksp_report = max_min_fair_allocation(&ksp);
        let switch_links_used = |r: &FluidReport| {
            r.link_utilization
                .iter()
                .filter(|(&(u, v), &util)| u < 20 && v < 20 && util > 1e-9)
                .count()
        };
        assert!(
            switch_links_used(&ksp_report) > switch_links_used(&ecmp_report),
            "ksp touches {} switch links vs ecmp {}",
            switch_links_used(&ksp_report),
            switch_links_used(&ecmp_report)
        );
        // No connection is starved under either scheme.
        assert!(ksp_report.min_throughput() > 0.0);
        assert!(ecmp_report.min_throughput() > 0.0);
    }

    #[test]
    fn empty_connection_list() {
        let report = max_min_fair_allocation(&[]);
        assert!(report.throughputs.is_empty());
        assert_eq!(report.mean_throughput(), 0.0);
    }

    #[test]
    fn utilization_bounded() {
        let topo = JellyfishBuilder::new(15, 8, 4).seed(9).build().unwrap();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, 5);
        let conns = build_connections(
            &topo.csr(),
            &servers,
            &tm,
            PathPolicy::ksp8(),
            TransportPolicy::Tcp { flows: 8 },
            4,
        );
        let report = max_min_fair_allocation(&conns);
        for (&link, &u) in &report.link_utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "link {link:?} utilization {u}");
        }
        for &t in &report.throughputs {
            assert!(t > 0.0 && t <= 1.0 + 1e-9);
        }
    }
}
