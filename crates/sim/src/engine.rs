//! The discrete-event simulation engine.
//!
//! Connections are long-lived (infinitely backlogged) transfers, started with
//! a small random jitter to avoid phase effects, and measured after a warmup
//! period: a connection's goodput is the number of segments acknowledged
//! during the measurement window divided by what its NIC could have sent in
//! that window, which is exactly the paper's "% of the servers' NIC rate".

use crate::mptcp::lia_increase_per_ack;
use crate::net::{LinkParams, Network, Packet, SimNode, TransmitOutcome};
use crate::tcp::{AckAction, TcpReceiver, TcpSender};
use crate::workload::Connection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Relative size of an acknowledgement compared to a full data segment.
const ACK_SIZE: f64 = 0.05;

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Parameters of every link (rate, delay, buffer).
    pub link: LinkParams,
    /// Total simulated time.
    pub duration: f64,
    /// Warmup time excluded from throughput measurement.
    pub warmup: f64,
    /// Initial congestion window (segments).
    pub initial_cwnd: f64,
    /// Initial retransmission timeout before any RTT sample.
    pub initial_rto: f64,
    /// RNG seed for start-time jitter.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link: LinkParams::default(),
            duration: 10.0,
            warmup: 2.0,
            initial_cwnd: 2.0,
            initial_rto: 0.5,
            seed: 1,
        }
    }
}

/// Per-connection result.
#[derive(Debug, Clone, Copy)]
pub struct ConnectionStats {
    /// Sending server id.
    pub src_server: usize,
    /// Receiving server id.
    pub dst_server: usize,
    /// Goodput as a fraction of the NIC rate over the measurement window.
    pub normalized_throughput: f64,
}

/// Aggregate simulation report.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-connection statistics.
    pub connections: Vec<ConnectionStats>,
    /// Total packets dropped in the fabric.
    pub drops: u64,
    /// Total packets transmitted in the fabric.
    pub transmitted: u64,
    /// Karn-filtered RTT samples observed after warmup, in event order
    /// (never-retransmitted segments only), for latency histograms.
    pub rtt_samples: Vec<f64>,
}

impl SimReport {
    /// Mean normalized throughput across connections (the Table 1 metric).
    pub fn mean_throughput(&self) -> f64 {
        if self.connections.is_empty() {
            return 0.0;
        }
        self.connections.iter().map(|c| c.normalized_throughput).sum::<f64>()
            / self.connections.len() as f64
    }

    /// Per-connection normalized throughputs, sorted ascending (Figure 13).
    pub fn sorted_throughputs(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.connections.iter().map(|c| c.normalized_throughput).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

/// One subflow's runtime state.
struct Subflow {
    sender: TcpSender,
    receiver: TcpReceiver,
    forward: Vec<SimNode>,
    reverse: Vec<SimNode>,
    /// Send timestamps for RTT sampling (Karn's rule: cleared on retransmit).
    send_times: HashMap<u64, f64>,
    /// Segments acknowledged at the end of warmup.
    delivered_at_warmup: u64,
}

struct ConnState {
    src_server: usize,
    dst_server: usize,
    coupled: bool,
    subflows: Vec<Subflow>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrive(Packet),
    TimeoutCheck { conn: usize, subflow: usize },
    WarmupSnapshot,
}

/// Total-ordered event key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64, u64);

impl Eq for TimeKey {}
impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal).then(self.1.cmp(&other.1))
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    network: Network,
    config: SimConfig,
    connections: Vec<ConnState>,
    events: BinaryHeap<Reverse<(TimeKey, EventBox)>>,
    event_counter: u64,
    now: f64,
    rtt_samples: Vec<f64>,
}

/// Wrapper so events can live in the heap without an Ord requirement of
/// their own (ordering is entirely by the TimeKey).
#[derive(Debug, Clone, Copy, PartialEq)]
struct EventBox(Event);
impl Eq for EventBox {}
impl PartialOrd for EventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventBox {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl Simulator {
    /// Creates a simulator for the given network and connections.
    pub fn new(network: Network, connections: Vec<Connection>, config: SimConfig) -> Self {
        let conn_states = connections
            .into_iter()
            .map(|c| ConnState {
                src_server: c.src_server,
                dst_server: c.dst_server,
                coupled: c.coupled,
                subflows: c
                    .subflow_paths
                    .into_iter()
                    .map(|forward| {
                        let reverse: Vec<SimNode> = forward.iter().rev().copied().collect();
                        Subflow {
                            sender: TcpSender::new(config.initial_cwnd, config.initial_rto),
                            receiver: TcpReceiver::new(),
                            forward,
                            reverse,
                            send_times: HashMap::new(),
                            delivered_at_warmup: 0,
                        }
                    })
                    .collect(),
            })
            .collect();
        Simulator {
            network,
            config,
            connections: conn_states,
            events: BinaryHeap::new(),
            event_counter: 0,
            now: 0.0,
            rtt_samples: Vec::new(),
        }
    }

    fn schedule(&mut self, time: f64, event: Event) {
        self.event_counter += 1;
        self.events.push(Reverse((TimeKey(time, self.event_counter), EventBox(event))));
    }

    /// Runs the simulation to completion and reports per-connection goodput.
    pub fn run(mut self) -> SimReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // Start every subflow with a small jitter.
        for conn in 0..self.connections.len() {
            for sub in 0..self.connections[conn].subflows.len() {
                let start: f64 = rng.gen_range(0.0..0.05);
                self.now = start;
                self.pump_new_data(conn, sub);
                let rto = self.connections[conn].subflows[sub].sender.rto;
                self.schedule(start + rto, Event::TimeoutCheck { conn, subflow: sub });
            }
        }
        self.now = 0.0;
        self.schedule(self.config.warmup, Event::WarmupSnapshot);

        while let Some(Reverse((TimeKey(time, _), EventBox(event)))) = self.events.pop() {
            if time > self.config.duration {
                break;
            }
            self.now = time;
            match event {
                Event::Arrive(pkt) => self.handle_arrival(pkt),
                Event::TimeoutCheck { conn, subflow } => self.handle_timeout_check(conn, subflow),
                Event::WarmupSnapshot => {
                    for c in &mut self.connections {
                        for s in &mut c.subflows {
                            s.delivered_at_warmup = s.sender.delivered;
                        }
                    }
                }
            }
        }

        let window = self.config.duration - self.config.warmup;
        let nic_segments = self.config.link.rate * window;
        let connections = self
            .connections
            .iter()
            .map(|c| {
                let delivered: u64 = c
                    .subflows
                    .iter()
                    .map(|s| s.sender.delivered.saturating_sub(s.delivered_at_warmup))
                    .sum();
                ConnectionStats {
                    src_server: c.src_server,
                    dst_server: c.dst_server,
                    normalized_throughput: (delivered as f64 / nic_segments).min(1.0),
                }
            })
            .collect();
        SimReport {
            connections,
            drops: self.network.total_drops(),
            transmitted: self.network.total_transmitted(),
            rtt_samples: self.rtt_samples,
        }
    }

    /// Sends as many new segments as the window allows on a subflow.
    fn pump_new_data(&mut self, conn: usize, sub: usize) {
        loop {
            let sf = &mut self.connections[conn].subflows[sub];
            if !sf.sender.can_send() {
                break;
            }
            let seq = sf.sender.on_send(self.now);
            sf.send_times.insert(seq, self.now);
            self.inject_data(conn, sub, seq);
        }
    }

    /// Puts a data segment onto the first link of the subflow's forward path.
    fn inject_data(&mut self, conn: usize, sub: usize, seq: u64) {
        let (u, v) = {
            let f = &self.connections[conn].subflows[sub].forward;
            (f[0], f[1])
        };
        let pkt = Packet { conn, subflow: sub, seq, ack: 0, is_ack: false, hop: 1 };
        match self.network.transmit_sized(u, v, self.now, 1.0) {
            TransmitOutcome::Delivered { arrival } => {
                self.schedule(arrival, Event::Arrive(pkt));
            }
            TransmitOutcome::Duplicated { arrival, dup_arrival } => {
                self.schedule(arrival, Event::Arrive(pkt));
                self.schedule(dup_arrival, Event::Arrive(pkt));
            }
            TransmitOutcome::Dropped | TransmitOutcome::NoLink => {
                // Lost on the host uplink (or the uplink is gone entirely);
                // recovery will resend it.
            }
        }
    }

    /// Handles a packet arriving at the node at index `hop` of its path.
    fn handle_arrival(&mut self, pkt: Packet) {
        let path_len = {
            let sf = &self.connections[pkt.conn].subflows[pkt.subflow];
            if pkt.is_ack {
                sf.reverse.len()
            } else {
                sf.forward.len()
            }
        };
        if pkt.hop + 1 == path_len {
            // Reached the end of its path.
            if pkt.is_ack {
                self.handle_ack(pkt);
            } else {
                self.handle_data_delivery(pkt);
            }
            return;
        }
        // Forward to the next hop.
        let (u, v) = {
            let sf = &self.connections[pkt.conn].subflows[pkt.subflow];
            let path = if pkt.is_ack { &sf.reverse } else { &sf.forward };
            (path[pkt.hop], path[pkt.hop + 1])
        };
        let size = if pkt.is_ack { ACK_SIZE } else { 1.0 };
        let next = Packet { hop: pkt.hop + 1, ..pkt };
        match self.network.transmit_sized(u, v, self.now, size) {
            TransmitOutcome::Delivered { arrival } => {
                self.schedule(arrival, Event::Arrive(next));
            }
            TransmitOutcome::Duplicated { arrival, dup_arrival } => {
                self.schedule(arrival, Event::Arrive(next));
                self.schedule(dup_arrival, Event::Arrive(next));
            }
            TransmitOutcome::Dropped | TransmitOutcome::NoLink => {
                // Silently lost (or the next hop's link no longer exists);
                // the sender recovers via dupacks or RTO.
            }
        }
    }

    /// Data segment reached the destination host: update the receiver and
    /// send a cumulative ACK back along the reverse path.
    fn handle_data_delivery(&mut self, pkt: Packet) {
        let ack_value = {
            let sf = &mut self.connections[pkt.conn].subflows[pkt.subflow];
            sf.receiver.on_data(pkt.seq)
        };
        let (u, v) = {
            let sf = &self.connections[pkt.conn].subflows[pkt.subflow];
            (sf.reverse[0], sf.reverse[1])
        };
        let ack_pkt = Packet {
            conn: pkt.conn,
            subflow: pkt.subflow,
            seq: pkt.seq,
            ack: ack_value,
            is_ack: true,
            hop: 1,
        };
        match self.network.transmit_sized(u, v, self.now, ACK_SIZE) {
            TransmitOutcome::Delivered { arrival } => {
                self.schedule(arrival, Event::Arrive(ack_pkt));
            }
            TransmitOutcome::Duplicated { arrival, dup_arrival } => {
                self.schedule(arrival, Event::Arrive(ack_pkt));
                self.schedule(dup_arrival, Event::Arrive(ack_pkt));
            }
            TransmitOutcome::Dropped | TransmitOutcome::NoLink => {}
        }
    }

    /// ACK reached the sender: run the congestion-control state machine.
    fn handle_ack(&mut self, pkt: Packet) {
        let increase = self.increase_for(pkt.conn, pkt.subflow);
        let action = {
            let sf = &mut self.connections[pkt.conn].subflows[pkt.subflow];
            // RTT sample only for segments never retransmitted (Karn's rule):
            // send_times entries are removed when a segment is retransmitted.
            let rtt_sample = sf.send_times.get(&pkt.seq).map(|&t| self.now - t);
            sf.send_times.remove(&pkt.seq);
            // Collect post-warmup samples for the latency-histogram
            // experiments; recording does not perturb the simulation.
            if self.now >= self.config.warmup {
                if let Some(rtt) = rtt_sample {
                    self.rtt_samples.push(rtt);
                }
            }
            sf.sender.on_ack(pkt.ack, self.now, rtt_sample, increase)
        };
        match action {
            AckAction::NewData { .. } => {
                // NewReno-style partial-ACK handling: while still in fast
                // recovery, the ACK points at the next missing segment —
                // retransmit it immediately instead of waiting for the RTO.
                let partial = {
                    let s = &self.connections[pkt.conn].subflows[pkt.subflow].sender;
                    s.in_recovery().then_some(s.cum_acked)
                };
                if let Some(seq) = partial {
                    self.retransmit(pkt.conn, pkt.subflow, seq);
                }
                self.pump_new_data(pkt.conn, pkt.subflow);
            }
            AckAction::Duplicate => {}
            AckAction::FastRetransmit { seq } => {
                self.retransmit(pkt.conn, pkt.subflow, seq);
            }
        }
        // The per-subflow retransmission timer is kept armed by the
        // TimeoutCheck events themselves (one is always pending per subflow),
        // so nothing to schedule here.
    }

    /// Per-ACK congestion-avoidance increase: Reno for plain TCP, LIA for
    /// MPTCP connections.
    fn increase_for(&self, conn: usize, sub: usize) -> f64 {
        let c = &self.connections[conn];
        if !c.coupled {
            return 1.0 / c.subflows[sub].sender.cwnd.max(1.0);
        }
        let cwnds: Vec<f64> = c.subflows.iter().map(|s| s.sender.cwnd).collect();
        let rtts: Vec<f64> =
            c.subflows.iter().map(|s| s.sender.srtt.unwrap_or(self.config.initial_rto)).collect();
        lia_increase_per_ack(&cwnds, &rtts, sub)
    }

    fn retransmit(&mut self, conn: usize, sub: usize, seq: u64) {
        // Karn's rule: the retransmitted segment must not produce an RTT sample.
        self.connections[conn].subflows[sub].send_times.remove(&seq);
        self.inject_data(conn, sub, seq);
    }

    fn handle_timeout_check(&mut self, conn: usize, sub: usize) {
        let (timed_out, rto, last_progress, in_flight) = {
            let s = &self.connections[conn].subflows[sub].sender;
            (s.timed_out(self.now), s.rto, s.last_progress, s.in_flight())
        };
        if timed_out {
            let seq = {
                let sf = &mut self.connections[conn].subflows[sub];
                let seq = sf.sender.on_timeout(self.now);
                sf.send_times.clear();
                seq
            };
            // Go-back-N restart: resend the first unacknowledged segment and
            // let the window rebuild from there.
            {
                let sf = &mut self.connections[conn].subflows[sub];
                let s = sf.sender.on_send(self.now);
                debug_assert_eq!(s, seq);
                sf.send_times.insert(s, self.now);
            }
            self.inject_data(conn, sub, seq);
            let new_rto = self.connections[conn].subflows[sub].sender.rto;
            self.schedule(self.now + new_rto, Event::TimeoutCheck { conn, subflow: sub });
        } else if in_flight > 0 {
            // Not yet expired: re-arm strictly in the future to avoid
            // zero-delay event loops when the check fires exactly at expiry.
            let next = (last_progress + rto).max(self.now + rto * 0.25);
            self.schedule(next, Event::TimeoutCheck { conn, subflow: sub });
        } else {
            // Idle subflow (nothing in flight): try to send and re-arm.
            self.pump_new_data(conn, sub);
            let s = &self.connections[conn].subflows[sub].sender;
            let next = (s.last_progress + s.rto).max(self.now + s.rto.max(0.01) * 0.25);
            self.schedule(next, Event::TimeoutCheck { conn, subflow: sub });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{PathPolicy, TransportPolicy};
    use crate::workload::build_connections;
    use jellyfish_topology::JellyfishBuilder;
    use jellyfish_traffic::{ServerMap, TrafficMatrix};

    /// A mildly oversubscribed Jellyfish of the kind §5 evaluates: enough
    /// spare capacity that routing quality (not raw oversubscription) decides
    /// the throughput.
    fn small_sim(
        switches: usize,
        ports: usize,
        degree: usize,
        path_policy: PathPolicy,
        transport: TransportPolicy,
        seed: u64,
    ) -> SimReport {
        let topo = JellyfishBuilder::new(switches, ports, degree).seed(seed).build().unwrap();
        let servers = ServerMap::new(&topo);
        let csr = topo.csr();
        let tm = TrafficMatrix::random_permutation(&servers, seed ^ 0xABCD);
        let conns = build_connections(&csr, &servers, &tm, path_policy, transport, seed);
        let net = Network::build(&csr, &servers, LinkParams::default());
        let config = SimConfig { duration: 6.0, warmup: 1.5, seed, ..Default::default() };
        Simulator::new(net, conns, config).run()
    }

    #[test]
    fn single_connection_saturates_its_nic() {
        // One sender, one receiver, dedicated path: TCP should reach ~full
        // NIC rate once the window has grown.
        let topo = JellyfishBuilder::new(4, 6, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::from_flows(
            vec![jellyfish_traffic::Flow { src: 0, dst: 11, demand: 1.0 }],
            servers.num_servers(),
            "single",
        );
        let csr = topo.csr();
        let conns = build_connections(
            &csr,
            &servers,
            &tm,
            PathPolicy::ksp8(),
            TransportPolicy::Tcp { flows: 1 },
            3,
        );
        let net = Network::build(&csr, &servers, LinkParams::default());
        let report = Simulator::new(
            net,
            conns,
            SimConfig { duration: 8.0, warmup: 2.0, ..Default::default() },
        )
        .run();
        assert_eq!(report.connections.len(), 1);
        let tput = report.connections[0].normalized_throughput;
        assert!(tput > 0.8, "single unconstrained flow got {tput}");
        assert!(tput <= 1.0);
    }

    #[test]
    fn two_flows_share_a_common_bottleneck_fairly() {
        // Two servers on switch 0 send to two servers on switch 1 over a
        // 2-switch topology (single inter-switch link is the bottleneck).
        let mut g = jellyfish_topology::Graph::new(2);
        g.add_edge(0, 1);
        let topo = jellyfish_topology::Topology::homogeneous(g, 4, 2);
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::from_flows(
            vec![
                jellyfish_traffic::Flow { src: 0, dst: 2, demand: 1.0 },
                jellyfish_traffic::Flow { src: 1, dst: 3, demand: 1.0 },
            ],
            servers.num_servers(),
            "bottleneck",
        );
        let csr = topo.csr();
        let conns = build_connections(
            &csr,
            &servers,
            &tm,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 1 },
            1,
        );
        let net = Network::build(&csr, &servers, LinkParams::default());
        let report = Simulator::new(
            net,
            conns,
            SimConfig { duration: 12.0, warmup: 3.0, ..Default::default() },
        )
        .run();
        let t: Vec<f64> = report.connections.iter().map(|c| c.normalized_throughput).collect();
        let sum = t[0] + t[1];
        assert!(sum > 0.7 && sum <= 1.05, "bottleneck share sum = {sum}");
        // Neither flow is starved (loss-synchronized TCP is short-term unfair,
        // so this is deliberately weaker than a 50/50 split check).
        assert!(t[0] > 0.1 && t[1] > 0.1, "starved flow in split {t:?}");
        assert!(report.drops > 0, "drop-tail bottleneck should drop packets");
    }

    #[test]
    fn routing_policies_produce_plausible_and_repeatable_throughput() {
        // Engine-level sanity for the Table 1 machinery at miniature scale:
        // every routing × transport combination achieves a plausible share of
        // the NIC rate, and a run is reproducible given its seed. (The actual
        // ECMP-vs-KSP ordering of Table 1 needs the paper's topology sizes,
        // where ECMP's shortest-path diversity genuinely runs out — see
        // EXPERIMENTS.md and the `figures run table1` command.)
        let ecmp =
            small_sim(12, 9, 6, PathPolicy::ecmp8(), TransportPolicy::Mptcp { subflows: 8 }, 5);
        let ksp =
            small_sim(12, 9, 6, PathPolicy::ksp8(), TransportPolicy::Mptcp { subflows: 8 }, 5);
        let tcp8 = small_sim(12, 9, 6, PathPolicy::ksp8(), TransportPolicy::Tcp { flows: 8 }, 5);
        for (label, report) in [("ecmp/mptcp", &ecmp), ("ksp/mptcp", &ksp), ("ksp/tcp8", &tcp8)] {
            let m = report.mean_throughput();
            assert!(m > 0.3 && m <= 1.0, "{label}: implausible mean throughput {m}");
        }
        // KSP spreading keeps MPTCP within a small margin of the ECMP result
        // at this scale (the win appears at larger, oversubscribed sizes).
        assert!(ksp.mean_throughput() >= 0.8 * ecmp.mean_throughput());
        // Determinism: identical seed, identical result.
        let ksp_again =
            small_sim(12, 9, 6, PathPolicy::ksp8(), TransportPolicy::Mptcp { subflows: 8 }, 5);
        assert_eq!(ksp.mean_throughput(), ksp_again.mean_throughput());
    }

    #[test]
    fn report_helpers() {
        let report = SimReport {
            connections: vec![
                ConnectionStats { src_server: 0, dst_server: 1, normalized_throughput: 0.5 },
                ConnectionStats { src_server: 1, dst_server: 0, normalized_throughput: 1.0 },
            ],
            drops: 3,
            transmitted: 100,
            rtt_samples: vec![0.01, 0.02],
        };
        assert!((report.mean_throughput() - 0.75).abs() < 1e-12);
        assert_eq!(report.sorted_throughputs(), vec![0.5, 1.0]);
        let empty =
            SimReport { connections: vec![], drops: 0, transmitted: 0, rtt_samples: vec![] };
        assert_eq!(empty.mean_throughput(), 0.0);
    }

    #[test]
    fn runs_collect_post_warmup_rtt_samples() {
        let report = small_sim(12, 9, 6, PathPolicy::ksp8(), TransportPolicy::Tcp { flows: 1 }, 5);
        assert!(!report.rtt_samples.is_empty(), "a busy run must observe RTTs");
        // Every sample is at least one uncongested round trip.
        let params = LinkParams::default();
        let floor = 2.0 * (params.delay + 1.0 / params.rate);
        assert!(report.rtt_samples.iter().all(|&r| r >= floor - 1e-12));
    }

    #[test]
    fn impaired_engine_degrades_but_still_progresses() {
        use jellyfish_topology::spec::ImpairConfig;
        let run = |cfg: Option<ImpairConfig>| {
            let topo = JellyfishBuilder::new(12, 9, 6).seed(5).build().unwrap();
            let servers = ServerMap::new(&topo);
            let csr = topo.csr();
            let tm = TrafficMatrix::random_permutation(&servers, 5 ^ 0xABCD);
            let conns = build_connections(
                &csr,
                &servers,
                &tm,
                PathPolicy::ksp8(),
                TransportPolicy::Mptcp { subflows: 8 },
                5,
            );
            let mut net = Network::build(&csr, &servers, LinkParams::default());
            if let Some(cfg) = cfg {
                net = net.with_impairment(cfg, 17);
            }
            let config = SimConfig { duration: 6.0, warmup: 1.5, seed: 5, ..Default::default() };
            Simulator::new(net, conns, config).run()
        };
        let ideal = run(None);
        let lossy = run(Some(ImpairConfig { loss: 0.03, ..Default::default() }));
        assert!(lossy.mean_throughput() > 0.05, "3% loss must not collapse the fabric");
        assert!(
            lossy.mean_throughput() < ideal.mean_throughput(),
            "loss should cost throughput: {} !< {}",
            lossy.mean_throughput(),
            ideal.mean_throughput()
        );
        // Attaching an all-default impairment is arithmetically invisible.
        let noop = run(Some(ImpairConfig::default()));
        assert_eq!(noop.mean_throughput(), ideal.mean_throughput());
        assert_eq!(noop.drops, ideal.drops);
        // Determinism under impairment.
        let lossy_again = run(Some(ImpairConfig { loss: 0.03, ..Default::default() }));
        assert_eq!(lossy.mean_throughput(), lossy_again.mean_throughput());
        assert_eq!(lossy.drops, lossy_again.drops);
    }
}
