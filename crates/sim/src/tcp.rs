//! TCP sender and receiver state machines (Reno-style).
//!
//! The sender implements slow start, congestion avoidance, fast retransmit on
//! three duplicate ACKs with window halving, and a coarse retransmission
//! timeout that resets the window to one segment. Sequence numbers count
//! whole segments (the simulator's packets all carry one MSS).
//!
//! The *increase* step is pluggable: plain TCP adds 1 segment per RTT in
//! congestion avoidance, while MPTCP's LIA (see [`crate::mptcp`]) supplies a
//! coupled increase that depends on all of a connection's subflows.

/// What the sender should do after processing an acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AckAction {
    /// `count` new segments were acknowledged; the window has been increased
    /// and more data may be sent.
    NewData {
        /// Number of newly acknowledged segments.
        count: u64,
    },
    /// A duplicate ACK that did not (yet) trigger recovery.
    Duplicate,
    /// Third duplicate ACK: the segment with the returned sequence number
    /// must be retransmitted immediately (fast retransmit).
    FastRetransmit {
        /// Sequence number to retransmit.
        seq: u64,
    },
}

/// Reno-style TCP sender state for one (sub)flow with an infinite backlog.
#[derive(Debug, Clone)]
pub struct TcpSender {
    /// Congestion window in segments (fractional growth, floor() usable).
    pub cwnd: f64,
    /// Slow-start threshold in segments.
    pub ssthresh: f64,
    /// Next new sequence number to be sent.
    pub next_seq: u64,
    /// Highest cumulatively acknowledged sequence number (all seqs < this
    /// are acknowledged).
    pub cum_acked: u64,
    /// Consecutive duplicate ACK count.
    dup_acks: u32,
    /// Whether we are in fast recovery, and until which sequence number.
    recovery_until: Option<u64>,
    /// Smoothed RTT estimate (time units); `None` until the first sample.
    pub srtt: Option<f64>,
    /// RTT variance estimate.
    rttvar: f64,
    /// Current retransmission timeout.
    pub rto: f64,
    /// Time of the last event that should postpone the RTO (send or new ack).
    pub last_progress: f64,
    /// Segments acknowledged in total (goodput counter).
    pub delivered: u64,
}

impl TcpSender {
    /// Creates a sender with an initial window of `initial_cwnd` segments and
    /// an initial RTO guess.
    pub fn new(initial_cwnd: f64, initial_rto: f64) -> Self {
        TcpSender {
            cwnd: initial_cwnd.max(1.0),
            // Finite initial slow-start threshold: without SACK, overshooting
            // the bottleneck buffer by a whole window costs several RTTs of
            // loss recovery, so senders switch to congestion avoidance at a
            // moderate window (htsim uses a similar default).
            ssthresh: 64.0,
            next_seq: 0,
            cum_acked: 0,
            dup_acks: 0,
            recovery_until: None,
            srtt: None,
            rttvar: 0.0,
            rto: initial_rto,
            last_progress: 0.0,
            delivered: 0,
        }
    }

    /// Number of segments currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.next_seq.saturating_sub(self.cum_acked)
    }

    /// Whether the window allows sending another new segment.
    pub fn can_send(&self) -> bool {
        (self.in_flight() as f64) < self.cwnd.floor().max(1.0)
    }

    /// Whether the sender is currently in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Whether the sender is in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_until.is_some()
    }

    /// Registers that a new segment was sent, returning its sequence number.
    pub fn on_send(&mut self, now: f64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.in_flight() == 1 {
            self.last_progress = now;
        }
        seq
    }

    /// Processes a cumulative acknowledgement `ack` (next expected sequence
    /// number) received at time `now`, with an optional RTT sample.
    ///
    /// `increase_per_segment` is the congestion-avoidance window increment to
    /// apply per newly acknowledged segment (Reno: `1/cwnd`; LIA: coupled
    /// value from [`crate::mptcp::lia_increase_per_ack`]). Slow start always
    /// adds one segment per newly acknowledged segment regardless.
    pub fn on_ack(
        &mut self,
        ack: u64,
        now: f64,
        rtt_sample: Option<f64>,
        increase_per_segment: f64,
    ) -> AckAction {
        if let Some(rtt) = rtt_sample {
            self.update_rtt(rtt);
        }
        if ack > self.cum_acked {
            let count = ack - self.cum_acked;
            self.cum_acked = ack;
            // After an RTO the send sequence is rewound (go-back-N); ACKs for
            // segments that were still in the network may then overtake it.
            self.next_seq = self.next_seq.max(ack);
            self.delivered += count;
            self.dup_acks = 0;
            self.last_progress = now;
            if let Some(until) = self.recovery_until {
                if ack >= until {
                    self.recovery_until = None;
                    self.cwnd = self.ssthresh.max(1.0);
                }
            }
            if !self.in_recovery() {
                for _ in 0..count {
                    if self.in_slow_start() {
                        self.cwnd += 1.0;
                    } else {
                        self.cwnd += increase_per_segment.max(0.0);
                    }
                }
            }
            AckAction::NewData { count }
        } else {
            // Duplicate cumulative ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery() && self.in_flight() > 0 {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.recovery_until = Some(self.next_seq);
                AckAction::FastRetransmit { seq: self.cum_acked }
            } else {
                AckAction::Duplicate
            }
        }
    }

    /// Handles an expired retransmission timer: collapse the window to one
    /// segment and go back to the first unacknowledged sequence number.
    /// Returns the sequence number to resend.
    pub fn on_timeout(&mut self, now: f64) -> u64 {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        self.recovery_until = None;
        self.next_seq = self.cum_acked;
        self.rto = (self.rto * 2.0).min(60.0);
        self.last_progress = now;
        self.cum_acked
    }

    /// Whether the retransmission timer has expired at `now` (only meaningful
    /// while data is in flight).
    pub fn timed_out(&self, now: f64) -> bool {
        self.in_flight() > 0 && now - self.last_progress > self.rto
    }

    fn update_rtt(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                let err = (sample - srtt).abs();
                self.rttvar = 0.75 * self.rttvar + 0.25 * err;
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
        self.rto = (self.srtt.unwrap() + 4.0 * self.rttvar).max(0.01);
    }
}

/// TCP receiver state: tracks the next expected sequence number and buffers
/// out-of-order segments, producing cumulative ACK values.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    rcv_next: u64,
    out_of_order: std::collections::BTreeSet<u64>,
}

impl TcpReceiver {
    /// Creates an empty receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes an arriving data segment and returns the cumulative ACK to
    /// send back (next expected sequence number).
    pub fn on_data(&mut self, seq: u64) -> u64 {
        if seq == self.rcv_next {
            self.rcv_next += 1;
            while self.out_of_order.remove(&self.rcv_next) {
                self.rcv_next += 1;
            }
        } else if seq > self.rcv_next {
            self.out_of_order.insert(seq);
        }
        self.rcv_next
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u64 {
        self.rcv_next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reno_increase(s: &TcpSender) -> f64 {
        1.0 / s.cwnd.max(1.0)
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(2.0, 1.0);
        assert!(s.in_slow_start());
        // Send 2, ack 2: window becomes 4.
        s.on_send(0.0);
        s.on_send(0.0);
        let inc = reno_increase(&s);
        assert_eq!(s.on_ack(2, 0.1, Some(0.1), inc), AckAction::NewData { count: 2 });
        assert!((s.cwnd - 4.0).abs() < 1e-9);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn congestion_avoidance_adds_one_per_rtt() {
        let mut s = TcpSender::new(10.0, 1.0);
        s.ssthresh = 5.0; // force congestion avoidance
        assert!(!s.in_slow_start());
        for _ in 0..10 {
            s.on_send(0.0);
        }
        // Ack all 10 with per-segment increase 1/cwnd: net ~ +1.
        for a in 1..=10u64 {
            let inc = reno_increase(&s);
            s.on_ack(a, 0.1, None, inc);
        }
        assert!((s.cwnd - 11.0).abs() < 0.05, "cwnd = {}", s.cwnd);
    }

    #[test]
    fn triple_duplicate_ack_triggers_fast_retransmit() {
        let mut s = TcpSender::new(8.0, 1.0);
        s.ssthresh = 4.0;
        for _ in 0..8 {
            s.on_send(0.0);
        }
        // Packet 0 lost: receiver keeps acking 0.
        assert_eq!(s.on_ack(0, 0.1, None, 0.1), AckAction::Duplicate);
        assert_eq!(s.on_ack(0, 0.2, None, 0.1), AckAction::Duplicate);
        let action = s.on_ack(0, 0.3, None, 0.1);
        assert_eq!(action, AckAction::FastRetransmit { seq: 0 });
        assert!(s.in_recovery());
        assert!((s.cwnd - 4.0).abs() < 1e-9, "window halved, cwnd = {}", s.cwnd);
        // Further dupacks do not retrigger.
        assert_eq!(s.on_ack(0, 0.4, None, 0.1), AckAction::Duplicate);
        // A new cumulative ack past the recovery point exits recovery.
        let out = s.on_ack(8, 0.5, None, 0.1);
        assert_eq!(out, AckAction::NewData { count: 8 });
        assert!(!s.in_recovery());
    }

    #[test]
    fn window_does_not_grow_during_recovery() {
        let mut s = TcpSender::new(8.0, 1.0);
        s.ssthresh = 2.0;
        for _ in 0..8 {
            s.on_send(0.0);
        }
        for _ in 0..3 {
            s.on_ack(0, 0.1, None, 0.5);
        }
        let cwnd_at_recovery = s.cwnd;
        // Partial ack (still below recovery point) acknowledges new data but
        // must not inflate the window.
        s.on_ack(4, 0.2, None, 0.5);
        assert!(s.cwnd <= cwnd_at_recovery + 1e-9);
    }

    #[test]
    fn timeout_collapses_window_and_goes_back() {
        let mut s = TcpSender::new(16.0, 0.5);
        s.ssthresh = 16.0;
        for _ in 0..10 {
            s.on_send(0.0);
        }
        assert!(!s.timed_out(0.4));
        assert!(s.timed_out(1.0));
        let resend = s.on_timeout(1.0);
        assert_eq!(resend, 0);
        assert_eq!(s.cwnd, 1.0);
        assert_eq!(s.next_seq, 0);
        assert!((s.ssthresh - 8.0).abs() < 1e-9);
        assert!(s.rto >= 1.0, "rto must back off");
        assert!(!s.timed_out(1.2));
    }

    #[test]
    fn can_send_respects_window() {
        let mut s = TcpSender::new(2.0, 1.0);
        assert!(s.can_send());
        s.on_send(0.0);
        assert!(s.can_send());
        s.on_send(0.0);
        assert!(!s.can_send());
        s.on_ack(1, 0.1, None, 0.5);
        assert!(s.can_send());
    }

    #[test]
    fn rtt_estimation_converges_and_sets_rto() {
        let mut s = TcpSender::new(4.0, 3.0);
        for i in 0..50 {
            s.on_send(i as f64);
            s.on_ack(i + 1, i as f64 + 0.2, Some(0.2), 0.1);
        }
        let srtt = s.srtt.unwrap();
        assert!((srtt - 0.2).abs() < 0.02);
        assert!(s.rto < 1.0 && s.rto >= 0.2);
    }

    #[test]
    fn receiver_cumulative_and_out_of_order() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.on_data(0), 1);
        assert_eq!(r.on_data(2), 1, "gap: ack stays at 1");
        assert_eq!(r.on_data(3), 1);
        assert_eq!(r.on_data(1), 4, "filling the gap drains the buffer");
        assert_eq!(r.expected(), 4);
        // Duplicate data does not regress the ACK.
        assert_eq!(r.on_data(2), 4);
    }
}
