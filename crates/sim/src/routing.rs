//! Path-assignment policies for simulated connections.
//!
//! The paper's §5 combinations are ECMP (8-way or 64-way, shortest paths
//! only) versus Yen's 8-shortest-path routing, crossed with TCP (1 or 8
//! flows per server pair) and MPTCP (8 subflows). Here a *policy* turns a
//! switch pair into the candidate path set, and the transport policy decides
//! how many subflows a connection opens and how they are distributed over
//! those paths.

use jellyfish_routing::ecmp::EcmpConfig;
use jellyfish_routing::yen::k_shortest_paths;
use jellyfish_routing::Path;
use jellyfish_topology::{CsrGraph, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// How candidate switch-level paths are computed for a server pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathPolicy {
    /// Equal-cost multipath over shortest paths with the given width.
    Ecmp {
        /// ECMP group width (8 or 64 in the paper).
        way: usize,
    },
    /// Yen's k-shortest-path routing.
    KShortest {
        /// Number of paths per switch pair (8 in the paper).
        k: usize,
    },
}

impl PathPolicy {
    /// The paper's default ECMP (8-way).
    pub fn ecmp8() -> Self {
        PathPolicy::Ecmp { way: 8 }
    }

    /// The paper's k-shortest-path routing (k = 8).
    pub fn ksp8() -> Self {
        PathPolicy::KShortest { k: 8 }
    }

    /// Candidate switch-level paths between two switches.
    pub fn candidate_paths(&self, csr: &CsrGraph, src: NodeId, dst: NodeId) -> Vec<Path> {
        match *self {
            PathPolicy::Ecmp { way } => EcmpConfig { way }.paths(csr, src, dst),
            PathPolicy::KShortest { k } => k_shortest_paths(csr, src, dst, k),
        }
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match *self {
            PathPolicy::Ecmp { way } => format!("ECMP-{way}"),
            PathPolicy::KShortest { k } => format!("{k}-shortest-paths"),
        }
    }
}

/// Transport configuration of a server pair's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportPolicy {
    /// `flows` independent TCP connections between the pair (uncoupled).
    Tcp {
        /// Number of parallel TCP flows (1 or 8 in Table 1).
        flows: usize,
    },
    /// One MPTCP connection with `subflows` LIA-coupled subflows.
    Mptcp {
        /// Number of subflows (8 in Table 1).
        subflows: usize,
    },
}

impl TransportPolicy {
    /// Number of subflows a connection opens.
    pub fn subflow_count(&self) -> usize {
        match *self {
            TransportPolicy::Tcp { flows } => flows.max(1),
            TransportPolicy::Mptcp { subflows } => subflows.max(1),
        }
    }

    /// Whether the subflows' window increases are LIA-coupled.
    pub fn coupled(&self) -> bool {
        matches!(self, TransportPolicy::Mptcp { .. })
    }

    /// Label for reports (matches the paper's Table 1 rows).
    pub fn label(&self) -> String {
        match *self {
            TransportPolicy::Tcp { flows } => {
                format!("TCP {flows} flow{}", if flows == 1 { "" } else { "s" })
            }
            TransportPolicy::Mptcp { subflows } => format!("MPTCP {subflows} subflows"),
        }
    }
}

/// Assigns a switch-level path to each subflow of a connection.
///
/// * Under ECMP, every subflow is hashed independently onto one of the
///   equal-cost shortest paths (distinct subflows may collide on the same
///   path — exactly the effect that hurts single-flow TCP in Table 1).
/// * Under k-shortest-path routing, MPTCP-style spreading places subflow `i`
///   on path `i mod |paths|`, while independent TCP flows are hashed.
pub fn assign_subflow_paths(
    csr: &CsrGraph,
    src_switch: NodeId,
    dst_switch: NodeId,
    path_policy: PathPolicy,
    transport: TransportPolicy,
    pair_seed: u64,
) -> Vec<Path> {
    let candidates = path_policy.candidate_paths(csr, src_switch, dst_switch);
    if candidates.is_empty() {
        return Vec::new();
    }
    let n = transport.subflow_count();
    (0..n)
        .map(|i| {
            let idx = match (path_policy, transport) {
                (PathPolicy::KShortest { .. }, TransportPolicy::Mptcp { .. }) => {
                    i % candidates.len()
                }
                _ => {
                    let mut hasher = DefaultHasher::new();
                    (pair_seed, i as u64).hash(&mut hasher);
                    (hasher.finish() as usize) % candidates.len()
                }
            };
            candidates[idx].clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::JellyfishBuilder;

    fn snapshot() -> CsrGraph {
        JellyfishBuilder::new(30, 10, 6).seed(4).build().unwrap().csr()
    }

    #[test]
    fn labels() {
        assert_eq!(PathPolicy::ecmp8().label(), "ECMP-8");
        assert_eq!(PathPolicy::ksp8().label(), "8-shortest-paths");
        assert_eq!(TransportPolicy::Tcp { flows: 1 }.label(), "TCP 1 flow");
        assert_eq!(TransportPolicy::Tcp { flows: 8 }.label(), "TCP 8 flows");
        assert_eq!(TransportPolicy::Mptcp { subflows: 8 }.label(), "MPTCP 8 subflows");
    }

    #[test]
    fn subflow_counts_and_coupling() {
        assert_eq!(TransportPolicy::Tcp { flows: 8 }.subflow_count(), 8);
        assert_eq!(TransportPolicy::Tcp { flows: 0 }.subflow_count(), 1);
        assert_eq!(TransportPolicy::Mptcp { subflows: 8 }.subflow_count(), 8);
        assert!(!TransportPolicy::Tcp { flows: 8 }.coupled());
        assert!(TransportPolicy::Mptcp { subflows: 8 }.coupled());
    }

    #[test]
    fn mptcp_over_ksp_spreads_across_distinct_paths() {
        let csr = snapshot();
        let paths = assign_subflow_paths(
            &csr,
            0,
            15,
            PathPolicy::ksp8(),
            TransportPolicy::Mptcp { subflows: 8 },
            7,
        );
        assert_eq!(paths.len(), 8);
        let distinct: std::collections::HashSet<_> = paths.iter().collect();
        // With 8 candidate paths available, every subflow gets its own path.
        let candidates = PathPolicy::ksp8().candidate_paths(&csr, 0, 15);
        assert_eq!(distinct.len(), candidates.len().min(8));
    }

    #[test]
    fn ecmp_uses_only_shortest_paths() {
        let g = &snapshot();
        let sp_len = jellyfish_routing::shortest::shortest_path(g, 0, 15).unwrap().len();
        let paths = assign_subflow_paths(
            g,
            0,
            15,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 8 },
            3,
        );
        assert_eq!(paths.len(), 8);
        for p in &paths {
            assert_eq!(p.len(), sp_len, "ECMP must not use longer paths");
        }
    }

    #[test]
    fn ksp_can_use_longer_paths() {
        let g = &snapshot();
        let candidates = PathPolicy::ksp8().candidate_paths(g, 0, 15);
        let sp_len = candidates[0].len();
        assert!(
            candidates.iter().any(|p| p.len() > sp_len),
            "k-shortest paths should include longer-than-shortest paths on a random graph"
        );
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        let csr = snapshot();
        let a = assign_subflow_paths(
            &csr,
            2,
            20,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 4 },
            9,
        );
        let b = assign_subflow_paths(
            &csr,
            2,
            20,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 4 },
            9,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_when_unreachable() {
        let mut g = jellyfish_topology::Graph::new(3);
        g.add_edge(0, 1);
        let csr = CsrGraph::from_graph(&g);
        let paths = assign_subflow_paths(
            &csr,
            0,
            2,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 1 },
            0,
        );
        assert!(paths.is_empty());
    }
}
