//! Flow- and packet-level simulation for the Jellyfish (NSDI 2012)
//! reproduction.
//!
//! The paper's §5 evaluates routing (ECMP vs k-shortest paths) and congestion
//! control (TCP with 1 or 8 flows, MPTCP with 8 subflows) with the packet
//! simulator written by the MPTCP authors (htsim). That simulator is not
//! part of this repository's dependency budget, so — per DESIGN.md,
//! substitution 2 — this crate implements the same mechanisms from scratch:
//!
//! * [`net`] — the simulated network: hosts, switches, full-duplex links with
//!   finite drop-tail queues, and source-routed packets.
//! * [`tcp`] — a Reno-style TCP sender (slow start, congestion avoidance,
//!   fast retransmit on triple duplicate ACKs, retransmission timeouts).
//! * [`mptcp`] — MPTCP with the Linked-Increases Algorithm (LIA) coupling the
//!   congestion windows of a connection's subflows.
//! * [`engine`] — the discrete-event loop tying it together and reporting
//!   per-connection goodput.
//! * [`routing`] — path assignment policies: ECMP hashing over shortest
//!   paths, or spreading subflows over Yen's k shortest paths.
//! * [`workload`] — building simulated connections from a
//!   [`jellyfish_traffic::TrafficMatrix`].
//! * [`fluid`] — a fast fluid (max-min fair) engine used to cross-check the
//!   packet engine and to run sweeps at sizes where packet-level simulation
//!   is unnecessary.
//! * [`impair`] — deterministic per-link impairment (i.i.d. and
//!   Gilbert–Elliott loss, latency jitter, reordering, duplication, queue
//!   overrides) attached via `Network::with_impairment` and configured by a
//!   spec's `+impair=` transform.
//!
//! Normalization follows the paper: a connection's throughput is reported as
//! a fraction of the server NIC rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fluid;
pub mod impair;
pub mod mptcp;
pub mod net;
pub mod routing;
pub mod tcp;
pub mod workload;

pub use engine::{SimConfig, SimReport, Simulator};
pub use routing::{PathPolicy, TransportPolicy};
pub use workload::build_connections;
