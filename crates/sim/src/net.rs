//! The simulated network: hosts, switches, and full-duplex links with finite
//! drop-tail queues.
//!
//! Node numbering: switch `i` of the topology is sim node `i`; server `s`
//! (global id from [`jellyfish_traffic::ServerMap`]) is sim node
//! `num_switches + s`. Every topology link becomes two directed sim links
//! (full duplex), and every server gets an uplink and a downlink to its ToR
//! switch.
//!
//! Link state is stored flat, not hashed: switch-to-switch links live in a
//! vector indexed by the [`CsrGraph`] snapshot's dense arc ids, and host
//! access links in two per-server vectors. Resolving a hop on the packet hot
//! path is an O(log degree) row search in the snapshot instead of a
//! `HashMap<(u, v), _>` probe per packet-hop.
//!
//! Queueing model: each directed link tracks the time until which its
//! transmitter is busy. A packet handed to the link at time `t` sees a
//! backlog of `(busy_until − t) · rate` packets; if that backlog would exceed
//! the buffer the packet is dropped (drop-tail), otherwise it starts
//! transmission when the link frees up and arrives `1/rate + delay` later.
//! This is the standard event-free fluid-queue formulation of a FIFO link and
//! matches what a per-packet queue would compute for deterministic service
//! times.

use crate::impair::Impairments;
use jellyfish_topology::spec::ImpairConfig;
use jellyfish_topology::CsrGraph;
use jellyfish_traffic::ServerMap;
use std::collections::HashMap;

/// A node in the simulated network (switch or host).
pub type SimNode = usize;

/// Configuration of every link in the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// Link rate in packets per unit time (all links and NICs share it, as
    /// in the paper's setup where servers and switches use the same rate).
    pub rate: f64,
    /// One-way propagation delay per link, in time units.
    pub delay: f64,
    /// Drop-tail buffer size in packets.
    pub buffer: usize,
}

impl Default for LinkParams {
    /// The ideal-fabric baseline every experiment starts from (surfaced by
    /// `figures topo show` so provenance distinguishes ideal from impaired
    /// runs): `rate` 100 packets per time unit, `delay` 0.001 time units of
    /// one-way propagation, `buffer` 25 packets of drop-tail queue.
    fn default() -> Self {
        LinkParams {
            rate: 100.0,
            delay: 0.001,
            // A couple of bandwidth-delay products: big enough to keep links
            // busy, small enough that drop-tail queueing delay stays moderate.
            buffer: 25,
        }
    }
}

/// State of one directed link.
#[derive(Debug, Clone, Copy, Default)]
struct Link {
    busy_until: f64,
    /// Cumulative packets accepted (for utilization reporting).
    transmitted: u64,
    /// Cumulative packets dropped at this link's queue.
    dropped: u64,
}

/// Outcome of handing a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransmitOutcome {
    /// Packet accepted; it arrives at the other end at the given time.
    Delivered {
        /// Arrival time at the downstream node.
        arrival: f64,
    },
    /// Packet dropped: at the queue (buffer overflow) or — under an
    /// impairment model — lost on the wire after occupying the transmitter.
    Dropped,
    /// The directed link does not exist (e.g. it was failed out of the
    /// topology). The packet goes nowhere; callers treat this like a loss
    /// so failure scenarios degrade instead of aborting.
    NoLink,
    /// Packet accepted and duplicated by the impairment model: two copies
    /// arrive, the duplicate one transmission slot (plus its own jitter)
    /// behind the original.
    Duplicated {
        /// Arrival time of the original copy.
        arrival: f64,
        /// Arrival time of the duplicate copy.
        dup_arrival: f64,
    },
}

/// The simulated network fabric.
#[derive(Debug, Clone)]
pub struct Network {
    /// Interconnect snapshot; arc ids index `switch_links`.
    csr: CsrGraph,
    /// Directed switch-to-switch links, indexed by arc id.
    switch_links: Vec<Link>,
    /// Host → ToR uplinks, indexed by server id.
    host_up: Vec<Link>,
    /// ToR → host downlinks, indexed by server id.
    host_down: Vec<Link>,
    /// ToR switch of each server.
    tor_of: Vec<SimNode>,
    params: LinkParams,
    num_switches: usize,
    /// Optional per-link impairment model; `None` is the ideal fabric and
    /// keeps the arithmetic of `transmit_sized` bit-identical to the
    /// pre-impairment implementation.
    impair: Option<Impairments>,
    /// Packets lost on the wire by the impairment model (distinct from
    /// queue drops, though both count in each link's `dropped`).
    wire_lost: u64,
    /// Transmit attempts on links that do not exist.
    no_link: u64,
}

/// Flat handle to one directed link's slot.
enum LinkSlot {
    Switch(usize),
    HostUp(usize),
    HostDown(usize),
}

impl Network {
    /// Builds the simulated network for a topology snapshot: switch-to-switch
    /// links plus host access links, all with the same parameters.
    pub fn build(csr: &CsrGraph, servers: &ServerMap, params: LinkParams) -> Self {
        let num_switches = csr.num_nodes();
        let num_servers = servers.num_servers();
        Network {
            switch_links: vec![Link::default(); csr.num_arcs()],
            host_up: vec![Link::default(); num_servers],
            host_down: vec![Link::default(); num_servers],
            tor_of: (0..num_servers).map(|s| servers.switch_of(s)).collect(),
            csr: csr.clone(),
            params,
            num_switches,
            impair: None,
            wire_lost: 0,
            no_link: 0,
        }
    }

    /// Attaches a deterministic impairment model (builder style). Every
    /// directed link gets an independent RNG stream derived from `seed` and
    /// the link's stable id, so the packet fates of a run depend only on
    /// `(config, seed, event order)` — bit-reproducible across shards.
    pub fn with_impairment(mut self, cfg: ImpairConfig, seed: u64) -> Self {
        let n = self.switch_links.len() + 2 * self.host_up.len();
        self.impair = Some(Impairments::new(cfg, seed, n));
        self
    }

    /// The attached impairment config, if any.
    pub fn impairment(&self) -> Option<&ImpairConfig> {
        self.impair.as_ref().map(super::impair::Impairments::cfg)
    }

    /// The stable impairment-stream key of a resolved link slot: switch
    /// arcs first, then host uplinks, then host downlinks.
    fn link_key(&self, slot: &LinkSlot) -> usize {
        match *slot {
            LinkSlot::Switch(arc) => arc,
            LinkSlot::HostUp(s) => self.switch_links.len() + s,
            LinkSlot::HostDown(s) => self.switch_links.len() + self.host_up.len() + s,
        }
    }

    /// Sim node id of server `s`.
    pub fn host_node(&self, server: usize) -> SimNode {
        self.num_switches + server
    }

    /// Number of switches in the fabric.
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Number of hosts in the fabric.
    pub fn num_hosts(&self) -> usize {
        self.host_up.len()
    }

    /// Resolves the directed link `(u, v)` to its flat slot.
    fn resolve(&self, u: SimNode, v: SimNode) -> Option<LinkSlot> {
        if u >= self.num_switches {
            let s = u - self.num_switches;
            (s < self.host_up.len() && v == self.tor_of[s]).then_some(LinkSlot::HostUp(s))
        } else if v >= self.num_switches {
            let s = v - self.num_switches;
            (s < self.host_down.len() && u == self.tor_of[s]).then_some(LinkSlot::HostDown(s))
        } else {
            self.csr.arc_index(u, v).map(LinkSlot::Switch)
        }
    }

    fn link_mut(&mut self, slot: &LinkSlot) -> &mut Link {
        match *slot {
            LinkSlot::Switch(arc) => &mut self.switch_links[arc],
            LinkSlot::HostUp(s) => &mut self.host_up[s],
            LinkSlot::HostDown(s) => &mut self.host_down[s],
        }
    }

    /// Whether a directed link exists.
    pub fn has_link(&self, u: SimNode, v: SimNode) -> bool {
        self.resolve(u, v).is_some()
    }

    /// Hands one full-size packet to the directed link `(u, v)` at time `now`.
    pub fn transmit(&mut self, u: SimNode, v: SimNode, now: f64) -> TransmitOutcome {
        self.transmit_sized(u, v, now, 1.0)
    }

    /// Hands a packet of `size` MSS units to the directed link `(u, v)` at
    /// time `now`. Acknowledgements use a small fraction of an MSS.
    pub fn transmit_sized(
        &mut self,
        u: SimNode,
        v: SimNode,
        now: f64,
        size: f64,
    ) -> TransmitOutcome {
        let Some(slot) = self.resolve(u, v) else {
            self.no_link += 1;
            return TransmitOutcome::NoLink;
        };
        let rate = self.params.rate;
        let delay = self.params.delay;
        let buffer =
            self.impair.as_ref().and_then(|i| i.cfg().queue).unwrap_or(self.params.buffer) as f64;
        let key = self.link_key(&slot);
        let link = self.link_mut(&slot);
        let backlog = (link.busy_until - now).max(0.0) * rate;
        if backlog + size > buffer {
            link.dropped += 1;
            return TransmitOutcome::Dropped;
        }
        let start = link.busy_until.max(now);
        let finish = start + size / rate;
        link.busy_until = finish;
        link.transmitted += 1;
        let arrival = finish + delay;
        let Some(impair) = self.impair.as_mut() else {
            return TransmitOutcome::Delivered { arrival };
        };
        let fate = impair.fate(key);
        if fate.lost {
            // The frame occupied the transmitter and then died on the wire:
            // bandwidth is spent, nothing arrives.
            self.wire_lost += 1;
            self.link_mut(&slot).dropped += 1;
            return TransmitOutcome::Dropped;
        }
        let mut arrival = arrival + fate.jitter;
        if fate.reorder {
            // Adjacent-pair swap: hold the packet back one and a half
            // serialization slots so it lands just behind its successor on
            // a busy link.
            arrival += 1.5 * size / rate;
        }
        if let Some(dup_jitter) = fate.duplicate {
            // The duplicate occupies the next transmission slot.
            let link = self.link_mut(&slot);
            let dup_finish = link.busy_until + size / rate;
            link.busy_until = dup_finish;
            link.transmitted += 1;
            return TransmitOutcome::Duplicated {
                arrival,
                dup_arrival: dup_finish + delay + dup_jitter,
            };
        }
        TransmitOutcome::Delivered { arrival }
    }

    fn all_links(&self) -> impl Iterator<Item = &Link> {
        self.switch_links.iter().chain(self.host_up.iter()).chain(self.host_down.iter())
    }

    /// Total packets dropped across all links.
    pub fn total_drops(&self) -> u64 {
        self.all_links().map(|l| l.dropped).sum()
    }

    /// Total packets transmitted across all links.
    pub fn total_transmitted(&self) -> u64 {
        self.all_links().map(|l| l.transmitted).sum()
    }

    /// Packets the impairment model lost on the wire (a subset of
    /// [`Network::total_drops`]).
    pub fn total_wire_losses(&self) -> u64 {
        self.wire_lost
    }

    /// Transmit attempts on directed links that do not exist (only possible
    /// when routing state outlives a failure scenario).
    pub fn no_link_drops(&self) -> u64 {
        self.no_link
    }

    /// Per-directed-link utilization over a horizon: transmitted packets
    /// divided by `rate × horizon`.
    pub fn link_utilization(&self, horizon: f64) -> HashMap<(SimNode, SimNode), f64> {
        let denom = self.params.rate * horizon;
        let mut out = HashMap::new();
        for u in self.csr.nodes() {
            for arc in self.csr.arc_range(u) {
                let v = self.csr.arc_target(arc);
                out.insert((u, v), self.switch_links[arc].transmitted as f64 / denom);
            }
        }
        for s in 0..self.host_up.len() {
            let host = self.host_node(s);
            let tor = self.tor_of[s];
            out.insert((host, tor), self.host_up[s].transmitted as f64 / denom);
            out.insert((tor, host), self.host_down[s].transmitted as f64 / denom);
        }
        out
    }

    /// The base RTT (propagation + one transmission per hop, no queueing) of
    /// a path with `hops` links, for senders estimating their initial RTO.
    pub fn base_rtt(&self, hops: usize, params: LinkParams) -> f64 {
        2.0 * hops as f64 * (params.delay + 1.0 / params.rate)
    }
}

/// A source-routed packet. Payload packets carry `seq`; acknowledgements
/// carry `ack` = next expected sequence number (cumulative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Connection index in the simulator.
    pub conn: usize,
    /// Subflow index within the connection.
    pub subflow: usize,
    /// Sequence number (data packets) or echoed sequence (for RTT sampling).
    pub seq: u64,
    /// Cumulative acknowledgement number (valid when `is_ack`).
    pub ack: u64,
    /// Whether this is an acknowledgement travelling back to the sender.
    pub is_ack: bool,
    /// Position in the subflow's (forward or reverse) path: index of the node
    /// the packet is currently at.
    pub hop: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::JellyfishBuilder;

    fn network() -> Network {
        let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        Network::build(&topo.csr(), &servers, LinkParams::default())
    }

    #[test]
    fn build_creates_duplex_and_access_links() {
        let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        let csr = topo.csr();
        let net = Network::build(&csr, &servers, LinkParams::default());
        assert_eq!(net.num_switches(), 6);
        assert_eq!(net.num_hosts(), 18);
        for (a, b) in csr.edges() {
            assert!(net.has_link(a, b));
            assert!(net.has_link(b, a));
        }
        for s in 0..servers.num_servers() {
            let host = net.host_node(s);
            assert!(net.has_link(host, servers.switch_of(s)));
            assert!(net.has_link(servers.switch_of(s), host));
        }
        assert!(!net.has_link(0, net.host_node(17)) || servers.switch_of(17) == 0);
    }

    #[test]
    fn transmit_serializes_packets() {
        let mut net = network();
        let params = LinkParams::default();
        let (u, v) = (net.host_node(0), 0);
        let TransmitOutcome::Delivered { arrival: a1 } = net.transmit(u, v, 0.0) else {
            panic!("first packet dropped");
        };
        let TransmitOutcome::Delivered { arrival: a2 } = net.transmit(u, v, 0.0) else {
            panic!("second packet dropped");
        };
        // Second packet waits behind the first: exactly one transmission time later.
        assert!((a2 - a1 - 1.0 / params.rate).abs() < 1e-9);
        assert_eq!(net.total_transmitted(), 2);
        assert_eq!(net.total_drops(), 0);
    }

    #[test]
    fn transmit_drops_when_buffer_full() {
        let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        let params = LinkParams { buffer: 5, ..Default::default() };
        let mut net = Network::build(&topo.csr(), &servers, params);
        let (u, v) = (net.host_node(0), 0);
        let mut drops = 0;
        for _ in 0..20 {
            if net.transmit(u, v, 0.0) == TransmitOutcome::Dropped {
                drops += 1;
            }
        }
        assert!(drops > 0, "buffer of 5 must drop some of 20 back-to-back packets");
        assert_eq!(net.total_drops(), drops as u64);
        // Roughly buffer-many packets accepted.
        assert!(net.total_transmitted() <= 6 + 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let params = LinkParams { buffer: 2, ..Default::default() };
        let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        let mut net = Network::build(&topo.csr(), &servers, params);
        let (u, v) = (net.host_node(0), 0);
        assert!(matches!(net.transmit(u, v, 0.0), TransmitOutcome::Delivered { .. }));
        assert!(matches!(net.transmit(u, v, 0.0), TransmitOutcome::Delivered { .. }));
        assert_eq!(net.transmit(u, v, 0.0), TransmitOutcome::Dropped);
        // After enough time the queue has drained and packets are accepted again.
        assert!(matches!(net.transmit(u, v, 1.0), TransmitOutcome::Delivered { .. }));
    }

    #[test]
    fn transmit_on_missing_link_returns_no_link() {
        // Hosts are never directly connected; a failed-link scenario must
        // degrade (typed outcome), not abort.
        let mut net = network();
        let h0 = net.host_node(0);
        let h1 = net.host_node(1);
        assert_eq!(net.transmit(h0, h1, 0.0), TransmitOutcome::NoLink);
        assert_eq!(net.no_link_drops(), 1);
        assert_eq!(net.total_transmitted(), 0);
    }

    #[test]
    fn impaired_network_loses_and_jitters_deterministically() {
        use jellyfish_topology::spec::ImpairConfig;
        let cfg = ImpairConfig { loss: 0.2, jitter_ms: 5.0, ..Default::default() };
        let run = |seed: u64| {
            let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
            let servers = ServerMap::new(&topo);
            let mut net = Network::build(&topo.csr(), &servers, LinkParams::default())
                .with_impairment(cfg, seed);
            let (u, v) = (net.host_node(0), 0);
            (0..200).map(|i| net.transmit(u, v, i as f64 * 0.1)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same impairment seed must replay identically");
        assert_ne!(run(7), run(8), "different seeds should impair differently");
        let outcomes = run(7);
        assert!(outcomes.contains(&TransmitOutcome::Dropped), "some wire loss");
        // Jitter perturbs arrivals beyond the deterministic pipeline.
        let ideal_first = 1.0 / LinkParams::default().rate + LinkParams::default().delay;
        assert!(outcomes.iter().any(
            |o| matches!(o, TransmitOutcome::Delivered { arrival } if *arrival > ideal_first + 1e-12)
        ));
    }

    #[test]
    fn impaired_queue_override_shrinks_the_buffer() {
        use jellyfish_topology::spec::ImpairConfig;
        let cfg = ImpairConfig { queue: Some(2), ..Default::default() };
        let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        let mut net =
            Network::build(&topo.csr(), &servers, LinkParams::default()).with_impairment(cfg, 7);
        let (u, v) = (net.host_node(0), 0);
        assert!(matches!(net.transmit(u, v, 0.0), TransmitOutcome::Delivered { .. }));
        assert!(matches!(net.transmit(u, v, 0.0), TransmitOutcome::Delivered { .. }));
        // Default buffer (25) would accept this; the override drops it.
        assert_eq!(net.transmit(u, v, 0.0), TransmitOutcome::Dropped);
        assert_eq!(net.total_wire_losses(), 0, "queue overflow is not a wire loss");
    }

    #[test]
    fn duplication_occupies_a_second_slot() {
        use jellyfish_topology::spec::ImpairConfig;
        let cfg = ImpairConfig { duplicate: 1.0, ..Default::default() };
        let params = LinkParams::default();
        let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        let mut net = Network::build(&topo.csr(), &servers, params).with_impairment(cfg, 7);
        let (u, v) = (net.host_node(0), 0);
        let TransmitOutcome::Duplicated { arrival, dup_arrival } = net.transmit(u, v, 0.0) else {
            panic!("duplicate probability 1.0 must duplicate");
        };
        assert!((dup_arrival - arrival - 1.0 / params.rate).abs() < 1e-12);
        assert_eq!(net.total_transmitted(), 2, "the copy burns a transmission slot");
    }

    #[test]
    fn utilization_and_rtt_helpers() {
        let mut net = network();
        let params = LinkParams::default();
        let (u, v) = (net.host_node(0), 0);
        for _ in 0..10 {
            net.transmit(u, v, 0.0);
        }
        let util = net.link_utilization(1.0);
        assert!((util[&(u, v)] - 10.0 / params.rate).abs() < 1e-9);
        let rtt = net.base_rtt(3, params);
        assert!((rtt - 2.0 * 3.0 * (params.delay + 0.01)).abs() < 1e-9);
    }
}
