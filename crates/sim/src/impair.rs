//! Deterministic per-link impairment: loss, burst loss, jitter, reordering
//! and duplication layered on top of [`crate::net::Network`]'s ideal pipes.
//!
//! The model is configured by a [`ImpairConfig`] parsed from a spec's
//! `+impair=` transform (see `jellyfish_topology::spec`) and attached with
//! [`crate::net::Network::with_impairment`]. Every directed link owns an
//! independent RNG stream derived from `(impairment seed, stable link key)`
//! alone — the same splitmix-style derivation the topology transforms use —
//! so a packet's fate depends only on the config, the seed, and how many
//! packets that particular link has carried before it. That is what makes
//! impaired runs bit-reproducible across `--shard K/N` slices and
//! `figures launch` workers: shards simulate disjoint work items, and within
//! one item the per-link packet order is fully determined by the engine's
//! event order.
//!
//! Per serialized packet, in a fixed draw order (each draw is skipped when
//! its config knob is off, so enabling one impairment never perturbs the
//! streams of another):
//!
//! 1. **Gilbert–Elliott** state transition (good→bad with probability `p`,
//!    bad→good with probability `r`); a packet sent while the link is in the
//!    bad state is lost on the wire.
//! 2. **i.i.d. loss** with probability `loss`.
//! 3. If it survived: a **jitter** draw (uniform on `[0, jitter_ms)` or
//!    exponential with mean `jitter_ms`), a **reorder** draw (the packet is
//!    held back one serialization slot, modelling an adjacent-pair swap),
//!    and a **duplication** draw (a second copy occupies the next
//!    transmission slot, with its own jitter).
//!
//! Wire losses happen *after* the packet occupied the transmitter — a
//! corrupted frame still burns bandwidth — which is why they are distinct
//! from queue (buffer overflow) drops in the counters.

use jellyfish_topology::spec::{ImpairConfig, JitterDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG stream seed of link key `key` under impairment seed `seed`.
/// Mirrors the per-item derivation used by the experiment layer.
pub fn stream_seed(seed: u64, key: usize) -> u64 {
    seed ^ (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Per-directed-link impairment state: an independent RNG stream plus the
/// Gilbert–Elliott channel state.
#[derive(Debug, Clone)]
struct LinkState {
    rng: StdRng,
    ge_bad: bool,
}

/// What the wire decided for one serialized packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PacketFate {
    /// Lost on the wire (after consuming its transmission slot).
    pub lost: bool,
    /// Extra propagation delay, in time units.
    pub jitter: f64,
    /// Held back one serialization slot behind its successor.
    pub reorder: bool,
    /// `Some(extra delay)` when a duplicate copy is generated.
    pub duplicate: Option<f64>,
}

impl PacketFate {
    const CLEAN: PacketFate =
        PacketFate { lost: false, jitter: 0.0, reorder: false, duplicate: None };
}

/// Impairment state for every directed link of a network, keyed by the
/// network's stable link ids (switch arcs, then host uplinks, then host
/// downlinks).
#[derive(Debug, Clone)]
pub struct Impairments {
    cfg: ImpairConfig,
    states: Vec<LinkState>,
}

fn jitter_draw(cfg: &ImpairConfig, rng: &mut StdRng) -> f64 {
    // Time unit is one second: jitter_ms:5 adds up to (uniform) or on
    // average (exp) 0.005 units, five default propagation delays.
    let scale = cfg.jitter_ms / 1000.0;
    if scale <= 0.0 {
        return 0.0;
    }
    match cfg.jitter_dist {
        JitterDist::Uniform => rng.gen_range(0.0..scale),
        // Inverse-CDF sampling; 1 - u is in (0, 1], so the log is finite.
        JitterDist::Exp => -scale * (1.0 - rng.gen::<f64>()).ln(),
    }
}

impl Impairments {
    /// Fresh impairment state for `num_links` directed links. Pure in
    /// `(cfg, seed, num_links)`.
    pub fn new(cfg: ImpairConfig, seed: u64, num_links: usize) -> Self {
        let states = (0..num_links)
            .map(|key| LinkState {
                rng: StdRng::seed_from_u64(stream_seed(seed, key)),
                ge_bad: false,
            })
            .collect();
        Impairments { cfg, states }
    }

    /// The active configuration.
    pub fn cfg(&self) -> &ImpairConfig {
        &self.cfg
    }

    /// Decides the wire fate of the next packet on link `key`, advancing
    /// that link's RNG stream and Gilbert–Elliott state.
    pub(crate) fn fate(&mut self, key: usize) -> PacketFate {
        let cfg = self.cfg;
        let st = &mut self.states[key];
        let mut lost = false;
        if cfg.ge_good_to_bad > 0.0 || cfg.ge_bad_to_good > 0.0 {
            let flip = if st.ge_bad { cfg.ge_bad_to_good } else { cfg.ge_good_to_bad };
            if flip > 0.0 && st.rng.gen_bool(flip) {
                st.ge_bad = !st.ge_bad;
            }
            lost |= st.ge_bad;
        }
        if cfg.loss > 0.0 {
            lost |= st.rng.gen_bool(cfg.loss);
        }
        if lost {
            return PacketFate { lost: true, ..PacketFate::CLEAN };
        }
        let jitter = jitter_draw(&cfg, &mut st.rng);
        let reorder = cfg.reorder > 0.0 && st.rng.gen_bool(cfg.reorder);
        let duplicate = if cfg.duplicate > 0.0 && st.rng.gen_bool(cfg.duplicate) {
            Some(jitter_draw(&cfg, &mut st.rng))
        } else {
            None
        };
        PacketFate { lost: false, jitter, reorder, duplicate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(loss: f64) -> ImpairConfig {
        ImpairConfig { loss, ..Default::default() }
    }

    #[test]
    fn fates_are_deterministic_per_seed_and_key() {
        let cfg = ImpairConfig {
            loss: 0.1,
            jitter_ms: 5.0,
            reorder: 0.05,
            duplicate: 0.02,
            ..Default::default()
        };
        let mut a = Impairments::new(cfg, 42, 4);
        let mut b = Impairments::new(cfg, 42, 4);
        for i in 0..500 {
            assert_eq!(a.fate(i % 4), b.fate(i % 4), "packet {i}");
        }
    }

    #[test]
    fn links_draw_independent_streams() {
        // Consuming fates on link 0 must not change link 1's sequence.
        let cfg = lossy(0.3);
        let mut interleaved = Impairments::new(cfg, 7, 2);
        let mut solo = Impairments::new(cfg, 7, 2);
        let a: Vec<_> = (0..200)
            .map(|_| {
                interleaved.fate(0);
                interleaved.fate(1)
            })
            .collect();
        let b: Vec<_> = (0..200).map(|_| solo.fate(1)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn iid_loss_rate_is_close_to_nominal() {
        let mut imp = Impairments::new(lossy(0.2), 9, 1);
        let lost = (0..10_000).filter(|_| imp.fate(0).lost).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_come_in_bursts() {
        // Sticky bad state (r small) ⇒ loss runs much longer than i.i.d.
        // loss of the same long-run rate would produce.
        let cfg = ImpairConfig { ge_good_to_bad: 0.01, ge_bad_to_good: 0.2, ..Default::default() };
        let mut imp = Impairments::new(cfg, 3, 1);
        let fates: Vec<bool> = (0..50_000).map(|_| imp.fate(0).lost).collect();
        let total = fates.iter().filter(|&&l| l).count();
        // Long-run loss rate ≈ p / (p + r) ≈ 0.0476.
        let rate = total as f64 / fates.len() as f64;
        assert!((rate - 0.01 / 0.21).abs() < 0.01, "long-run GE loss rate {rate}");
        // Mean burst length ≈ 1/r = 5 packets.
        let mut bursts = 0usize;
        for i in 0..fates.len() {
            if fates[i] && (i == 0 || !fates[i - 1]) {
                bursts += 1;
            }
        }
        let mean_burst = total as f64 / bursts as f64;
        assert!(mean_burst > 3.0, "mean GE burst length {mean_burst} should be ≈ 5");
    }

    #[test]
    fn jitter_is_bounded_uniform_or_positive_exp() {
        let uni = ImpairConfig { jitter_ms: 5.0, ..Default::default() };
        let mut imp = Impairments::new(uni, 11, 1);
        for _ in 0..1_000 {
            let j = imp.fate(0).jitter;
            assert!((0.0..0.005).contains(&j), "uniform jitter {j} out of [0, 0.005)");
        }
        let exp = ImpairConfig { jitter_ms: 5.0, jitter_dist: JitterDist::Exp, ..uni };
        let mut imp = Impairments::new(exp, 11, 1);
        let mean = (0..10_000).map(|_| imp.fate(0).jitter).sum::<f64>() / 10_000.0;
        assert!(imp.fate(0).jitter >= 0.0);
        assert!((mean - 0.005).abs() < 0.0005, "exp jitter mean {mean} should be ≈ 0.005");
    }

    #[test]
    fn ideal_config_is_a_no_op() {
        // All knobs off ⇒ no draws, every fate is clean: attaching a
        // default impairment cannot perturb a run.
        let mut imp = Impairments::new(ImpairConfig::default(), 5, 2);
        for i in 0..100 {
            assert_eq!(imp.fate(i % 2), PacketFate::CLEAN);
        }
    }

    #[test]
    fn later_draws_are_gated_on_earlier_fate() {
        // A packet's leading draws (GE, loss, jitter) are positioned before
        // the duplication draw, so enabling duplication leaves the first
        // packet's loss and jitter decisions unchanged.
        let a_cfg = ImpairConfig { loss: 0.1, jitter_ms: 2.0, ..Default::default() };
        let b_cfg = ImpairConfig { duplicate: 0.5, ..a_cfg };
        let fa = Impairments::new(a_cfg, 5, 1).fate(0);
        let fb = Impairments::new(b_cfg, 5, 1).fate(0);
        assert_eq!(fa.lost, fb.lost);
        assert_eq!(fa.jitter, fb.jitter);
    }
}
