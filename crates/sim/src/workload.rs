//! Building simulated connections from a traffic matrix.
//!
//! A [`Connection`] is one entry of the (server-level) traffic matrix: its
//! subflows carry host-level source routes (src host → ToR switches → dst
//! host), and the transport policy says whether the subflows are independent
//! TCP flows or LIA-coupled MPTCP subflows.
//!
//! Per-flow path assignment is independent (each flow derives its own seed
//! from its index), so [`build_connections`] fans the per-flow path
//! computations out with rayon while producing exactly the serial order.

use crate::net::SimNode;
use crate::routing::{assign_subflow_paths, PathPolicy, TransportPolicy};
use jellyfish_topology::CsrGraph;
use jellyfish_traffic::{FlowStream, ServerMap, TrafficMatrix};
use rayon::prelude::*;

/// One simulated connection (one traffic-matrix entry).
#[derive(Debug, Clone)]
pub struct Connection {
    /// Sending server (global id).
    pub src_server: usize,
    /// Receiving server (global id).
    pub dst_server: usize,
    /// Host-level forward path of every subflow (first entry the source
    /// host's sim node, last entry the destination host's sim node).
    pub subflow_paths: Vec<Vec<SimNode>>,
    /// Whether the subflows' congestion windows are LIA-coupled (MPTCP).
    pub coupled: bool,
}

impl Connection {
    /// Number of subflows.
    pub fn num_subflows(&self) -> usize {
        self.subflow_paths.len()
    }
}

/// Builds the connections for a traffic matrix under the given routing and
/// transport policies. Connections whose endpoints are disconnected in the
/// switch graph are skipped (they would get zero throughput; the paper's
/// topologies are always connected).
pub fn build_connections(
    csr: &CsrGraph,
    servers: &ServerMap,
    tm: &TrafficMatrix,
    path_policy: PathPolicy,
    transport: TransportPolicy,
    seed: u64,
) -> Vec<Connection> {
    build_connections_stream(csr, servers, tm.stream(), path_policy, transport, seed)
}

/// Stream-accepting variant of [`build_connections`]: the flows are drawn
/// from a lazy [`FlowStream`] (spec-built workloads) instead of an eager
/// matrix. Per-flow seeds are derived from the flow's position in the
/// stream, so an eager matrix and its stream produce identical connections.
/// Connections are materialized (the simulator needs them all), so this is
/// inherently O(flows) — the streaming win is not copying the flow list
/// twice.
pub fn build_connections_stream(
    csr: &CsrGraph,
    servers: &ServerMap,
    flows: FlowStream,
    path_policy: PathPolicy,
    transport: TransportPolicy,
    seed: u64,
) -> Vec<Connection> {
    let num_switches = csr.num_nodes();
    let host_node = |server: usize| num_switches + server;
    let flows: Vec<(usize, jellyfish_traffic::Flow)> = flows.enumerate().collect();
    flows
        .into_par_iter()
        .map(|(idx, flow)| {
            let src_switch = servers.switch_of(flow.src);
            let dst_switch = servers.switch_of(flow.dst);
            let switch_paths: Vec<Vec<usize>> = if src_switch == dst_switch {
                // Intra-rack traffic: every subflow just hops through the ToR.
                vec![vec![src_switch]; transport.subflow_count()]
            } else {
                assign_subflow_paths(
                    csr,
                    src_switch,
                    dst_switch,
                    path_policy,
                    transport,
                    seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                )
            };
            if switch_paths.is_empty() {
                return None;
            }
            let subflow_paths: Vec<Vec<SimNode>> = switch_paths
                .into_iter()
                .map(|sp| {
                    let mut path = Vec::with_capacity(sp.len() + 2);
                    path.push(host_node(flow.src));
                    path.extend(sp);
                    path.push(host_node(flow.dst));
                    path
                })
                .collect();
            Some(Connection {
                src_server: flow.src,
                dst_server: flow.dst,
                subflow_paths,
                coupled: transport.coupled(),
            })
        })
        .collect::<Vec<Option<Connection>>>()
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::{JellyfishBuilder, Topology};

    fn setup() -> (Topology, ServerMap, TrafficMatrix) {
        let topo = JellyfishBuilder::new(12, 8, 5).seed(2).build().unwrap();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, 3);
        (topo, servers, tm)
    }

    #[test]
    fn one_connection_per_traffic_flow() {
        let (topo, servers, tm) = setup();
        let conns = build_connections(
            &topo.csr(),
            &servers,
            &tm,
            PathPolicy::ksp8(),
            TransportPolicy::Mptcp { subflows: 8 },
            1,
        );
        assert_eq!(conns.len(), tm.flows().len());
        for c in &conns {
            assert_eq!(c.num_subflows(), 8);
            assert!(c.coupled);
        }
    }

    #[test]
    fn paths_start_and_end_at_hosts() {
        let (topo, servers, tm) = setup();
        let csr = topo.csr();
        let conns = build_connections(
            &csr,
            &servers,
            &tm,
            PathPolicy::ecmp8(),
            TransportPolicy::Tcp { flows: 1 },
            5,
        );
        let n_switches = topo.num_switches();
        for c in &conns {
            assert!(!c.coupled);
            for p in &c.subflow_paths {
                assert_eq!(p[0], n_switches + c.src_server);
                assert_eq!(*p.last().unwrap(), n_switches + c.dst_server);
                assert!(p.len() >= 3, "host-ToR-host at minimum");
                // Interior nodes are switches.
                for &n in &p[1..p.len() - 1] {
                    assert!(n < n_switches);
                }
                // Adjacent ToR hops are real links.
                for w in p[1..p.len() - 1].windows(2) {
                    assert!(csr.has_edge(w[0], w[1]));
                }
                // First and last switch are the endpoints' ToRs.
                assert_eq!(p[1], servers.switch_of(c.src_server));
                assert_eq!(p[p.len() - 2], servers.switch_of(c.dst_server));
            }
        }
    }

    #[test]
    fn intra_rack_pairs_route_through_the_tor_only() {
        let topo = JellyfishBuilder::new(4, 8, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        // Servers 0 and 1 are both on switch 0.
        let tm = TrafficMatrix::from_flows(
            vec![jellyfish_traffic::Flow { src: 0, dst: 1, demand: 1.0 }],
            servers.num_servers(),
            "intra",
        );
        let conns = build_connections(
            &topo.csr(),
            &servers,
            &tm,
            PathPolicy::ksp8(),
            TransportPolicy::Tcp { flows: 2 },
            1,
        );
        assert_eq!(conns.len(), 1);
        for p in &conns[0].subflow_paths {
            assert_eq!(p.len(), 3);
            assert_eq!(p[1], 0);
        }
    }

    #[test]
    fn tcp_flows_policy_creates_that_many_subflows() {
        let (topo, servers, tm) = setup();
        let csr = topo.csr();
        for flows in [1usize, 4, 8] {
            let conns = build_connections(
                &csr,
                &servers,
                &tm,
                PathPolicy::ecmp8(),
                TransportPolicy::Tcp { flows },
                2,
            );
            assert!(conns.iter().all(|c| c.num_subflows() == flows));
        }
    }
}
