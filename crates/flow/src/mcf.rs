//! Max-concurrent multicommodity flow via the Garg–Könemann multiplicative
//! weights framework.
//!
//! Given directed arc capacities (every undirected switch link contributes
//! two arcs of unit capacity — links are full duplex) and a set of
//! commodities `(src, dst, demand)`, the solver computes the largest `λ` such
//! that `λ · demand_j` can be routed for every commodity simultaneously,
//! within a multiplicative `(1 − ε)` of the true optimum.
//!
//! Two variants are provided:
//!
//! * [`max_concurrent_flow`] — the textbook algorithm, where each routing
//!   step picks the currently-cheapest path with Dijkstra. This is the
//!   CPLEX-equivalent "optimal routing" oracle.
//! * [`max_concurrent_flow_on_paths`] — the same multiplicative-weights
//!   update restricted to a precomputed path set per commodity (e.g. the 8
//!   shortest paths). This is both much faster and exactly the quantity
//!   "best possible load balancing over k-shortest paths", which the paper's
//!   §5 routing study approaches from below with MPTCP.
//!
//! Both consume a [`CsrGraph`] snapshot, and all per-arc state (lengths,
//! accumulated flow) lives in flat vectors indexed by the snapshot's dense
//! arc ids — the inner Dijkstra loop never touches a hash map. See
//! DESIGN.md, substitution 1, for the CPLEX substitution argument and the
//! snapshot contract.

use jellyfish_routing::shortest::weighted_shortest_path_arcs;
use jellyfish_routing::Path;
use jellyfish_topology::{ArcId, CsrGraph, NodeId};
use std::collections::HashMap;

/// One commodity: a demand from a source switch to a destination switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Source switch.
    pub src: NodeId,
    /// Destination switch.
    pub dst: NodeId,
    /// Demand in the same units as link capacity.
    pub demand: f64,
}

/// Options controlling the approximation.
#[derive(Debug, Clone, Copy)]
pub struct McfOptions {
    /// Approximation accuracy ε: the returned λ is ≥ (1 − ε)·OPT up to
    /// floating-point noise. Smaller is slower (roughly 1/ε²).
    pub epsilon: f64,
    /// Capacity of every directed switch-to-switch arc.
    pub link_capacity: f64,
    /// Stop early once λ provably reaches this value (useful for "is the
    /// network at full throughput?" checks where only λ ≥ 1 matters).
    pub lambda_cap: Option<f64>,
}

impl Default for McfOptions {
    fn default() -> Self {
        McfOptions { epsilon: 0.05, link_capacity: 1.0, lambda_cap: None }
    }
}

/// Result of a max-concurrent-flow computation.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// The achieved concurrent-flow fraction λ (possibly truncated at
    /// `lambda_cap`).
    pub lambda: f64,
    /// Scaled utilization in `[0, 1]` of every directed arc, indexed by the
    /// snapshot's dense [`ArcId`] (empty when the solve short-circuited
    /// before touching any arc). Use [`McfSolution::link_utilization`] for
    /// the endpoint-keyed view.
    pub arc_utilization: Vec<f64>,
    /// Number of shortest-path computations performed (profiling aid).
    pub path_computations: usize,
}

impl McfSolution {
    /// The utilization map keyed by arc endpoints `(u, v)` — a compatibility
    /// view materialized from [`McfSolution::arc_utilization`] on demand.
    /// `csr` must be the snapshot the solve ran on.
    pub fn link_utilization(&self, csr: &CsrGraph) -> HashMap<(NodeId, NodeId), f64> {
        let mut out = HashMap::with_capacity(self.arc_utilization.len());
        for u in csr.nodes() {
            for arc in csr.arc_range(u) {
                let util = self.arc_utilization.get(arc).copied().unwrap_or(0.0);
                out.insert((u, csr.arc_target(arc)), util);
            }
        }
        out
    }

    /// Maximum arc utilization (1.0 means some arc is saturated).
    pub fn max_utilization(&self) -> f64 {
        self.arc_utilization.iter().fold(0.0, |acc, &u| f64::max(acc, u))
    }

    /// Mean arc utilization across all arcs that carry any flow.
    pub fn mean_utilization(&self) -> f64 {
        let (count, sum) = self
            .arc_utilization
            .iter()
            .filter(|&&u| u > 0.0)
            .fold((0usize, 0.0f64), |(count, sum), &u| (count + 1, sum + u));
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

/// Internal per-arc state for the multiplicative-weights algorithm: flat
/// slices indexed by dense arc id.
struct ArcState {
    length: Vec<f64>,
    flow: Vec<f64>,
    capacity: f64,
    /// Running total of `length · capacity` over all arcs, updated
    /// incrementally in `send_on_arcs` (the textbook loop re-sums every
    /// iteration; the increment is exact because each update multiplies a
    /// single arc's length).
    total_weighted_length: f64,
}

impl ArcState {
    fn new(csr: &CsrGraph, capacity: f64, delta: f64) -> Self {
        let num_arcs = csr.num_arcs();
        ArcState {
            length: vec![delta / capacity; num_arcs],
            flow: vec![0.0; num_arcs],
            capacity,
            total_weighted_length: delta * num_arcs as f64,
        }
    }

    #[inline]
    fn total_weighted_length(&self) -> f64 {
        self.total_weighted_length
    }

    fn path_bottleneck(&self) -> f64 {
        self.capacity
    }

    fn send_on_arcs(&mut self, arcs: &[ArcId], amount: f64, epsilon: f64) {
        // The multiplicative factor is the same for every arc on the path;
        // hoisting it out leaves the per-arc work branch-free and lets the
        // chunked kernel keep several arcs in flight.
        let factor = 1.0 + epsilon * amount / self.capacity;
        crate::kernels::gk_apply(
            &mut self.length,
            &mut self.flow,
            arcs,
            amount,
            factor,
            self.capacity,
            &mut self.total_weighted_length,
        );
    }

    #[inline]
    fn arc_length(&self, arc: ArcId) -> f64 {
        self.length[arc]
    }
}

/// Maps a node path to its arc ids. Panics if the path uses a non-link.
fn path_arcs(csr: &CsrGraph, path: &Path) -> Vec<ArcId> {
    path.windows(2)
        .map(|w| csr.arc_index(w[0], w[1]).expect("path traverses a link absent from the snapshot"))
        .collect()
}

/// Validates commodities against the snapshot; zero-demand commodities and
/// self-loops are dropped.
fn sanitize(csr: &CsrGraph, commodities: &[Commodity]) -> Vec<Commodity> {
    commodities
        .iter()
        .copied()
        .filter(|c| c.src != c.dst && c.demand > 0.0)
        .inspect(|c| {
            assert!(
                c.src < csr.num_nodes() && c.dst < csr.num_nodes(),
                "commodity endpoint out of range"
            );
        })
        .collect()
}

/// Max-concurrent multicommodity flow with a Dijkstra inner loop
/// (the "optimal routing" oracle).
///
/// Returns λ such that every commodity can simultaneously route a `λ`
/// fraction of its demand. With `opts.lambda_cap = Some(c)`, iteration stops
/// as soon as λ ≥ c can be certified, which is much faster when only a
/// threshold matters.
pub fn max_concurrent_flow(
    csr: &CsrGraph,
    commodities: &[Commodity],
    opts: McfOptions,
) -> McfSolution {
    let commodities = sanitize(csr, commodities);
    if commodities.is_empty() || csr.num_edges() == 0 {
        return McfSolution {
            lambda: if commodities.is_empty() { f64::INFINITY } else { 0.0 },
            arc_utilization: Vec::new(),
            path_computations: 0,
        };
    }
    let eps = opts.epsilon.clamp(1e-3, 0.5);
    let num_arcs = csr.num_arcs();
    // Garg–Könemann initialization.
    let delta = (1.0 + eps) / ((1.0 + eps) * num_arcs as f64).powf(1.0 / eps);
    let mut arcs = ArcState::new(csr, opts.link_capacity, delta);
    let scaling = ((1.0 + eps) / delta).ln() / (1.0 + eps).ln();
    let mut phases = 0.0f64;
    let mut path_computations = 0usize;

    'outer: while arcs.total_weighted_length() < 1.0 {
        for c in &commodities {
            let mut remaining = c.demand;
            while remaining > 1e-12 {
                if arcs.total_weighted_length() >= 1.0 {
                    break 'outer;
                }
                path_computations += 1;
                let found =
                    weighted_shortest_path_arcs(csr, c.src, c.dst, |arc| arcs.arc_length(arc));
                let Some((path, _)) = found else {
                    // Unreachable destination: λ is zero.
                    return McfSolution {
                        lambda: 0.0,
                        arc_utilization: Vec::new(),
                        path_computations,
                    };
                };
                let send = remaining.min(arcs.path_bottleneck());
                let ids = path_arcs(csr, &path);
                arcs.send_on_arcs(&ids, send, eps);
                remaining -= send;
            }
        }
        phases += 1.0;
        if let Some(cap) = opts.lambda_cap {
            // λ after this many full phases is at least phases / scaling.
            if phases / scaling >= cap {
                break;
            }
        }
    }

    let lambda_raw = phases / scaling;
    let lambda = match opts.lambda_cap {
        Some(cap) => lambda_raw.min(cap),
        None => lambda_raw,
    };
    let utilization = scaled_utilization(&arcs, lambda_raw, phases);
    McfSolution { lambda, arc_utilization: utilization, path_computations }
}

/// Max-concurrent flow restricted to the provided paths: `paths[j]` is the
/// admissible path set for commodity `j` (must be non-empty and connect the
/// commodity endpoints).
///
/// This models "ideal load balancing over a fixed routing scheme" — e.g.
/// handing the k shortest paths to an optimal rate controller — and is the
/// quantity the paper's MPTCP-over-k-shortest-paths stack approximates.
pub fn max_concurrent_flow_on_paths(
    csr: &CsrGraph,
    commodities: &[Commodity],
    paths: &[Vec<Path>],
    opts: McfOptions,
) -> McfSolution {
    assert_eq!(commodities.len(), paths.len(), "one path set per commodity");
    let keep: Vec<usize> = (0..commodities.len())
        .filter(|&j| commodities[j].src != commodities[j].dst && commodities[j].demand > 0.0)
        .collect();
    if keep.is_empty() || csr.num_edges() == 0 {
        return McfSolution {
            lambda: if keep.is_empty() { f64::INFINITY } else { 0.0 },
            arc_utilization: Vec::new(),
            path_computations: 0,
        };
    }
    let eps = opts.epsilon.clamp(1e-3, 0.5);
    let num_arcs = csr.num_arcs();
    let delta = (1.0 + eps) / ((1.0 + eps) * num_arcs as f64).powf(1.0 / eps);
    let mut arcs = ArcState::new(csr, opts.link_capacity, delta);
    let scaling = ((1.0 + eps) / delta).ln() / (1.0 + eps).ln();
    let mut phases = 0.0f64;

    // Pre-resolve every admissible path to arc ids once; the inner loop then
    // scores candidates by flat slice lookups only.
    let mut arc_paths: Vec<Vec<Vec<ArcId>>> = vec![Vec::new(); commodities.len()];
    for &j in &keep {
        assert!(!paths[j].is_empty(), "commodity {j} has an empty path set");
        for p in &paths[j] {
            assert_eq!(p.first(), Some(&commodities[j].src));
            assert_eq!(p.last(), Some(&commodities[j].dst));
            arc_paths[j].push(path_arcs(csr, p));
        }
    }

    'outer: while arcs.total_weighted_length() < 1.0 {
        for &j in &keep {
            let c = commodities[j];
            let mut remaining = c.demand;
            while remaining > 1e-12 {
                if arcs.total_weighted_length() >= 1.0 {
                    break 'outer;
                }
                // Cheapest admissible path under current lengths.
                let best = arc_paths[j]
                    .iter()
                    .min_by(|a, b| {
                        let ca = crate::kernels::path_cost(&arcs.length, a);
                        let cb = crate::kernels::path_cost(&arcs.length, b);
                        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty path set");
                let send = remaining.min(arcs.path_bottleneck());
                arcs.send_on_arcs(best, send, eps);
                remaining -= send;
            }
        }
        phases += 1.0;
        if let Some(cap) = opts.lambda_cap {
            if phases / scaling >= cap {
                break;
            }
        }
    }

    let lambda_raw = phases / scaling;
    let lambda = match opts.lambda_cap {
        Some(cap) => lambda_raw.min(cap),
        None => lambda_raw,
    };
    let utilization = scaled_utilization(&arcs, lambda_raw, phases);
    McfSolution { lambda, arc_utilization: utilization, path_computations: 0 }
}

/// Converts raw accumulated flow into per-arc utilization consistent with the
/// returned λ: the algorithm routes every demand once per phase, so the true
/// (feasible) flow is the accumulated flow divided by the number of phases,
/// then multiplied by λ to express the concurrently-routable fraction. One
/// elementwise pass over the flat flow array.
fn scaled_utilization(arcs: &ArcState, lambda_raw: f64, phases: f64) -> Vec<f64> {
    if phases <= 0.0 {
        return Vec::new();
    }
    let scale = if lambda_raw > 0.0 { 1.0 } else { 0.0 };
    crate::kernels::scale_clamp(&arcs.flow, phases, scale, arcs.capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_routing::yen::k_shortest_paths;
    use jellyfish_topology::{Graph, JellyfishBuilder};

    fn single_link() -> CsrGraph {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        CsrGraph::from_graph(&g)
    }

    #[test]
    fn single_commodity_on_single_link() {
        let g = single_link();
        let commodities = [Commodity { src: 0, dst: 1, demand: 1.0 }];
        let sol = max_concurrent_flow(&g, &commodities, McfOptions::default());
        // One unit of demand over a unit-capacity link: λ ≈ 1.
        assert!((sol.lambda - 1.0).abs() < 0.1, "lambda = {}", sol.lambda);
    }

    #[test]
    fn demand_double_capacity_halves_lambda() {
        let g = single_link();
        let commodities = [Commodity { src: 0, dst: 1, demand: 2.0 }];
        let sol = max_concurrent_flow(&g, &commodities, McfOptions::default());
        assert!((sol.lambda - 0.5).abs() < 0.06, "lambda = {}", sol.lambda);
    }

    #[test]
    fn two_opposite_commodities_use_both_directions() {
        // Full-duplex link: 0→1 and 1→0 each get their own unit arc.
        let g = single_link();
        let commodities =
            [Commodity { src: 0, dst: 1, demand: 1.0 }, Commodity { src: 1, dst: 0, demand: 1.0 }];
        let sol = max_concurrent_flow(&g, &commodities, McfOptions::default());
        assert!((sol.lambda - 1.0).abs() < 0.1, "lambda = {}", sol.lambda);
    }

    #[test]
    fn parallel_paths_double_capacity() {
        // 0 - 1 - 3 and 0 - 2 - 3: two disjoint 2-hop paths.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        let g = CsrGraph::from_graph(&g);
        let commodities = [Commodity { src: 0, dst: 3, demand: 2.0 }];
        let sol = max_concurrent_flow(&g, &commodities, McfOptions::default());
        assert!((sol.lambda - 1.0).abs() < 0.1, "lambda = {}", sol.lambda);
        // Utilization spread across both paths.
        assert!(sol.max_utilization() <= 1.0 + 1e-9);
    }

    #[test]
    fn bottleneck_shared_by_two_commodities() {
        // Both commodities must cross the single 1-2 link: λ ≈ 0.5 each.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let g = CsrGraph::from_graph(&g);
        let commodities =
            [Commodity { src: 0, dst: 3, demand: 1.0 }, Commodity { src: 1, dst: 3, demand: 1.0 }];
        let sol = max_concurrent_flow(&g, &commodities, McfOptions::default());
        assert!((sol.lambda - 0.5).abs() < 0.06, "lambda = {}", sol.lambda);
    }

    #[test]
    fn unreachable_destination_gives_zero() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let g = CsrGraph::from_graph(&g);
        let commodities = [Commodity { src: 0, dst: 2, demand: 1.0 }];
        let sol = max_concurrent_flow(&g, &commodities, McfOptions::default());
        assert_eq!(sol.lambda, 0.0);
    }

    #[test]
    fn empty_commodities_are_unconstrained() {
        let g = single_link();
        let sol = max_concurrent_flow(&g, &[], McfOptions::default());
        assert!(sol.lambda.is_infinite());
        let sol2 = max_concurrent_flow(
            &g,
            &[Commodity { src: 0, dst: 0, demand: 5.0 }],
            McfOptions::default(),
        );
        assert!(sol2.lambda.is_infinite(), "self-loop demands are dropped");
    }

    #[test]
    fn lambda_cap_stops_early() {
        let g = single_link();
        let commodities = [Commodity { src: 0, dst: 1, demand: 0.01 }];
        let opts = McfOptions { lambda_cap: Some(1.0), ..Default::default() };
        let sol = max_concurrent_flow(&g, &commodities, opts);
        assert!((sol.lambda - 1.0).abs() < 1e-9);
        // Without the cap λ would be ~100; with it we stop at 1.0.
        let uncapped = max_concurrent_flow(&g, &commodities, McfOptions::default());
        assert!(uncapped.lambda > 10.0);
        assert!(sol.path_computations < uncapped.path_computations);
    }

    #[test]
    fn link_capacity_scales_lambda() {
        let g = single_link();
        let commodities = [Commodity { src: 0, dst: 1, demand: 1.0 }];
        let opts = McfOptions { link_capacity: 4.0, ..Default::default() };
        let sol = max_concurrent_flow(&g, &commodities, opts);
        assert!((sol.lambda - 4.0).abs() < 0.4, "lambda = {}", sol.lambda);
    }

    #[test]
    fn epsilon_controls_accuracy() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let g = CsrGraph::from_graph(&g);
        let commodities = [Commodity { src: 0, dst: 2, demand: 1.0 }];
        let coarse = max_concurrent_flow(
            &g,
            &commodities,
            McfOptions { epsilon: 0.3, ..Default::default() },
        );
        let fine = max_concurrent_flow(
            &g,
            &commodities,
            McfOptions { epsilon: 0.02, ..Default::default() },
        );
        assert!((fine.lambda - 1.0).abs() <= (coarse.lambda - 1.0).abs() + 0.05);
        assert!((fine.lambda - 1.0).abs() < 0.05);
    }

    #[test]
    fn path_restricted_matches_full_solver_when_paths_suffice() {
        let topo = JellyfishBuilder::new(16, 6, 4).seed(1).build().unwrap();
        let g = topo.csr();
        let commodities: Vec<Commodity> =
            (0..8).map(|i| Commodity { src: i, dst: i + 8, demand: 1.0 }).collect();
        let paths: Vec<Vec<Path>> =
            commodities.iter().map(|c| k_shortest_paths(&g, c.src, c.dst, 8)).collect();
        let full = max_concurrent_flow(&g, &commodities, McfOptions::default());
        let restricted =
            max_concurrent_flow_on_paths(&g, &commodities, &paths, McfOptions::default());
        // Restricting to 8 shortest paths can only lose a little capacity
        // (allow for the ±ε noise of both approximations).
        assert!(
            restricted.lambda <= full.lambda * 1.1 + 0.05,
            "restricted {} vs full {}",
            restricted.lambda,
            full.lambda
        );
        assert!(
            restricted.lambda >= 0.75 * full.lambda,
            "restricted {} vs full {}",
            restricted.lambda,
            full.lambda
        );
    }

    #[test]
    fn path_restricted_single_path_bottleneck() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let g = CsrGraph::from_graph(&g);
        let commodities =
            [Commodity { src: 0, dst: 2, demand: 1.0 }, Commodity { src: 1, dst: 2, demand: 1.0 }];
        let paths = vec![vec![vec![0, 1, 2]], vec![vec![1, 2]]];
        let sol = max_concurrent_flow_on_paths(&g, &commodities, &paths, McfOptions::default());
        assert!((sol.lambda - 0.5).abs() < 0.06, "lambda = {}", sol.lambda);
    }

    #[test]
    #[should_panic(expected = "empty path set")]
    fn path_restricted_requires_paths() {
        let g = single_link();
        let commodities = [Commodity { src: 0, dst: 1, demand: 1.0 }];
        max_concurrent_flow_on_paths(&g, &commodities, &[Vec::new()], McfOptions::default());
    }

    #[test]
    fn permutation_on_jellyfish_reaches_full_throughput_when_underloaded() {
        // 20 switches, degree 6, only 2 servers each: lots of headroom, so a
        // permutation across switches should reach λ >= 1.
        let topo = JellyfishBuilder::new(20, 8, 6).seed(2).build().unwrap();
        let g = topo.csr();
        let commodities: Vec<Commodity> =
            (0..20).map(|i| Commodity { src: i, dst: (i + 7) % 20, demand: 2.0 }).collect();
        let opts = McfOptions { lambda_cap: Some(1.0), ..Default::default() };
        let sol = max_concurrent_flow(&g, &commodities, opts);
        assert!((sol.lambda - 1.0).abs() < 1e-9, "lambda = {}", sol.lambda);
    }

    #[test]
    fn utilization_keys_cover_all_arcs() {
        let topo = JellyfishBuilder::new(10, 6, 3).seed(4).build().unwrap();
        let g = topo.csr();
        let commodities = [Commodity { src: 0, dst: 5, demand: 1.0 }];
        let sol = max_concurrent_flow(&g, &commodities, McfOptions::default());
        assert_eq!(sol.arc_utilization.len(), g.num_arcs());
        let by_link = sol.link_utilization(&g);
        assert_eq!(by_link.len(), g.num_arcs());
        for (&(u, v), &util) in &by_link {
            assert!(g.has_edge(u, v));
            assert!((0.0..=1.0).contains(&util));
            let arc = g.arc_index(u, v).unwrap();
            assert_eq!(util.to_bits(), sol.arc_utilization[arc].to_bits());
        }
    }
}
