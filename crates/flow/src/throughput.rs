//! Normalized throughput of a topology under a traffic matrix, with "ideal"
//! (fluid, splittable) routing — the paper's §4 capacity metric.
//!
//! The server-level traffic matrix is aggregated to switch-level commodities
//! (intra-switch flows never touch the interconnect), the max-concurrent-flow
//! solver computes the fraction λ of every demand that can be routed
//! simultaneously, and the per-flow normalized throughput is `min(λ, 1)`
//! because a server can never exceed its NIC rate.

use crate::mcf::{max_concurrent_flow, max_concurrent_flow_on_paths, Commodity, McfOptions};
use jellyfish_routing::yen::k_shortest_paths;
use jellyfish_topology::{NodeId, Topology};
use jellyfish_traffic::{FlowStream, ServerMap, TrafficMatrix, TrafficSpec};
use rayon::prelude::*;

/// How the admissible paths are chosen for the throughput computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingModel {
    /// Optimal routing: flows may take any path (Dijkstra inner loop).
    Optimal,
    /// Flows restricted to the k shortest paths between their switches.
    KShortestPaths(usize),
}

/// Options for [`normalized_throughput`].
#[derive(Debug, Clone, Copy)]
pub struct ThroughputOptions {
    /// Approximation accuracy for the flow solver.
    pub epsilon: f64,
    /// Routing model (optimal by default).
    pub routing: RoutingModel,
    /// If true (default), stop as soon as full throughput (λ ≥ 1) is
    /// certified instead of computing the exact λ.
    pub stop_at_full: bool,
}

impl Default for ThroughputOptions {
    fn default() -> Self {
        ThroughputOptions { epsilon: 0.05, routing: RoutingModel::Optimal, stop_at_full: true }
    }
}

/// Result of a throughput evaluation.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// The concurrent-flow fraction λ (not capped at 1).
    pub lambda: f64,
    /// Normalized per-flow throughput `min(λ, 1)`, the paper's y-axis unit.
    pub normalized: f64,
    /// Number of switch-level commodities after aggregation.
    pub commodities: usize,
    /// The solver accuracy ε used; the reported λ is a (1 − ε)-style lower
    /// bound on the true optimum.
    pub epsilon: f64,
}

impl ThroughputResult {
    /// `true` when every flow achieves its full demand, within the solver's
    /// approximation tolerance: because the solver under-reports the optimum
    /// by up to a factor (1 − ε), a measured `normalized ≥ 1 − 1.5ε` is
    /// treated as full throughput.
    pub fn at_full_throughput(&self) -> bool {
        self.normalized >= 1.0 - 1.5 * self.epsilon - 1e-9
    }
}

/// Computes the normalized throughput of `topo` under `tm` with fluid optimal
/// (or k-shortest-path-restricted) routing.
pub fn normalized_throughput(
    topo: &Topology,
    servers: &ServerMap,
    tm: &TrafficMatrix,
    opts: ThroughputOptions,
) -> ThroughputResult {
    throughput_from_demands(topo, tm.switch_demands(servers), opts)
}

/// Computes the normalized throughput of `topo` under a lazy workload
/// stream. The stream is aggregated to switch demands as it is consumed, so
/// peak memory is the switch-pair aggregation state, never the flow count —
/// this is the streaming entry point for spec-built workloads.
pub fn normalized_throughput_stream(
    topo: &Topology,
    servers: &ServerMap,
    stream: FlowStream,
    opts: ThroughputOptions,
) -> ThroughputResult {
    throughput_from_demands(topo, stream.switch_demands(servers), opts)
}

/// The shared solver core: switch-level demands in, throughput result out.
fn throughput_from_demands(
    topo: &Topology,
    demands: Vec<(NodeId, NodeId, f64)>,
    opts: ThroughputOptions,
) -> ThroughputResult {
    let commodities: Vec<Commodity> =
        demands.iter().map(|&(s, d, demand)| Commodity { src: s, dst: d, demand }).collect();
    if commodities.is_empty() {
        return ThroughputResult {
            lambda: f64::INFINITY,
            normalized: 1.0,
            commodities: 0,
            epsilon: opts.epsilon,
        };
    }
    let mcf_opts = McfOptions {
        epsilon: opts.epsilon,
        link_capacity: 1.0,
        lambda_cap: if opts.stop_at_full { Some(1.0) } else { None },
    };
    let csr = topo.csr();
    let solution = match opts.routing {
        RoutingModel::Optimal => max_concurrent_flow(&csr, &commodities, mcf_opts),
        RoutingModel::KShortestPaths(k) => {
            // Per-commodity path sets are independent: fan them out.
            let paths: Vec<_> = commodities
                .par_iter()
                .map(|c| k_shortest_paths(&csr, c.src, c.dst, k.max(1)))
                .collect();
            if paths.iter().any(Vec::is_empty) {
                return ThroughputResult {
                    lambda: 0.0,
                    normalized: 0.0,
                    commodities: commodities.len(),
                    epsilon: opts.epsilon,
                };
            }
            max_concurrent_flow_on_paths(&csr, &commodities, &paths, mcf_opts)
        }
    };
    ThroughputResult {
        lambda: solution.lambda,
        normalized: solution.lambda.clamp(0.0, 1.0),
        commodities: commodities.len(),
        epsilon: opts.epsilon,
    }
}

/// Averages the normalized throughput over several random-permutation
/// matrices (the paper averages over multiple runs). Returns
/// `(mean, min, max)` of the normalized throughput.
pub fn permutation_throughput_stats(
    topo: &Topology,
    runs: usize,
    opts: ThroughputOptions,
    seed: u64,
) -> (f64, f64, f64) {
    let servers = ServerMap::new(topo);
    let spec = TrafficSpec::permutation();
    let mut values = Vec::with_capacity(runs.max(1));
    for i in 0..runs.max(1) {
        // Spec-driven but byte-identical to the eager constructor: the
        // permutation generator delegates to it, seed for seed.
        let tm = spec
            .matrix(&servers, seed.wrapping_add(i as u64))
            .expect("the permutation workload builds on any server map");
        let result = normalized_throughput(topo, &servers, &tm, opts);
        values.push(result.normalized);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::fattree::FatTree;
    use jellyfish_topology::JellyfishBuilder;

    #[test]
    fn undersubscribed_jellyfish_reaches_full_throughput() {
        // 2 servers per switch against 6 network ports: far below the
        // oversubscription point, so every permutation is routable.
        let topo = JellyfishBuilder::new(20, 8, 6).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, 2);
        let r = normalized_throughput(&topo, &servers, &tm, ThroughputOptions::default());
        assert!(r.at_full_throughput(), "normalized = {}", r.normalized);
        assert!(r.commodities > 0);
    }

    #[test]
    fn oversubscribed_jellyfish_below_full_throughput() {
        // 6 servers per switch with only 3 network ports: heavily
        // oversubscribed, permutations cannot all be satisfied.
        let topo = JellyfishBuilder::new(20, 9, 3).seed(3).build().unwrap();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, 4);
        let opts = ThroughputOptions { stop_at_full: false, ..Default::default() };
        let r = normalized_throughput(&topo, &servers, &tm, opts);
        assert!(r.normalized < 0.8, "normalized = {}", r.normalized);
        assert!(r.normalized > 0.05, "implausibly low throughput {}", r.normalized);
    }

    #[test]
    fn fat_tree_full_bisection_handles_permutation() {
        let ft = FatTree::new(4).unwrap();
        let topo = ft.into_topology();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, 5);
        let r = normalized_throughput(&topo, &servers, &tm, ThroughputOptions::default());
        assert!(r.at_full_throughput(), "normalized = {}", r.normalized);
    }

    #[test]
    fn ksp_routing_close_to_optimal_on_jellyfish() {
        let topo = JellyfishBuilder::new(16, 8, 5).seed(7).build().unwrap();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, 8);
        let optimal = normalized_throughput(
            &topo,
            &servers,
            &tm,
            ThroughputOptions { stop_at_full: false, ..Default::default() },
        );
        let ksp = normalized_throughput(
            &topo,
            &servers,
            &tm,
            ThroughputOptions {
                stop_at_full: false,
                routing: RoutingModel::KShortestPaths(8),
                ..Default::default()
            },
        );
        assert!(ksp.normalized <= optimal.normalized + 0.05);
        assert!(
            ksp.normalized >= 0.85 * optimal.normalized,
            "ksp {} far below optimal {}",
            ksp.normalized,
            optimal.normalized
        );
    }

    #[test]
    fn stream_and_matrix_paths_agree_exactly() {
        let topo = JellyfishBuilder::new(12, 8, 5).seed(2).build().unwrap();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, 9);
        let opts = ThroughputOptions { stop_at_full: false, ..Default::default() };
        let eager = normalized_throughput(&topo, &servers, &tm, opts);
        let streamed = normalized_throughput_stream(&topo, &servers, tm.into_stream(), opts);
        assert_eq!(eager.lambda.to_bits(), streamed.lambda.to_bits());
        assert_eq!(eager.commodities, streamed.commodities);
    }

    #[test]
    fn empty_traffic_is_trivially_satisfied() {
        let topo = JellyfishBuilder::new(6, 6, 3).seed(1).build().unwrap();
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::from_flows(Vec::new(), servers.num_servers(), "empty");
        let r = normalized_throughput(&topo, &servers, &tm, ThroughputOptions::default());
        assert_eq!(r.normalized, 1.0);
        assert_eq!(r.commodities, 0);
    }

    #[test]
    fn permutation_stats_bounds() {
        let topo = JellyfishBuilder::new(12, 8, 5).seed(2).build().unwrap();
        let (mean, min, max) =
            permutation_throughput_stats(&topo, 3, ThroughputOptions::default(), 9);
        assert!(min <= mean && mean <= max);
        assert!(max <= 1.0 + 1e-9);
        assert!(min >= 0.0);
    }
}
