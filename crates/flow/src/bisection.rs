//! Bisection bandwidth: analytic bounds and heuristics (Figures 2(a), 2(b)
//! and the LEGUP comparison of Figure 7).
//!
//! * For random regular graphs the paper uses Bollobás's isoperimetric
//!   bound: in almost every r-regular graph on N nodes, every set of N/2
//!   nodes is joined to the rest by at least `N(r/4 − sqrt(r·ln2/2))` edges.
//! * For the fat-tree the bisection is exact: `k³/8` links cross the worst
//!   bisection of a full-bisection fat-tree.
//! * For arbitrary topologies (the Clos/LEGUP expansion stages) we search
//!   for a small bisection with a Kernighan–Lin style local-improvement
//!   heuristic and report the best cut found.
//!
//! "Normalized bisection bandwidth" divides the bisecting link capacity by
//! the total line rate of the servers in one partition, exactly as the paper
//! does; values above 1 mean overprovisioning.

use jellyfish_topology::{CsrGraph, NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Bollobás lower bound on the number of edges crossing any balanced
/// bisection of an r-regular graph on `n` nodes:
/// `N · (r/4 − √(r·ln2)/2)` (from the isoperimetric number bound
/// `i(G) ≥ r/2 − √(r·ln2)`). Clamped at zero for small degrees where the
/// bound is vacuous.
pub fn bollobas_bisection_links(n: usize, r: usize) -> f64 {
    let n = n as f64;
    let r = r as f64;
    (n * (r / 4.0 - (r * (2.0f64).ln()).sqrt() / 2.0)).max(0.0)
}

/// Normalized bisection bandwidth of a Jellyfish `RRG(N, k, r)` from the
/// Bollobás bound: crossing links divided by the servers in one partition
/// (`N(k−r)/2`), assuming every link and every server NIC has the same rate.
///
/// Returns `f64::INFINITY` when no servers are attached.
pub fn jellyfish_normalized_bisection(n: usize, ports: usize, network_degree: usize) -> f64 {
    assert!(network_degree <= ports, "network degree exceeds port count");
    let servers = n * (ports - network_degree);
    if servers == 0 {
        return f64::INFINITY;
    }
    bollobas_bisection_links(n, network_degree) / (servers as f64 / 2.0)
}

/// Asymptotic normalized bisection bandwidth as `r → ∞` with the same
/// server count: `(r/4)/((k−r)/2)`. Used to sanity-check that the bound
/// approaches half the switch-to-switch links (the paper's §4.1 argument).
pub fn jellyfish_asymptotic_normalized_bisection(ports: usize, network_degree: usize) -> f64 {
    let r = network_degree as f64;
    let s = (ports - network_degree) as f64;
    if s == 0.0 {
        return f64::INFINITY;
    }
    (r / 4.0) / (s / 2.0)
}

/// Exact bisection links of a full-bisection three-level fat-tree built from
/// `k`-port switches: `k³/8`.
pub fn fattree_bisection_links(k: usize) -> f64 {
    (k * k * k) as f64 / 8.0
}

/// Normalized bisection bandwidth of the full fat-tree (1.0 by construction).
pub fn fattree_normalized_bisection(k: usize) -> f64 {
    fattree_bisection_links(k)
        / (jellyfish_topology::fattree::FatTree::servers_for_port_count(k) as f64 / 2.0)
}

/// Smallest number of switches `N` (using `ports`-port switches with
/// `network_degree` network ports each) for which the Bollobás bound
/// certifies full (normalized ≥ 1) bisection bandwidth for `servers` servers,
/// or `None` if the per-switch server count doesn't divide evenly at any
/// feasible N. Used by the Figure 2(b) equipment-cost curves.
pub fn jellyfish_full_bisection_switches(
    servers: usize,
    ports: usize,
    network_degree: usize,
) -> Option<usize> {
    let per_switch = ports - network_degree;
    if per_switch == 0 {
        return None;
    }
    let n = servers.div_ceil(per_switch);
    // Need the bound to certify >= 1 at this (N, r); N only appears linearly
    // in both numerator and denominator, so feasibility is independent of N —
    // check it and return the smallest N that hosts all servers.
    if jellyfish_normalized_bisection(n.max(network_degree + 1), ports, network_degree) >= 1.0 {
        Some(n.max(network_degree + 1))
    } else {
        None
    }
}

/// Equipment cost (total switch ports) of the cheapest full-bisection
/// Jellyfish supporting `servers` servers with `ports`-port switches,
/// scanning over the network degree. Returns `(total_ports, network_degree)`.
pub fn jellyfish_full_bisection_cost(servers: usize, ports: usize) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for r in 1..ports {
        if let Some(n) = jellyfish_full_bisection_switches(servers, ports, r) {
            let cost = n * ports;
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, r));
            }
        }
    }
    best
}

/// Result of the heuristic bisection search.
#[derive(Debug, Clone)]
pub struct BisectionCut {
    /// Node ids in the first half.
    pub partition: Vec<NodeId>,
    /// Number of links crossing the cut.
    pub crossing_links: usize,
    /// Normalized bisection bandwidth: crossing links divided by the servers
    /// hosted in the smaller-server half.
    pub normalized: f64,
}

/// Kernighan–Lin style heuristic minimum bisection of the switch graph,
/// balanced by switch count. `restarts` independent random starts run in
/// parallel (each with its own seed derived from `seed`) and the best cut is
/// kept, ties broken by restart index so the result is deterministic.
pub fn min_bisection_heuristic(topo: &Topology, restarts: usize, seed: u64) -> BisectionCut {
    min_bisection_with(topo, restarts, seed, kl_refine)
}

/// [`min_bisection_heuristic`] driven by [`kl_refine_reference`] — the
/// pre-optimization pair-scan refinement, kept as the benchmark baseline and
/// the oracle the equivalence proptests compare against. Produces the exact
/// same cut as [`min_bisection_heuristic`] for every input.
pub fn min_bisection_heuristic_reference(
    topo: &Topology,
    restarts: usize,
    seed: u64,
) -> BisectionCut {
    min_bisection_with(topo, restarts, seed, kl_refine_reference)
}

fn min_bisection_with(
    topo: &Topology,
    restarts: usize,
    seed: u64,
    refine: fn(&CsrGraph, &mut [bool]),
) -> BisectionCut {
    let csr = topo.csr();
    let n = csr.num_nodes();
    let half = n / 2;

    let runs: Vec<(usize, Vec<bool>)> = (0..restarts.max(1))
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|restart| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            // Random balanced start.
            let mut order: Vec<NodeId> = (0..n).collect();
            order.shuffle(&mut rng);
            let mut in_a = vec![false; n];
            for &v in order.iter().take(half) {
                in_a[v] = true;
            }
            refine(&csr, &mut in_a);
            (csr.cut_size(&in_a), in_a)
        })
        .collect();
    let (best_cut, best_partition) =
        runs.into_iter().min_by_key(|&(cut, _)| cut).expect("at least one restart");

    let partition: Vec<NodeId> =
        best_partition.iter().enumerate().filter_map(|(v, &inside)| inside.then_some(v)).collect();
    let servers_a: usize = partition.iter().map(|&v| topo.servers(v)).sum();
    let servers_b: usize = topo.total_servers() - servers_a;
    let denom = servers_a.min(servers_b).max(1) as f64;
    BisectionCut { partition, crossing_links: best_cut, normalized: best_cut as f64 / denom }
}

/// One Kernighan–Lin refinement of the balanced partition `in_a`, run to a
/// fixed point. Each pass tentatively swaps the best unlocked (A, B) pair —
/// negative gains allowed, both nodes locked afterwards — until no unlocked
/// pair remains, then commits the prefix of swaps with the largest cumulative
/// cut reduction. Passes repeat until one fails to improve the cut. All ties
/// break on the lowest node index, so the result is deterministic.
///
/// Selection avoids the O(|A|·|B|) pair scan of [`kl_refine_reference`]: per
/// tentative swap the unlocked B side is sorted best-partner-first (D
/// descending, index ascending), so each A-side candidate finds its best
/// *non-neighbor* partner by walking at most `deg(a) + 1` sorted entries and
/// its best *neighbor* partner by one adjacency scan. D-values carry across
/// passes by updating only the committed swaps' neighborhoods instead of
/// recomputing [`swap_gain_component`] for all `n` nodes each pass. Gains and
/// tie-breaking (lowest `a`, then lowest `b`) are bit-for-bit those of the
/// reference; the equivalence proptests pin the two together.
pub fn kl_refine(csr: &CsrGraph, in_a: &mut [bool]) {
    let n = in_a.len();
    // True D-values (external minus internal degree) for the current
    // partition, maintained incrementally across passes via `apply_move`.
    let mut d_base: Vec<isize> = (0..n).map(|v| swap_gain_component(csr, in_a, v)).collect();
    // Working copy mutated by the tentative swaps within one pass.
    let mut d: Vec<isize> = vec![0; n];
    let mut locked = vec![false; n];
    // Epoch-stamped neighbor marks: O(1) adjacency tests without clearing.
    let mut mark: Vec<u64> = vec![0; n];
    let mut epoch: u64 = 0;
    let mut sorted_b: Vec<NodeId> = Vec::with_capacity(n);
    loop {
        d.copy_from_slice(&d_base);
        locked.iter_mut().for_each(|l| *l = false);
        let mut swaps: Vec<(NodeId, NodeId)> = Vec::new();
        let mut gains: Vec<isize> = Vec::new();
        loop {
            // Unlocked B side, best partner first: max D, ties on low index.
            sorted_b.clear();
            sorted_b.extend((0..n).filter(|&b| !locked[b] && !in_a[b]));
            sorted_b.sort_by_key(|&b| (std::cmp::Reverse(d[b]), b));
            if sorted_b.is_empty() {
                break;
            }
            let mut best: Option<(isize, NodeId, NodeId)> = None;
            for a in 0..n {
                if locked[a] || !in_a[a] {
                    continue;
                }
                epoch += 1;
                for &x in csr.neighbors(a) {
                    mark[x as usize] = epoch;
                }
                // Best non-neighbor partner (gain d[a] + d[b]): the first
                // unmarked sorted entry. At most deg(a) entries are marked,
                // so this walk stops within deg(a) + 1 steps.
                let mut cand: Option<(isize, NodeId)> = None;
                for &b in &sorted_b {
                    if mark[b] != epoch {
                        cand = Some((d[a] + d[b], b));
                        break;
                    }
                }
                // Best neighbor partner (gain d[a] + d[b] − 2): max D over
                // the adjacency list, ties on low index.
                let mut neigh: Option<(isize, NodeId)> = None;
                for &x in csr.neighbors(a) {
                    let b = x as usize;
                    if locked[b] || in_a[b] {
                        continue;
                    }
                    let better = match neigh {
                        None => true,
                        Some((db, bn)) => d[b] > db || (d[b] == db && b < bn),
                    };
                    if better {
                        neigh = Some((d[b], b));
                    }
                }
                if let Some((db, b)) = neigh {
                    let gain = d[a] + db - 2;
                    let better = match cand {
                        None => true,
                        Some((g, bc)) => gain > g || (gain == g && b < bc),
                    };
                    if better {
                        cand = Some((gain, b));
                    }
                }
                if let Some((gain, b)) = cand {
                    if best.is_none_or(|(g, _, _)| gain > g) {
                        best = Some((gain, a, b));
                    }
                }
            }
            let Some((gain, a, b)) = best else { break };
            locked[a] = true;
            locked[b] = true;
            swaps.push((a, b));
            gains.push(gain);
            // Update D-values of unlocked neighbors as if (a, b) had swapped:
            // a neighbor of `a` on A's side gains an external edge (+2), on
            // B's side loses one (−2); symmetrically for neighbors of `b`.
            for &x in csr.neighbors(a) {
                let x = x as usize;
                if !locked[x] {
                    d[x] += if in_a[x] { 2 } else { -2 };
                }
            }
            for &x in csr.neighbors(b) {
                let x = x as usize;
                if !locked[x] {
                    d[x] += if in_a[x] { -2 } else { 2 };
                }
            }
        }
        // Commit the best prefix of tentative swaps (smallest prefix on ties).
        let mut best_sum = 0isize;
        let mut best_len = 0usize;
        let mut running = 0isize;
        for (i, &g) in gains.iter().enumerate() {
            running += g;
            if running > best_sum {
                best_sum = running;
                best_len = i + 1;
            }
        }
        if best_len == 0 {
            return;
        }
        for &(a, b) in &swaps[..best_len] {
            apply_move(csr, in_a, &mut d_base, a);
            apply_move(csr, in_a, &mut d_base, b);
        }
    }
}

/// Moves `v` to the other side of the partition, updating the true D-values:
/// a same-side neighbor's internal edge becomes external (+2), an
/// opposite-side neighbor's external edge becomes internal (−2), and `v`'s
/// own D negates. Must run *before* any other committed move is applied with
/// stale membership, hence one call per moved endpoint in commit order.
fn apply_move(csr: &CsrGraph, in_a: &mut [bool], d: &mut [isize], v: NodeId) {
    for &x in csr.neighbors(v) {
        let x = x as usize;
        d[x] += if in_a[x] == in_a[v] { 2 } else { -2 };
    }
    d[v] = -d[v];
    in_a[v] = !in_a[v];
}

/// The pre-optimization [`kl_refine`]: every tentative swap scans all
/// unlocked (A, B) pairs and every pass recomputes all D-values from
/// scratch. Kept as the equivalence oracle and benchmark baseline; produces
/// bit-for-bit the same partitions as [`kl_refine`].
pub fn kl_refine_reference(csr: &CsrGraph, in_a: &mut [bool]) {
    let n = in_a.len();
    loop {
        // D-values (external minus internal degree) relative to the partition
        // at the start of the pass; membership stays fixed until the commit.
        let mut d: Vec<isize> = (0..n).map(|v| swap_gain_component(csr, in_a, v)).collect();
        let mut locked = vec![false; n];
        let mut swaps: Vec<(NodeId, NodeId)> = Vec::new();
        let mut gains: Vec<isize> = Vec::new();
        loop {
            let mut best: Option<(isize, NodeId, NodeId)> = None;
            for a in 0..n {
                if locked[a] || !in_a[a] {
                    continue;
                }
                for b in 0..n {
                    if locked[b] || in_a[b] {
                        continue;
                    }
                    let w = if csr.has_edge(a, b) { 1isize } else { 0 };
                    let gain = d[a] + d[b] - 2 * w;
                    if best.is_none_or(|(g, _, _)| gain > g) {
                        best = Some((gain, a, b));
                    }
                }
            }
            let Some((gain, a, b)) = best else { break };
            locked[a] = true;
            locked[b] = true;
            swaps.push((a, b));
            gains.push(gain);
            for &x in csr.neighbors(a) {
                let x = x as usize;
                if !locked[x] {
                    d[x] += if in_a[x] { 2 } else { -2 };
                }
            }
            for &x in csr.neighbors(b) {
                let x = x as usize;
                if !locked[x] {
                    d[x] += if in_a[x] { -2 } else { 2 };
                }
            }
        }
        // Commit the best prefix of tentative swaps (smallest prefix on ties).
        let mut best_sum = 0isize;
        let mut best_len = 0usize;
        let mut running = 0isize;
        for (i, &g) in gains.iter().enumerate() {
            running += g;
            if running > best_sum {
                best_sum = running;
                best_len = i + 1;
            }
        }
        if best_len == 0 {
            return;
        }
        for &(a, b) in &swaps[..best_len] {
            in_a[a] = false;
            in_a[b] = true;
        }
    }
}

/// D-value of the Kernighan–Lin gain: external minus internal degree.
pub fn swap_gain_component(csr: &CsrGraph, in_a: &[bool], v: NodeId) -> isize {
    let mut external = 0isize;
    let mut internal = 0isize;
    for &u in csr.neighbors(v) {
        let u = u as usize;
        if in_a[u] == in_a[v] {
            internal += 1;
        } else {
            external += 1;
        }
    }
    external - internal
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::fattree::FatTree;
    use jellyfish_topology::{Graph, JellyfishBuilder, Topology};

    #[test]
    fn bollobas_bound_basics() {
        // Vacuous (negative) bound clamps to zero for tiny degrees.
        assert_eq!(bollobas_bisection_links(100, 2), 0.0);
        // Grows linearly in N and is positive for realistic degrees.
        let b10 = bollobas_bisection_links(100, 10);
        let b10_double = bollobas_bisection_links(200, 10);
        assert!(b10 > 0.0);
        assert!((b10_double / b10 - 2.0).abs() < 1e-9);
        // Monotone in r.
        assert!(bollobas_bisection_links(100, 24) > bollobas_bisection_links(100, 12));
    }

    #[test]
    fn normalized_bisection_matches_paper_regime() {
        // Paper Fig. 2(a): with k=48 and N=2880 switches, Jellyfish supports
        // >20,000 servers at full bisection bandwidth (the fat-tree: 27,648
        // servers total with 16,000 at full bisection for the same cost
        // comparison point). Check that r=36 (12 servers/switch → 34,560
        // servers) is undersubscribed vs r=40 (8 servers/switch → 23,040) at
        // full bisection.
        let r40 = jellyfish_normalized_bisection(2880, 48, 40);
        assert!(r40 >= 1.0, "r=40 should certify full bisection, got {r40}");
        let r30 = jellyfish_normalized_bisection(2880, 48, 30);
        assert!(r30 < r40);
        // More servers per switch → lower normalized bisection.
        assert!(
            jellyfish_normalized_bisection(720, 24, 18)
                > jellyfish_normalized_bisection(720, 24, 12)
        );
    }

    #[test]
    fn asymptotic_bound_approaches_half_the_links() {
        // As r grows with a fixed server share, the bound approaches the
        // asymptotic value from below.
        let exact = jellyfish_normalized_bisection(10_000, 96, 64);
        let asym = jellyfish_asymptotic_normalized_bisection(96, 64);
        assert!(exact < asym);
        assert!(exact > 0.5 * asym);
    }

    #[test]
    fn fattree_full_bisection() {
        for k in [4usize, 24, 48] {
            assert!((fattree_normalized_bisection(k) - 1.0).abs() < 1e-9);
        }
        assert_eq!(fattree_bisection_links(4), 8.0);
    }

    #[test]
    fn full_bisection_switch_search() {
        // 48-port switches, r=36 leaves 12 servers per switch and certifies
        // full bisection per the Bollobás bound.
        let n = jellyfish_full_bisection_switches(3456, 48, 36).unwrap();
        assert_eq!(n, 288);
        // Tiny degree can never certify full bisection.
        assert!(jellyfish_full_bisection_switches(1000, 48, 2).is_none());
        assert!(jellyfish_full_bisection_switches(1000, 48, 48).is_none());
    }

    #[test]
    fn jellyfish_cheaper_than_fattree_at_full_bisection() {
        // The Fig. 2(b) headline: for the same number of servers at full
        // bisection bandwidth, Jellyfish needs fewer total ports than the
        // fat-tree, and the advantage grows with port count.
        for k in [24usize, 32, 48, 64] {
            let servers = FatTree::servers_for_port_count(k);
            let ft_ports = FatTree::ports_for_port_count(k);
            let (jf_ports, _r) = jellyfish_full_bisection_cost(servers, k).unwrap();
            assert!(
                jf_ports < ft_ports,
                "k={k}: jellyfish {jf_ports} ports not below fat-tree {ft_ports}"
            );
        }
        let adv24 = {
            let s = FatTree::servers_for_port_count(24);
            1.0 - jellyfish_full_bisection_cost(s, 24).unwrap().0 as f64
                / FatTree::ports_for_port_count(24) as f64
        };
        let adv64 = {
            let s = FatTree::servers_for_port_count(64);
            1.0 - jellyfish_full_bisection_cost(s, 64).unwrap().0 as f64
                / FatTree::ports_for_port_count(64) as f64
        };
        assert!(adv64 > adv24, "advantage should grow with port count");
    }

    #[test]
    fn kl_bisection_on_two_cliques() {
        // Two 6-cliques joined by a single bridge: the minimum bisection is 1.
        let mut g = Graph::new(12);
        for base in [0, 6] {
            for u in base..base + 6 {
                for v in (u + 1)..base + 6 {
                    g.add_edge(u, v);
                }
            }
        }
        g.add_edge(0, 6);
        let topo = Topology::homogeneous(g, 16, 2);
        let cut = min_bisection_heuristic(&topo, 8, 1);
        assert_eq!(cut.crossing_links, 1);
        assert_eq!(cut.partition.len(), 6);
        assert!((cut.normalized - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn kl_bisection_balanced_partition() {
        let topo = JellyfishBuilder::new(30, 10, 6).seed(3).build().unwrap();
        let cut = min_bisection_heuristic(&topo, 4, 2);
        assert_eq!(cut.partition.len(), 15);
        assert!(cut.crossing_links > 0);
        assert!(cut.crossing_links <= topo.num_links());
        // The heuristic cut can never beat the true minimum, which itself is
        // at least the Bollobás bound minus its slack — sanity check against
        // an obviously-too-good value.
        assert!(cut.crossing_links >= 10);
    }

    #[test]
    fn kl_refine_matches_reference_exactly() {
        // The optimized selection must reproduce the reference pair scan
        // bit-for-bit, including every tie-break, on an irregular graph.
        for (n_switches, ports, degree, seed) in
            [(12usize, 6usize, 3usize, 0u64), (25, 8, 5, 1), (30, 10, 7, 2)]
        {
            let topo = JellyfishBuilder::new(n_switches, ports, degree).seed(seed).build().unwrap();
            let csr = topo.csr();
            let n = csr.num_nodes();
            let in_a: Vec<bool> =
                (0..n).map(|v| (v.wrapping_mul(2654435761) >> 4) % 2 == 0).collect();
            // Balance the start the same way for both.
            let excess = in_a.iter().filter(|&&x| x).count() as isize - (n / 2) as isize;
            let mut fixed = in_a.clone();
            let mut left = excess;
            for slot in fixed.iter_mut() {
                if left > 0 && *slot {
                    *slot = false;
                    left -= 1;
                } else if left < 0 && !*slot {
                    *slot = true;
                    left += 1;
                }
            }
            let mut fast = fixed.clone();
            let mut reference = fixed;
            kl_refine(&csr, &mut fast);
            kl_refine_reference(&csr, &mut reference);
            assert_eq!(fast, reference, "n={n_switches} seed={seed}");
        }
    }

    #[test]
    fn min_bisection_reference_variant_agrees() {
        let topo = JellyfishBuilder::new(20, 8, 5).seed(9).build().unwrap();
        let fast = min_bisection_heuristic(&topo, 4, 3);
        let reference = min_bisection_heuristic_reference(&topo, 4, 3);
        assert_eq!(fast.partition, reference.partition);
        assert_eq!(fast.crossing_links, reference.crossing_links);
    }

    #[test]
    fn kl_bisection_heuristic_not_worse_than_random_cut() {
        let topo = JellyfishBuilder::new(40, 10, 6).seed(5).build().unwrap();
        let g = topo.graph();
        // Expected random balanced cut crosses ~half the links.
        let random_cut_estimate = topo.num_links() / 2;
        let cut = min_bisection_heuristic(&topo, 6, 7);
        assert!(
            cut.crossing_links <= random_cut_estimate,
            "heuristic ({}) no better than random ({})",
            cut.crossing_links,
            random_cut_estimate
        );
        // Partition must be a valid node subset.
        assert!(cut.partition.iter().all(|&v| v < g.num_nodes()));
    }
}
