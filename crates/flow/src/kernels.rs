//! Hot flat-slice kernels for the flow solvers, mirroring
//! `jellyfish_topology::kernels`: every kernel ships a scalar fallback and a
//! chunked variant written so the autovectorizer can keep [`LANES`] elements
//! in flight, dispatched on the `simd` feature. The two variants are
//! bit-identical by construction — every floating-point addition that feeds a
//! running accumulator happens in the same order in both — which the
//! equivalence proptests in `tests/proptest_kernels.rs` pin down.

use jellyfish_topology::ArcId;

/// Chunk width for the vectorizable loops (two 4-wide f64 vector registers
/// on AVX2, one on NEON — enough for the compiler to unroll either way).
pub const LANES: usize = 8;

/// Whether the chunked variants are dispatched (`--features simd`).
#[inline]
pub fn simd_enabled() -> bool {
    cfg!(feature = "simd")
}

/// One Garg–Könemann multiplicative-weights update along a path.
///
/// For each arc in `arcs`, in order: `flow[a] += amount`,
/// `length[a] *= factor`, and `*total_weighted_length += Δlength · capacity`.
/// The caller precomputes `factor = 1 + ε·amount/capacity` once per call
/// instead of once per arc; the accumulator update order is the contract —
/// both variants add the per-arc deltas to `total_weighted_length`
/// sequentially in arc order, so λ comes out bit-identical under either
/// dispatch.
pub fn gk_apply(
    length: &mut [f64],
    flow: &mut [f64],
    arcs: &[ArcId],
    amount: f64,
    factor: f64,
    capacity: f64,
    total_weighted_length: &mut f64,
) {
    if simd_enabled() {
        gk_apply_chunked(length, flow, arcs, amount, factor, capacity, total_weighted_length);
    } else {
        gk_apply_scalar(length, flow, arcs, amount, factor, capacity, total_weighted_length);
    }
}

/// Scalar fallback for [`gk_apply`].
pub fn gk_apply_scalar(
    length: &mut [f64],
    flow: &mut [f64],
    arcs: &[ArcId],
    amount: f64,
    factor: f64,
    capacity: f64,
    total_weighted_length: &mut f64,
) {
    for &arc in arcs {
        flow[arc] += amount;
        let old = length[arc];
        let new = old * factor;
        length[arc] = new;
        *total_weighted_length += (new - old) * capacity;
    }
}

/// Chunked variant of [`gk_apply`]: the gather/scale/scatter work runs
/// [`LANES`] arcs at a time through a stack buffer; the accumulator drains
/// the buffer sequentially so the sum order matches the scalar kernel.
pub fn gk_apply_chunked(
    length: &mut [f64],
    flow: &mut [f64],
    arcs: &[ArcId],
    amount: f64,
    factor: f64,
    capacity: f64,
    total_weighted_length: &mut f64,
) {
    let mut chunks = arcs.chunks_exact(LANES);
    for chunk in &mut chunks {
        let mut deltas = [0.0f64; LANES];
        for (delta, &arc) in deltas.iter_mut().zip(chunk) {
            flow[arc] += amount;
            let old = length[arc];
            let new = old * factor;
            length[arc] = new;
            *delta = (new - old) * capacity;
        }
        for delta in deltas {
            *total_weighted_length += delta;
        }
    }
    for &arc in chunks.remainder() {
        flow[arc] += amount;
        let old = length[arc];
        let new = old * factor;
        length[arc] = new;
        *total_weighted_length += (new - old) * capacity;
    }
}

/// Sum of `length[a]` over the arcs of one candidate path (the score the
/// path-restricted solver minimizes). Sequential left-to-right sum in both
/// variants, so path selection ties break identically under either dispatch.
pub fn path_cost(length: &[f64], arcs: &[ArcId]) -> f64 {
    if simd_enabled() {
        path_cost_chunked(length, arcs)
    } else {
        path_cost_scalar(length, arcs)
    }
}

/// Scalar fallback for [`path_cost`].
pub fn path_cost_scalar(length: &[f64], arcs: &[ArcId]) -> f64 {
    let mut total = 0.0f64;
    for &arc in arcs {
        total += length[arc];
    }
    total
}

/// Chunked variant of [`path_cost`]: gathers [`LANES`] lengths into a stack
/// buffer (the vectorizable part) and drains it left to right.
pub fn path_cost_chunked(length: &[f64], arcs: &[ArcId]) -> f64 {
    let mut total = 0.0f64;
    let mut chunks = arcs.chunks_exact(LANES);
    for chunk in &mut chunks {
        let mut gathered = [0.0f64; LANES];
        for (slot, &arc) in gathered.iter_mut().zip(chunk) {
            *slot = length[arc];
        }
        for value in gathered {
            total += value;
        }
    }
    for &arc in chunks.remainder() {
        total += length[arc];
    }
    total
}

/// Elementwise accumulated-flow → utilization conversion over the whole arc
/// array: `min((flow[a] / phases) · scale / capacity, 1.0)`. The operation
/// order matches the historical per-arc loop exactly (divide by phases first,
/// then scale, then capacity) so utilization bits never move. Purely
/// elementwise, so the chunked variant is trivially bit-identical.
pub fn scale_clamp(flow: &[f64], phases: f64, scale: f64, capacity: f64) -> Vec<f64> {
    if simd_enabled() {
        scale_clamp_chunked(flow, phases, scale, capacity)
    } else {
        scale_clamp_scalar(flow, phases, scale, capacity)
    }
}

#[inline]
fn utilization_of(flow: f64, phases: f64, scale: f64, capacity: f64) -> f64 {
    (flow / phases * scale / capacity).min(1.0)
}

/// Scalar fallback for [`scale_clamp`].
pub fn scale_clamp_scalar(flow: &[f64], phases: f64, scale: f64, capacity: f64) -> Vec<f64> {
    flow.iter().map(|&f| utilization_of(f, phases, scale, capacity)).collect()
}

/// Chunked variant of [`scale_clamp`].
pub fn scale_clamp_chunked(flow: &[f64], phases: f64, scale: f64, capacity: f64) -> Vec<f64> {
    let mut out = vec![0.0f64; flow.len()];
    let mut in_chunks = flow.chunks_exact(LANES);
    let mut out_chunks = out.chunks_exact_mut(LANES);
    for (src, dst) in (&mut in_chunks).zip(&mut out_chunks) {
        for (d, &f) in dst.iter_mut().zip(src) {
            *d = utilization_of(f, phases, scale, capacity);
        }
    }
    for (d, &f) in out_chunks.into_remainder().iter_mut().zip(in_chunks.remainder()) {
        *d = utilization_of(f, phases, scale, capacity);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_setup(
        seed: u64,
        num_arcs: usize,
        path_len: usize,
    ) -> (Vec<f64>, Vec<f64>, Vec<ArcId>) {
        let mut s = seed;
        let length: Vec<f64> =
            (0..num_arcs).map(|_| (xorshift(&mut s) % 1000) as f64 / 1000.0 + 1e-6).collect();
        let flow: Vec<f64> =
            (0..num_arcs).map(|_| (xorshift(&mut s) % 100) as f64 / 10.0).collect();
        let arcs: Vec<ArcId> =
            (0..path_len).map(|_| (xorshift(&mut s) as usize) % num_arcs).collect();
        (length, flow, arcs)
    }

    #[test]
    fn gk_apply_variants_bit_identical() {
        for seed in [1u64, 99, 12345] {
            for path_len in [0usize, 1, 7, 8, 9, 31] {
                let (length, flow, mut arcs) = random_setup(seed, 64, path_len);
                arcs.sort_unstable();
                arcs.dedup();
                let (mut l1, mut f1, mut tw1) = (length.clone(), flow.clone(), 3.5f64);
                let (mut l2, mut f2, mut tw2) = (length.clone(), flow.clone(), 3.5f64);
                gk_apply_scalar(&mut l1, &mut f1, &arcs, 0.25, 1.0125, 2.0, &mut tw1);
                gk_apply_chunked(&mut l2, &mut f2, &arcs, 0.25, 1.0125, 2.0, &mut tw2);
                assert_eq!(l1, l2);
                assert_eq!(f1, f2);
                assert_eq!(tw1.to_bits(), tw2.to_bits(), "seed {seed} len {path_len}");
            }
        }
    }

    #[test]
    fn path_cost_variants_bit_identical() {
        for seed in [2u64, 77] {
            for path_len in [0usize, 1, 8, 13, 40] {
                let (length, _, arcs) = random_setup(seed, 48, path_len);
                let a = path_cost_scalar(&length, &arcs);
                let b = path_cost_chunked(&length, &arcs);
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn scale_clamp_variants_bit_identical_and_clamped() {
        for n in [0usize, 1, 8, 17, 100] {
            let (_, flow, _) = random_setup(5, n.max(1), 1);
            let flow = &flow[..n];
            let a = scale_clamp_scalar(flow, 3.0, 1.0, 2.0);
            let b = scale_clamp_chunked(flow, 3.0, 1.0, 2.0);
            assert_eq!(a, b);
            assert!(a.iter().all(|&u| u <= 1.0));
        }
    }
}
