//! Flow-level capacity analysis for the Jellyfish (NSDI 2012) reproduction.
//!
//! The paper characterizes a topology's "raw capacity" by solving a standard
//! multi-commodity flow problem with CPLEX: flows are splittable and fluid,
//! and the objective is the largest fraction `λ` of every demand that can be
//! routed simultaneously (max *concurrent* flow). This crate replaces CPLEX
//! with a combinatorial (1 − ε)-approximation (Garg & Könemann, FOCS 1998)
//! — see DESIGN.md, substitution 1 — and adds the bisection-bandwidth
//! machinery used by Figures 2(a), 2(b) and 7.
//!
//! Modules:
//!
//! * [`mcf`] — the max-concurrent multicommodity-flow solver, both over the
//!   full graph (Dijkstra inner loop) and restricted to precomputed path
//!   sets (much faster; used for large sweeps and as an ablation).
//! * [`bisection`] — Bollobás's analytic lower bound for random regular
//!   graphs, the fat-tree's closed form, a Kernighan–Lin heuristic for
//!   arbitrary graphs, and full-bisection design-point search.
//! * [`throughput`] — glue that turns a [`jellyfish_traffic::TrafficMatrix`]
//!   plus a [`jellyfish_topology::Topology`] into a normalized throughput
//!   number in `[0, 1]`, the unit used throughout the paper's evaluation.
//! * [`kernels`] — the flat-slice hot loops behind the solvers (GK
//!   multiplicative-weights update, path scoring, utilization conversion),
//!   each with a scalar fallback and a chunked `simd`-dispatched variant;
//!   see PERF.md at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisection;
pub mod kernels;
pub mod mcf;
pub mod throughput;

pub use mcf::{Commodity, McfOptions, McfSolution};
pub use throughput::{normalized_throughput, ThroughputOptions};
