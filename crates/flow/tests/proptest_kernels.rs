//! Equivalence proptests for the flow-crate hot kernels (PERF.md): the
//! chunked Garg–Könemann update, path-cost, and utilization kernels must be
//! **bit-identical** to their scalar fallbacks on random inputs — the
//! property that makes λ and every utilization value independent of the
//! `simd` feature — and the fast Kernighan–Lin refinement must reproduce the
//! reference pair-scan's partition (hence its cut weight) exactly on random
//! topologies and random balanced starts.

use jellyfish_flow::bisection::{
    kl_refine, kl_refine_reference, min_bisection_heuristic, min_bisection_heuristic_reference,
};
use jellyfish_flow::kernels::{
    gk_apply_chunked, gk_apply_scalar, path_cost_chunked, path_cost_scalar, scale_clamp_chunked,
    scale_clamp_scalar,
};
use jellyfish_flow::mcf::{max_concurrent_flow, Commodity, McfOptions};
use jellyfish_topology::{JellyfishBuilder, Topology};
use proptest::prelude::*;

fn jellyfish(n: usize, seed: u64) -> Topology {
    JellyfishBuilder::new(n, 8, 4).seed(seed).build().unwrap()
}

/// A deterministic pseudo-random balanced partition: nodes ordered by a
/// keyed multiplicative hash, first half in A.
fn balanced_start(n: usize, seed: u64) -> Vec<bool> {
    let key = seed | 1;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (v as u64 ^ seed).wrapping_mul(key).rotate_left(17));
    let mut in_a = vec![false; n];
    for &v in order.iter().take(n / 2) {
        in_a[v] = true;
    }
    in_a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The chunked GK multiplicative-weights update leaves every length,
    /// flow, and the total-weighted-length accumulator bit-identical to the
    /// scalar kernel — the invariant that keeps λ independent of dispatch.
    #[test]
    fn gk_apply_chunked_bit_identical(
        lengths in proptest::collection::vec(1e-6f64..2.0, 1..96),
        raw_arcs in proptest::collection::vec(any::<u32>(), 0..48),
        amount in 1e-6f64..1.0,
        eps in 1e-3f64..0.5,
        capacity in 0.5f64..4.0,
        tw0 in 0.0f64..2.0,
    ) {
        let num_arcs = lengths.len();
        let arcs: Vec<usize> = raw_arcs.iter().map(|&a| a as usize % num_arcs).collect();
        let factor = 1.0 + eps * amount / capacity;
        let (mut l1, mut f1, mut tw1) = (lengths.clone(), vec![0.0f64; num_arcs], tw0);
        let (mut l2, mut f2, mut tw2) = (lengths.clone(), vec![0.0f64; num_arcs], tw0);
        gk_apply_scalar(&mut l1, &mut f1, &arcs, amount, factor, capacity, &mut tw1);
        gk_apply_chunked(&mut l2, &mut f2, &arcs, amount, factor, capacity, &mut tw2);
        prop_assert_eq!(tw1.to_bits(), tw2.to_bits());
        for a in 0..num_arcs {
            prop_assert_eq!(l1[a].to_bits(), l2[a].to_bits(), "length[{}]", a);
            prop_assert_eq!(f1[a].to_bits(), f2[a].to_bits(), "flow[{}]", a);
        }
    }

    /// Path scoring is bit-identical under either dispatch, so the
    /// path-restricted solver picks the same path every time.
    #[test]
    fn path_cost_chunked_bit_identical(
        lengths in proptest::collection::vec(1e-9f64..10.0, 1..80),
        raw_arcs in proptest::collection::vec(any::<u32>(), 0..40),
    ) {
        let arcs: Vec<usize> = raw_arcs.iter().map(|&a| a as usize % lengths.len()).collect();
        let a = path_cost_scalar(&lengths, &arcs);
        let b = path_cost_chunked(&lengths, &arcs);
        prop_assert_eq!(a.to_bits(), b.to_bits());
    }

    /// The flow → utilization conversion is bit-identical elementwise and
    /// clamped to [0, 1].
    #[test]
    fn scale_clamp_chunked_bit_identical(
        flow in proptest::collection::vec(0.0f64..50.0, 0..100),
        phases in 1.0f64..20.0,
        scale in 0.1f64..5.0,
        capacity in 0.5f64..4.0,
    ) {
        let a = scale_clamp_scalar(&flow, phases, scale, capacity);
        let b = scale_clamp_chunked(&flow, phases, scale, capacity);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
            prop_assert!(*x <= 1.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The GK solver — whose inner loops run through the dispatched kernels —
    /// is a pure function of its inputs: two runs agree to the bit on λ and
    /// on every arc utilization, and the utilization summaries stay
    /// consistent with the flat array.
    #[test]
    fn gk_lambda_deterministic_and_consistent(
        n in 8usize..24,
        seed in any::<u64>(),
        pairs in 1usize..6,
    ) {
        let topo = jellyfish(n, seed);
        let csr = topo.csr();
        let commodities: Vec<Commodity> = (0..pairs)
            .map(|i| Commodity {
                src: (seed.wrapping_add(i as u64) % n as u64) as usize,
                dst: (seed.wrapping_add(i as u64).wrapping_mul(31) % n as u64) as usize,
                demand: 1.0,
            })
            .collect();
        let opts = McfOptions { epsilon: 0.25, link_capacity: 1.0, lambda_cap: None };
        let a = max_concurrent_flow(&csr, &commodities, opts);
        let b = max_concurrent_flow(&csr, &commodities, opts);
        prop_assert_eq!(a.lambda.to_bits(), b.lambda.to_bits());
        prop_assert_eq!(a.arc_utilization.len(), b.arc_utilization.len());
        for (x, y) in a.arc_utilization.iter().zip(&b.arc_utilization) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let max = a.max_utilization();
        prop_assert!(a.arc_utilization.iter().all(|&u| u <= max));
        if a.arc_utilization.iter().any(|&u| u > 0.0) {
            prop_assert!(a.mean_utilization() <= max + 1e-12);
        }
    }

    /// The fast sorted-partner Kernighan–Lin refinement lands on exactly the
    /// reference pair-scan's partition from any balanced start — same bits in
    /// `in_a`, hence the same cut weight.
    #[test]
    fn kl_refine_matches_reference(n in 8usize..40, seed in any::<u64>()) {
        let topo = jellyfish(n, seed);
        let csr = topo.csr();
        let start = balanced_start(n, seed);
        let mut fast = start.clone();
        kl_refine(&csr, &mut fast);
        let mut reference = start;
        kl_refine_reference(&csr, &mut reference);
        prop_assert_eq!(&fast, &reference, "n {} seed {}", n, seed);
        prop_assert_eq!(csr.cut_size(&fast), csr.cut_size(&reference));
    }

    /// The full restart search agrees with its reference-driven twin on the
    /// partition, the crossing-link count, and the normalized bandwidth bits.
    #[test]
    fn min_bisection_matches_reference(
        n in 8usize..32,
        restarts in 1usize..4,
        seed in any::<u64>(),
    ) {
        let topo = jellyfish(n, seed);
        let fast = min_bisection_heuristic(&topo, restarts, seed);
        let reference = min_bisection_heuristic_reference(&topo, restarts, seed);
        prop_assert_eq!(fast.partition, reference.partition);
        prop_assert_eq!(fast.crossing_links, reference.crossing_links);
        prop_assert_eq!(fast.normalized.to_bits(), reference.normalized.to_bits());
    }
}
