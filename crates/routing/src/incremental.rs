//! Incremental all-pairs distance repair under topology churn.
//!
//! The live-topology service (`jellyfish::service`) holds a resident
//! [`DistanceMatrix`] and applies link/switch failures, restores and
//! incremental expansion as *deltas*. After a delta, most sources' distance
//! rows are provably unchanged; this module computes the affected-source
//! set from the old matrix and the edge changes alone, then recomputes only
//! those rows with the existing BFS kernels.
//!
//! Byte-identity with a full rebuild is structural, not probabilistic: hop
//! distances are canonical values, so any correct BFS writes the same `u32`s
//! a full [`all_pairs_distances`](crate::shortest::all_pairs_distances)
//! sweep would. The affected-source criteria below are *conservative*
//! (they may recompute an unchanged row, never skip a changed one):
//!
//! * **Removed edge `(u, v)`** — a source `s` can only lose a shortest path
//!   if the edge was on one, which requires `|d(s,u) − d(s,v)| == 1`.
//! * **Added edge `(u, v)`** (both endpoints old) — a strictly shorter path
//!   through the new edge requires `|d(s,u) − d(s,v)| >= 2`.
//! * **Expansion** — new nodes attach to the old graph at a *boundary* set
//!   `B` (old endpoints of old↔new edges). A path from `s` through the new
//!   region enters at some `u ∈ B` and exits at some `v ∈ B`, spending at
//!   least 2 hops inside; it can only shorten an old distance if
//!   `|d(s,u) − d(s,v)| >= 3` for some boundary pair. New nodes' own rows
//!   are always recomputed, and unaffected old rows gain their new-node
//!   columns by symmetry (`d(s,x) = d(x,s)` on an undirected graph).
//!
//! Mixed batches (an expansion rewire removes old edges *and* adds old↔new
//! ones) are sound under the union of the criteria: removals can only
//! increase distances and additions only decrease them, so a row that no
//! criterion marks keeps every old value (see the churn-equivalence proptest
//! in `jellyfish`'s test suite, which pins incremental == full rebuild
//! byte-for-byte over random event sequences on every registered
//! generator).

use crate::shortest::{all_pairs_distances, DistanceMatrix, UNREACHED};
use jellyfish_topology::bfs::{ms_bfs_into, MsBfsScratch};
use jellyfish_topology::graph::Edge;
use jellyfish_topology::{CsrGraph, NodeId};
use rayon::prelude::*;
use std::collections::BTreeSet;

/// Sources per multi-source BFS batch; matches the full-rebuild block size
/// so a repair that touches every row costs what the rebuild costs.
const REPAIR_BLOCK: usize = 64;

/// Recomputes the rows named in `sources` with the same batched
/// multi-source BFS the full rebuild uses, in parallel. Returns
/// `(batch, rows)` blocks for the caller to scatter back into its matrix;
/// canonical hop distances make the scattered result byte-identical to
/// serial per-row BFS.
fn recompute_rows<'s>(
    csr: &CsrGraph,
    sources: &'s [NodeId],
    n: usize,
) -> Vec<(&'s [NodeId], Vec<u32>)> {
    sources
        .chunks(REPAIR_BLOCK)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|batch| {
            let mut data = vec![UNREACHED; batch.len() * n];
            let mut scratch = MsBfsScratch::new(n);
            ms_bfs_into(csr, batch, &mut data, &mut scratch);
            (batch, data)
        })
        .collect()
}

/// An undirected edge-set delta between two topology states.
///
/// `added` may reference nodes beyond the old matrix (expansion); `removed`
/// edges always existed in the old graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges present before and absent after.
    pub removed: Vec<Edge>,
    /// Edges absent before and present after.
    pub added: Vec<Edge>,
}

impl EdgeDelta {
    /// Computes the delta between two edge sets (any iteration order).
    pub fn between(
        before: impl IntoIterator<Item = Edge>,
        after: impl IntoIterator<Item = Edge>,
    ) -> Self {
        let before: BTreeSet<Edge> = before.into_iter().collect();
        let after: BTreeSet<Edge> = after.into_iter().collect();
        EdgeDelta {
            removed: before.difference(&after).copied().collect(),
            added: after.difference(&before).copied().collect(),
        }
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty()
    }
}

/// What a [`repair_all_pairs`] call did, for delta reporting and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Rows recomputed by BFS (affected old rows plus all new-node rows).
    pub repaired_rows: usize,
    /// Rows of the repaired matrix.
    pub total_rows: usize,
    /// True when the delta forced a from-scratch rebuild (node removal).
    pub full_rebuild: bool,
}

/// Marks the old sources whose distance rows a delta may change.
///
/// Returns one flag per old row. New-node rows (beyond the old matrix) are
/// not represented here — they are always recomputed. Callers invalidating
/// derived per-pair state (the live service's path cache) run this on the
/// *pre-delta* matrix: an unflagged row is bit-unchanged by
/// [`repair_all_pairs`].
pub fn affected_sources(dist: &DistanceMatrix, delta: &EdgeDelta) -> Vec<bool> {
    let n_old = dist.num_cols();
    // Boundary of the new region: old endpoints of old<->new added edges.
    let mut boundary: BTreeSet<NodeId> = BTreeSet::new();
    let mut added_old: Vec<Edge> = Vec::new();
    for e in &delta.added {
        match (e.a < n_old, e.b < n_old) {
            (true, true) => added_old.push(*e),
            (true, false) => {
                boundary.insert(e.a);
            }
            (false, true) => {
                boundary.insert(e.b);
            }
            // new<->new edges are internal to the recomputed region.
            (false, false) => {}
        }
    }
    let boundary: Vec<NodeId> = boundary.into_iter().collect();

    // |d(s,u) - d(s,v)| with UNREACHED treated as "affected unless both
    // endpoints are unreachable from s" (a region s cannot reach at all
    // cannot change s's row).
    let spread = |row: &[u32], u: NodeId, v: NodeId| -> Option<u32> {
        match (row[u], row[v]) {
            (UNREACHED, UNREACHED) => Some(0),
            (UNREACHED, _) | (_, UNREACHED) => None,
            (du, dv) => Some(du.abs_diff(dv)),
        }
    };

    let mut affected = vec![false; n_old];
    for (s, flag) in affected.iter_mut().enumerate() {
        let row = dist.row(s);
        let hit = delta.removed.iter().any(|e| !matches!(spread(row, e.a, e.b), Some(d) if d != 1))
            || added_old.iter().any(|e| !matches!(spread(row, e.a, e.b), Some(d) if d <= 1))
            || boundary.iter().enumerate().any(|(i, &u)| {
                boundary[i + 1..].iter().any(|&v| !matches!(spread(row, u, v), Some(d) if d <= 2))
            });
        *flag = hit;
    }
    affected
}

/// Repairs an all-pairs matrix in place after `delta` took the topology to
/// the state `csr` snapshots. Returns what was recomputed.
///
/// The repaired matrix is byte-identical to `all_pairs_distances(csr)`.
pub fn repair_all_pairs(
    dist: &mut DistanceMatrix,
    csr: &CsrGraph,
    delta: &EdgeDelta,
) -> RepairOutcome {
    let n_old = dist.num_cols();
    let n_new = csr.num_nodes();
    if n_new < n_old || dist.num_rows() != n_old {
        // Shrinking deltas (a restore after expansion) re-key every node;
        // there is nothing to repair against.
        *dist = all_pairs_distances(csr);
        return RepairOutcome { repaired_rows: n_new, total_rows: n_new, full_rebuild: true };
    }
    if delta.is_empty() && n_new == n_old {
        return RepairOutcome { repaired_rows: 0, total_rows: n_new, full_rebuild: false };
    }

    let affected = affected_sources(dist, delta);

    if n_new == n_old {
        let sources: Vec<NodeId> =
            affected.iter().enumerate().filter(|&(_, &hit)| hit).map(|(s, _)| s).collect();
        for (batch, rows) in recompute_rows(csr, &sources, n_new) {
            for (i, &s) in batch.iter().enumerate() {
                dist.row_mut(s).copy_from_slice(&rows[i * n_new..(i + 1) * n_new]);
            }
        }
        return RepairOutcome {
            repaired_rows: sources.len(),
            total_rows: n_new,
            full_rebuild: false,
        };
    }

    // The node count grew: re-stride unaffected rows, recompute affected
    // and new rows, then fill unaffected rows' new columns by symmetry.
    let mut data = vec![UNREACHED; n_new * n_new];
    for s in 0..n_old {
        if !affected[s] {
            data[s * n_new..s * n_new + n_old].copy_from_slice(dist.row(s));
        }
    }
    let sources: Vec<NodeId> = affected
        .iter()
        .enumerate()
        .filter(|&(_, &hit)| hit)
        .map(|(s, _)| s)
        .chain(n_old..n_new)
        .collect();
    let repaired = sources.len();
    for (batch, rows) in recompute_rows(csr, &sources, n_new) {
        for (i, &s) in batch.iter().enumerate() {
            data[s * n_new..(s + 1) * n_new].copy_from_slice(&rows[i * n_new..(i + 1) * n_new]);
        }
    }
    for s in 0..n_old {
        if !affected[s] {
            for x in n_old..n_new {
                data[s * n_new + x] = data[x * n_new + s];
            }
        }
    }
    *dist = DistanceMatrix::from_flat(n_new, data);
    RepairOutcome { repaired_rows: repaired, total_rows: n_new, full_rebuild: false }
}

/// True when the undirected edge `(u, v)` lies on some shortest `src → dst`
/// path: `d(src,u) + 1 + d(v,dst) == d(src,dst)` in either orientation.
///
/// This is the exact pair-invalidation test for equal-cost path sets: ECMP
/// enumeration ([`crate::ecmp::all_shortest_paths`]) is a pure function of
/// the shortest-path DAG between the pair, and the DAG of a pair whose
/// distance rows did not change can only differ through an edge that this
/// predicate admits.
///
/// Only rows `src` and `dst` are read (`d(v,dst)` goes through the
/// undirected symmetry `d(dst,v)`), so on a matrix repaired by
/// [`repair_all_pairs`] the predicate is valid for removed edges too: a
/// pair whose rows the repair left untouched sees its pre-delta values.
pub fn edge_on_shortest_path(
    dist: &DistanceMatrix,
    src: NodeId,
    dst: NodeId,
    u: NodeId,
    v: NodeId,
) -> bool {
    let d = dist.get(src, dst);
    if d == UNREACHED {
        return false;
    }
    let on = |x: NodeId, y: NodeId| -> bool {
        let sx = dist.get(src, x);
        let yd = dist.get(dst, y);
        sx != UNREACHED && yd != UNREACHED && sx + 1 + yd == d
    };
    on(u, v) || on(v, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest::all_pairs_distances;
    use jellyfish_topology::expansion::add_racks;
    use jellyfish_topology::failures::{fail_random_links, fail_random_switches};
    use jellyfish_topology::{JellyfishBuilder, Topology};

    fn edges(t: &Topology) -> Vec<Edge> {
        t.graph().edges().collect()
    }

    fn assert_repair_matches_rebuild(before: &Topology, after: &Topology) -> RepairOutcome {
        let mut dist = all_pairs_distances(&before.csr());
        let delta = EdgeDelta::between(edges(before), edges(after));
        let csr = after.csr();
        let outcome = repair_all_pairs(&mut dist, &csr, &delta);
        let full = all_pairs_distances(&csr);
        assert_eq!(dist.as_flat(), full.as_flat(), "repair diverged from full rebuild");
        outcome
    }

    #[test]
    fn single_link_removal_repairs_few_rows() {
        let base = JellyfishBuilder::new(40, 10, 6).seed(11).build().unwrap();
        let e = base.graph().edges().next().unwrap();
        let mut failed = base.clone();
        assert!(failed.disconnect(e.a, e.b));
        let outcome = assert_repair_matches_rebuild(&base, &failed);
        assert!(!outcome.full_rebuild);
        assert!(outcome.repaired_rows <= outcome.total_rows);
    }

    #[test]
    fn link_restore_repairs_back() {
        let base = JellyfishBuilder::new(30, 8, 5).seed(3).build().unwrap();
        let e = base.graph().edges().nth(7).unwrap();
        let mut failed = base.clone();
        assert!(failed.disconnect(e.a, e.b));
        assert_repair_matches_rebuild(&failed, &base);
    }

    #[test]
    fn random_link_failures_match_rebuild() {
        let base = JellyfishBuilder::new(30, 8, 5).seed(5).build().unwrap();
        let mut failed = base.clone();
        fail_random_links(&mut failed, 0.15, 99);
        let outcome = assert_repair_matches_rebuild(&base, &failed);
        assert!(outcome.repaired_rows > 0, "a 15% failure must touch some rows");
    }

    #[test]
    fn switch_failure_matches_rebuild_even_when_disconnecting() {
        let base = JellyfishBuilder::new(24, 6, 4).seed(8).build().unwrap();
        let mut failed = base.clone();
        fail_random_switches(&mut failed, 0.2, 41);
        assert_repair_matches_rebuild(&base, &failed);
    }

    #[test]
    fn expansion_grows_the_matrix() {
        let base = JellyfishBuilder::new(20, 8, 5).seed(7).build().unwrap();
        let mut grown = base.clone();
        add_racks(&mut grown, 2, 8, 3, 13).unwrap();
        let outcome = assert_repair_matches_rebuild(&base, &grown);
        assert!(!outcome.full_rebuild);
        assert_eq!(outcome.total_rows, grown.num_switches());
    }

    #[test]
    fn shrinking_delta_falls_back_to_full_rebuild() {
        let base = JellyfishBuilder::new(20, 8, 5).seed(7).build().unwrap();
        let mut grown = base.clone();
        add_racks(&mut grown, 1, 8, 3, 13).unwrap();
        let mut dist = all_pairs_distances(&grown.csr());
        let delta = EdgeDelta::between(edges(&grown), edges(&base));
        let csr = base.csr();
        let outcome = repair_all_pairs(&mut dist, &csr, &delta);
        assert!(outcome.full_rebuild);
        assert_eq!(dist.as_flat(), all_pairs_distances(&csr).as_flat());
    }

    #[test]
    fn empty_delta_repairs_nothing() {
        let base = JellyfishBuilder::new(20, 8, 5).seed(7).build().unwrap();
        let mut dist = all_pairs_distances(&base.csr());
        let outcome = repair_all_pairs(&mut dist, &base.csr(), &EdgeDelta::default());
        assert_eq!(outcome.repaired_rows, 0);
        assert!(!outcome.full_rebuild);
    }

    #[test]
    fn edge_delta_between_is_order_independent() {
        let mut fwd = vec![Edge::new(0, 1), Edge::new(1, 2)];
        let delta = EdgeDelta::between(fwd.clone(), vec![Edge::new(1, 2), Edge::new(2, 3)]);
        assert_eq!(delta.removed, vec![Edge::new(0, 1)]);
        assert_eq!(delta.added, vec![Edge::new(2, 3)]);
        fwd.reverse();
        let delta2 = EdgeDelta::between(fwd, vec![Edge::new(2, 3), Edge::new(1, 2)]);
        assert_eq!(delta, delta2);
    }

    #[test]
    fn edge_on_shortest_path_detects_bridge() {
        // Path graph 0-1-2-3: every edge is on the 0->3 shortest path.
        let mut g = jellyfish_topology::Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let dist = all_pairs_distances(&CsrGraph::from_graph(&g));
        assert!(edge_on_shortest_path(&dist, 0, 3, 1, 2));
        assert!(edge_on_shortest_path(&dist, 0, 3, 2, 1), "orientation-free");
        assert!(!edge_on_shortest_path(&dist, 0, 1, 2, 3));
    }
}
