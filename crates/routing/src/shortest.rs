//! Shortest-path primitives: BFS (unit weights), all-pairs distances, and
//! weighted Dijkstras used by Yen's algorithm, cost-aware cabling code, and
//! the flow solver.
//!
//! All functions traverse an immutable [`CsrGraph`] snapshot; the all-pairs
//! sweep fans the per-source searches out with rayon and is bit-identical to
//! the serial variant (each source's result is independent and merged in
//! source order).

use crate::Path;
use jellyfish_topology::bfs::{ms_bfs_into, MsBfsScratch};
use jellyfish_topology::{ArcId, CsrGraph, NodeId};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

pub use jellyfish_topology::bfs::{DistanceMatrix, UNREACHED};

/// Result of a single-source BFS: distances and parent pointers.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Distance (in hops) from the source; `usize::MAX` when unreachable.
    pub dist: Vec<usize>,
    /// Parent of each node in the BFS tree; `usize::MAX` for the source and
    /// unreachable nodes.
    pub parent: Vec<usize>,
    /// The source node.
    pub source: NodeId,
}

impl BfsTree {
    /// Extracts the (unique, per this tree) shortest path to `dst`, or `None`
    /// if unreachable.
    pub fn path_to(&self, dst: NodeId) -> Option<Path> {
        if self.dist[dst] == usize::MAX {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != self.source {
            cur = self.parent[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Breadth-first search from `source`.
pub fn bfs(csr: &CsrGraph, source: NodeId) -> BfsTree {
    let n = csr.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in csr.neighbors(u) {
            let v = v as usize;
            if dist[v] == usize::MAX {
                dist[v] = du + 1;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    BfsTree { dist, parent, source }
}

/// One shortest path from `src` to `dst` (hop count metric), or `None` if
/// unreachable.
pub fn shortest_path(csr: &CsrGraph, src: NodeId, dst: NodeId) -> Option<Path> {
    bfs(csr, src).path_to(dst)
}

/// Sources per parallel task in [`all_pairs_distances`]: one multi-source
/// bit-parallel BFS batch (64 `u64` lanes), so a task sweeps the edge list
/// once per BFS level for its whole block. Blocks are concatenated in source
/// order, so the fan-out never changes the result.
const ALL_PAIRS_BLOCK: usize = 64;

/// All-pairs shortest-path distances (hop counts) as a flat row-major
/// [`DistanceMatrix`] (`row(src)[dst]`, [`UNREACHED`] when unreachable).
/// One rayon task per 64-source batch; results are identical to
/// [`all_pairs_distances_serial`].
pub fn all_pairs_distances(csr: &CsrGraph) -> DistanceMatrix {
    let n = csr.num_nodes();
    let num_blocks = n.div_ceil(ALL_PAIRS_BLOCK);
    let blocks: Vec<Vec<u32>> = (0..num_blocks)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|b| {
            let start = b * ALL_PAIRS_BLOCK;
            let end = (start + ALL_PAIRS_BLOCK).min(n);
            let sources: Vec<NodeId> = (start..end).collect();
            let mut data = vec![UNREACHED; (end - start) * n];
            let mut scratch = MsBfsScratch::new(n);
            ms_bfs_into(csr, &sources, &mut data, &mut scratch);
            data
        })
        .collect();
    let mut data = Vec::with_capacity(n * n);
    for block in blocks {
        data.extend_from_slice(&block);
    }
    DistanceMatrix::from_flat(n, data)
}

/// Serial reference implementation of [`all_pairs_distances`]; used by the
/// determinism tests and as the benchmark comparison point.
pub fn all_pairs_distances_serial(csr: &CsrGraph) -> DistanceMatrix {
    let n = csr.num_nodes();
    let mut data = vec![UNREACHED; n * n];
    let mut scratch = MsBfsScratch::new(n);
    let sources: Vec<NodeId> = csr.nodes().collect();
    for (b, batch) in sources.chunks(ALL_PAIRS_BLOCK).enumerate() {
        let start = b * ALL_PAIRS_BLOCK * n;
        ms_bfs_into(csr, batch, &mut data[start..start + batch.len() * n], &mut scratch);
    }
    DistanceMatrix::from_flat(n, data)
}

/// The pre-rewrite all-pairs sweep — one queue-driven scalar BFS per source,
/// each allocating its own `Vec<usize>` row (`usize::MAX` when unreachable),
/// the whole result one heap cell per source — kept as the `BENCH_*.json`
/// baseline the `speedup_vs_scalar` trajectory is measured against.
pub fn all_pairs_distances_reference(csr: &CsrGraph) -> Vec<Vec<usize>> {
    let n = csr.num_nodes();
    csr.nodes()
        .map(|src| {
            let mut row = vec![UNREACHED; n];
            jellyfish_topology::bfs::bfs_scalar_into(csr, src, &mut row);
            row.into_iter().map(|d| if d == UNREACHED { usize::MAX } else { d as usize }).collect()
        })
        .collect()
}

/// Dijkstra over per-link weights supplied by `weight(u, v)`.
///
/// Weights must be non-negative and finite for existing links; `weight` is
/// only called for adjacent pairs. Nodes may be excluded from the search by
/// returning `f64::INFINITY`, which is how Yen's spur computation masks
/// removed links without mutating the graph.
pub fn dijkstra_with<F>(csr: &CsrGraph, source: NodeId, weight: F) -> (Vec<f64>, Vec<usize>)
where
    F: Fn(NodeId, NodeId) -> f64,
{
    // The scan loop already holds the arc's source node, so the adapter never
    // pays an `arc_source` binary search per relaxed arc.
    dijkstra_core(csr, source, |u, arc| weight(u, csr.arc_target(arc)))
}

/// Dijkstra with weights indexed by dense [`ArcId`] — the hot-path variant
/// the flow solver uses so per-arc state lives in a flat slice.
///
/// Same contract as [`dijkstra_with`]: non-negative weights, `INFINITY`
/// masks an arc.
pub fn dijkstra_arcs<F>(csr: &CsrGraph, source: NodeId, arc_weight: F) -> (Vec<f64>, Vec<usize>)
where
    F: Fn(ArcId) -> f64,
{
    dijkstra_core(csr, source, |_, arc| arc_weight(arc))
}

/// The shared Dijkstra scan; the weight callback receives the arc's source
/// node (free in the scan loop) alongside the arc id.
fn dijkstra_core<F>(csr: &CsrGraph, source: NodeId, arc_weight: F) -> (Vec<f64>, Vec<usize>)
where
    F: Fn(NodeId, ArcId) -> f64,
{
    let n = csr.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut heap: BinaryHeap<Reverse<(OrderedF64, NodeId)>> = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Reverse((OrderedF64(0.0), source)));
    while let Some(Reverse((OrderedF64(d), u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for arc in csr.arc_range(u) {
            let w = arc_weight(u, arc);
            if !w.is_finite() || w < 0.0 {
                continue;
            }
            let v = csr.arc_target(arc);
            let nd = d + w;
            if nd + 1e-15 < dist[v] {
                dist[v] = nd;
                parent[v] = u;
                heap.push(Reverse((OrderedF64(nd), v)));
            }
        }
    }
    (dist, parent)
}

fn extract_path(src: NodeId, dst: NodeId, dist: &[f64], parent: &[usize]) -> Option<(Path, f64)> {
    if !dist[dst].is_finite() {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur];
        if cur == usize::MAX {
            return None;
        }
        path.push(cur);
    }
    path.reverse();
    Some((path, dist[dst]))
}

/// Shortest path by Dijkstra under the given node-pair weight function.
pub fn weighted_shortest_path<F>(
    csr: &CsrGraph,
    src: NodeId,
    dst: NodeId,
    weight: F,
) -> Option<(Path, f64)>
where
    F: Fn(NodeId, NodeId) -> f64,
{
    let (dist, parent) = dijkstra_with(csr, src, weight);
    extract_path(src, dst, &dist, &parent)
}

/// Shortest path by Dijkstra under a dense per-arc weight function.
pub fn weighted_shortest_path_arcs<F>(
    csr: &CsrGraph,
    src: NodeId,
    dst: NodeId,
    arc_weight: F,
) -> Option<(Path, f64)>
where
    F: Fn(ArcId) -> f64,
{
    let (dist, parent) = dijkstra_arcs(csr, src, arc_weight);
    extract_path(src, dst, &dist, &parent)
}

/// Total-ordered f64 wrapper for use in the Dijkstra heap. NaN is never
/// inserted (weights are checked), so the ordering is total in practice.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::{Graph, JellyfishBuilder};

    fn grid3x3() -> CsrGraph {
        // 0-1-2 / 3-4-5 / 6-7-8 grid, no wraparound.
        let mut g = Graph::new(9);
        for y in 0..3 {
            for x in 0..3 {
                let id = y * 3 + x;
                if x < 2 {
                    g.add_edge(id, id + 1);
                }
                if y < 2 {
                    g.add_edge(id, id + 3);
                }
            }
        }
        CsrGraph::from_graph(&g)
    }

    #[test]
    fn bfs_distances_on_grid() {
        let g = grid3x3();
        let t = bfs(&g, 0);
        assert_eq!(t.dist[0], 0);
        assert_eq!(t.dist[8], 4);
        assert_eq!(t.dist[4], 2);
    }

    #[test]
    fn bfs_path_reconstruction() {
        let g = grid3x3();
        let t = bfs(&g, 0);
        let p = t.path_to(8).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&8));
        assert_eq!(p.len(), 5);
        assert!(crate::is_valid_simple_path(&g, &p));
        assert_eq!(t.path_to(0).unwrap(), vec![0]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let csr = CsrGraph::from_graph(&g);
        let t = bfs(&csr, 0);
        assert!(t.path_to(2).is_none());
        assert_eq!(t.dist[2], usize::MAX);
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = grid3x3();
        let d = all_pairs_distances(&g);
        for (u, row) in d.rows().enumerate() {
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, d.get(v, u));
            }
        }
        assert_eq!(d.get(0, 8), 4);
        assert_eq!(d.get(2, 6), 4);
    }

    #[test]
    fn parallel_all_pairs_matches_serial() {
        let topo = JellyfishBuilder::new(60, 10, 6).seed(11).build().unwrap();
        let csr = topo.csr();
        let parallel = all_pairs_distances(&csr);
        assert_eq!(parallel, all_pairs_distances_serial(&csr));
        let reference = all_pairs_distances_reference(&csr);
        for (src, row) in reference.iter().enumerate() {
            for (dst, &d) in row.iter().enumerate() {
                let got = parallel.get(src, dst);
                let want = if d == usize::MAX { UNREACHED } else { d as u32 };
                assert_eq!(got, want, "{src}->{dst}");
            }
        }
    }

    #[test]
    fn dijkstra_unit_weights_matches_bfs() {
        let topo = JellyfishBuilder::new(40, 8, 5).seed(2).build().unwrap();
        let g = topo.csr();
        let b = bfs(&g, 0);
        let (d, _) = dijkstra_with(&g, 0, |_, _| 1.0);
        for v in g.nodes() {
            assert!((d[v] - b.dist[v] as f64).abs() < 1e-9, "node {v}");
        }
    }

    #[test]
    fn arc_weights_match_pair_weights() {
        let topo = JellyfishBuilder::new(30, 8, 5).seed(4).build().unwrap();
        let csr = topo.csr();
        // A weight that depends on the endpoints, expressed both ways.
        let pair_weight = |u: usize, v: usize| 1.0 + ((u * 7 + v * 13) % 5) as f64;
        let (d1, _) = dijkstra_with(&csr, 3, pair_weight);
        let (d2, _) =
            dijkstra_arcs(&csr, 3, |arc| pair_weight(csr.arc_source(arc), csr.arc_target(arc)));
        for v in csr.nodes() {
            assert!((d1[v] - d2[v]).abs() < 1e-12, "node {v}");
        }
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // 0-1-2 chain cheap, direct 0-2 expensive.
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let csr = CsrGraph::from_graph(&g);
        let weight = |u: usize, v: usize| {
            if (u.min(v), u.max(v)) == (0, 2) {
                10.0
            } else {
                1.0
            }
        };
        let (path, cost) = weighted_shortest_path(&csr, 0, 2, weight).unwrap();
        assert_eq!(path, vec![0, 1, 2]);
        assert!((cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_infinite_weight_masks_links() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let csr = CsrGraph::from_graph(&g);
        let weight = |u: usize, v: usize| {
            if (u.min(v), u.max(v)) == (1, 2) {
                f64::INFINITY
            } else {
                1.0
            }
        };
        assert!(weighted_shortest_path(&csr, 0, 2, weight).is_none());
    }

    #[test]
    fn weighted_path_to_self() {
        let g = grid3x3();
        let (p, c) = weighted_shortest_path(&g, 4, 4, |_, _| 1.0).unwrap();
        assert_eq!(p, vec![4]);
        assert_eq!(c, 0.0);
    }
}
