//! Shortest-path primitives: BFS (unit weights), all-pairs distances, and a
//! weighted Dijkstra used by Yen's algorithm and by cost-aware cabling code.

use crate::Path;
use jellyfish_topology::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Result of a single-source BFS: distances and parent pointers.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Distance (in hops) from the source; `usize::MAX` when unreachable.
    pub dist: Vec<usize>,
    /// Parent of each node in the BFS tree; `usize::MAX` for the source and
    /// unreachable nodes.
    pub parent: Vec<usize>,
    /// The source node.
    pub source: NodeId,
}

impl BfsTree {
    /// Extracts the (unique, per this tree) shortest path to `dst`, or `None`
    /// if unreachable.
    pub fn path_to(&self, dst: NodeId) -> Option<Path> {
        if self.dist[dst] == usize::MAX {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != self.source {
            cur = self.parent[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Breadth-first search from `source`.
pub fn bfs(graph: &Graph, source: NodeId) -> BfsTree {
    let n = graph.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    BfsTree {
        dist,
        parent,
        source,
    }
}

/// One shortest path from `src` to `dst` (hop count metric), or `None` if
/// unreachable.
pub fn shortest_path(graph: &Graph, src: NodeId, dst: NodeId) -> Option<Path> {
    bfs(graph, src).path_to(dst)
}

/// All-pairs shortest-path distances (hop counts), `usize::MAX` when
/// unreachable. Runs one BFS per node: O(N·(N+E)).
pub fn all_pairs_distances(graph: &Graph) -> Vec<Vec<usize>> {
    graph.nodes().map(|s| bfs(graph, s).dist).collect()
}

/// Dijkstra over per-link weights supplied by `weight(u, v)`.
///
/// Weights must be non-negative and finite for existing links; `weight` is
/// only called for adjacent pairs. Nodes may be excluded from the search by
/// returning `f64::INFINITY`, which is how Yen's spur computation masks
/// removed links without mutating the graph.
pub fn dijkstra_with<F>(graph: &Graph, source: NodeId, weight: F) -> (Vec<f64>, Vec<usize>)
where
    F: Fn(NodeId, NodeId) -> f64,
{
    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut heap: BinaryHeap<Reverse<(OrderedF64, NodeId)>> = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Reverse((OrderedF64(0.0), source)));
    while let Some(Reverse((OrderedF64(d), u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &v in graph.neighbors(u) {
            let w = weight(u, v);
            if !w.is_finite() || w < 0.0 {
                continue;
            }
            let nd = d + w;
            if nd + 1e-15 < dist[v] {
                dist[v] = nd;
                parent[v] = u;
                heap.push(Reverse((OrderedF64(nd), v)));
            }
        }
    }
    (dist, parent)
}

/// Shortest path by Dijkstra under the given weight function.
pub fn weighted_shortest_path<F>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    weight: F,
) -> Option<(Path, f64)>
where
    F: Fn(NodeId, NodeId) -> f64,
{
    let (dist, parent) = dijkstra_with(graph, src, weight);
    if !dist[dst].is_finite() {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur];
        if cur == usize::MAX {
            return None;
        }
        path.push(cur);
    }
    path.reverse();
    Some((path, dist[dst]))
}

/// Total-ordered f64 wrapper for use in the Dijkstra heap. NaN is never
/// inserted (weights are checked), so the ordering is total in practice.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::JellyfishBuilder;

    fn grid3x3() -> Graph {
        // 0-1-2 / 3-4-5 / 6-7-8 grid, no wraparound.
        let mut g = Graph::new(9);
        for y in 0..3 {
            for x in 0..3 {
                let id = y * 3 + x;
                if x < 2 {
                    g.add_edge(id, id + 1);
                }
                if y < 2 {
                    g.add_edge(id, id + 3);
                }
            }
        }
        g
    }

    #[test]
    fn bfs_distances_on_grid() {
        let g = grid3x3();
        let t = bfs(&g, 0);
        assert_eq!(t.dist[0], 0);
        assert_eq!(t.dist[8], 4);
        assert_eq!(t.dist[4], 2);
    }

    #[test]
    fn bfs_path_reconstruction() {
        let g = grid3x3();
        let t = bfs(&g, 0);
        let p = t.path_to(8).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&8));
        assert_eq!(p.len(), 5);
        assert!(crate::is_valid_simple_path(&g, &p));
        assert_eq!(t.path_to(0).unwrap(), vec![0]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let t = bfs(&g, 0);
        assert!(t.path_to(2).is_none());
        assert_eq!(t.dist[2], usize::MAX);
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = grid3x3();
        let d = all_pairs_distances(&g);
        for u in 0..9 {
            for v in 0..9 {
                assert_eq!(d[u][v], d[v][u]);
            }
        }
        assert_eq!(d[0][8], 4);
        assert_eq!(d[2][6], 4);
    }

    #[test]
    fn dijkstra_unit_weights_matches_bfs() {
        let topo = JellyfishBuilder::new(40, 8, 5).seed(2).build().unwrap();
        let g = topo.graph();
        let b = bfs(g, 0);
        let (d, _) = dijkstra_with(g, 0, |_, _| 1.0);
        for v in g.nodes() {
            assert!((d[v] - b.dist[v] as f64).abs() < 1e-9, "node {v}");
        }
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // 0-1-2 chain cheap, direct 0-2 expensive.
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let weight = |u: usize, v: usize| {
            if (u.min(v), u.max(v)) == (0, 2) {
                10.0
            } else {
                1.0
            }
        };
        let (path, cost) = weighted_shortest_path(&g, 0, 2, weight).unwrap();
        assert_eq!(path, vec![0, 1, 2]);
        assert!((cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_infinite_weight_masks_links() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let weight = |u: usize, v: usize| {
            if (u.min(v), u.max(v)) == (1, 2) {
                f64::INFINITY
            } else {
                1.0
            }
        };
        assert!(weighted_shortest_path(&g, 0, 2, weight).is_none());
    }

    #[test]
    fn weighted_path_to_self() {
        let g = grid3x3();
        let (p, c) = weighted_shortest_path(&g, 4, 4, |_, _| 1.0).unwrap();
        assert_eq!(p, vec![4]);
        assert_eq!(c, 0.0);
    }
}
