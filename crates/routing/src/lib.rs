//! Routing machinery for the Jellyfish (NSDI 2012) reproduction.
//!
//! The paper's §5 finding is that standard ECMP does not expose enough path
//! diversity on a random graph — `k`-shortest-path routing (Yen's algorithm)
//! is needed to use Jellyfish's capacity. This crate provides:
//!
//! * [`shortest`] — BFS shortest paths, rayon-parallel all-pairs distances,
//!   and weighted Dijkstra (node-pair and dense per-arc weight variants);
//! * [`yen`] — Yen's loopless k-shortest-paths algorithm (hand-rolled, no
//!   external graph crate);
//! * [`ecmp`] — enumeration of equal-cost shortest paths with an ECMP-style
//!   bounded next-hop fan-out and flow hashing;
//! * [`path_table`] — per source–destination path sets (the routing state a
//!   switch would hold), built in parallel, and the link path-count
//!   statistics behind Figure 9;
//! * [`incremental`] — affected-source repair of all-pairs distance
//!   matrices after a topology delta (the live-service churn path),
//!   byte-identical to a full rebuild.
//!
//! Every entry point consumes an immutable
//! [`CsrGraph`](jellyfish_topology::CsrGraph) snapshot (take one with
//! [`Topology::csr`](jellyfish_topology::Topology::csr)); the mutable
//! `Graph` never crosses into this crate.
//!
//! Paths are switch-level: a path is a sequence of switch ids with
//! consecutive entries adjacent in the topology graph.
//!
//! ```
//! use jellyfish_topology::JellyfishBuilder;
//! use jellyfish_routing::yen::k_shortest_paths;
//!
//! let topo = JellyfishBuilder::new(30, 8, 5).seed(3).build().unwrap();
//! let csr = topo.csr();
//! let paths = k_shortest_paths(&csr, 0, 17, 8);
//! assert!(!paths.is_empty() && paths.len() <= 8);
//! // Paths are sorted by length and loop-free.
//! assert!(paths.windows(2).all(|w| w[0].len() <= w[1].len()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecmp;
pub mod incremental;
pub mod path_table;
pub mod shortest;
pub mod yen;

/// A switch-level path: a sequence of switch ids, first entry the source,
/// last entry the destination, consecutive entries adjacent.
pub type Path = Vec<jellyfish_topology::NodeId>;

/// Number of links (hops) in a path.
pub fn path_hops(path: &Path) -> usize {
    path.len().saturating_sub(1)
}

/// Checks that `path` is a valid simple path in the snapshot.
pub fn is_valid_simple_path(csr: &jellyfish_topology::CsrGraph, path: &Path) -> bool {
    if path.is_empty() {
        return false;
    }
    let mut seen = std::collections::HashSet::with_capacity(path.len());
    for &n in path {
        if n >= csr.num_nodes() || !seen.insert(n) {
            return false;
        }
    }
    path.windows(2).all(|w| csr.has_edge(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::{CsrGraph, Graph};

    #[test]
    fn path_hops_counts_links() {
        assert_eq!(path_hops(&vec![3]), 0);
        assert_eq!(path_hops(&vec![0, 1, 2]), 2);
    }

    #[test]
    fn valid_simple_path_checks() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let csr = CsrGraph::from_graph(&g);
        assert!(is_valid_simple_path(&csr, &vec![0, 1, 2, 3]));
        assert!(is_valid_simple_path(&csr, &vec![2]));
        assert!(!is_valid_simple_path(&csr, &vec![]));
        assert!(!is_valid_simple_path(&csr, &vec![0, 2]), "not adjacent");
        assert!(!is_valid_simple_path(&csr, &vec![0, 1, 0]), "loop");
        assert!(!is_valid_simple_path(&csr, &vec![0, 9]), "out of range");
    }
}
