//! Per source–destination path tables and link path-diversity statistics.
//!
//! Figure 9 of the paper counts, for every directed inter-switch link, the
//! number of distinct paths that traverse it when routing a random
//! permutation workload with (a) 8-way ECMP, (b) 64-way ECMP, and (c)
//! 8-shortest-path routing. The punchline: under ECMP most links are on very
//! few paths, so capacity sits idle.
//!
//! [`PathTable::build`] computes the per-pair path sets in parallel with
//! rayon (each pair's computation is independent), producing exactly the
//! same table as [`PathTable::build_serial`]. Link counts are accumulated in
//! a flat per-arc array indexed by the snapshot's dense arc ids.

use crate::ecmp::EcmpConfig;
use crate::yen::k_shortest_paths;
use crate::Path;
use jellyfish_topology::{CsrGraph, NodeId};
use rayon::prelude::*;
use std::collections::HashMap;

/// The routing scheme used to build a path table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingScheme {
    /// Equal-cost multipath over shortest paths with the given width.
    Ecmp {
        /// Maximum number of equal-cost paths per destination.
        way: usize,
    },
    /// Yen's k-shortest-path routing with the given k.
    KShortestPaths {
        /// Number of (not necessarily equal-length) shortest paths per pair.
        k: usize,
    },
}

impl RoutingScheme {
    /// The paper's default ECMP configuration (8-way).
    pub fn ecmp8() -> Self {
        RoutingScheme::Ecmp { way: 8 }
    }

    /// 64-way ECMP.
    pub fn ecmp64() -> Self {
        RoutingScheme::Ecmp { way: 64 }
    }

    /// The paper's k-shortest-path configuration (k = 8).
    pub fn ksp8() -> Self {
        RoutingScheme::KShortestPaths { k: 8 }
    }

    /// Computes the path set for one switch pair under this scheme.
    pub fn paths(&self, csr: &CsrGraph, src: NodeId, dst: NodeId) -> Vec<Path> {
        match *self {
            RoutingScheme::Ecmp { way } => EcmpConfig { way }.paths(csr, src, dst),
            RoutingScheme::KShortestPaths { k } => k_shortest_paths(csr, src, dst, k),
        }
    }

    /// Human-readable label used in reports and figures.
    pub fn label(&self) -> String {
        match *self {
            RoutingScheme::Ecmp { way } => format!("{way}-way ECMP"),
            RoutingScheme::KShortestPaths { k } => format!("{k} Shortest Paths"),
        }
    }
}

/// A path table: the set of installed paths for a collection of
/// source–destination switch pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathTable {
    paths: HashMap<(NodeId, NodeId), Vec<Path>>,
}

/// Deduplicates pairs (first occurrence wins) and drops self-pairs,
/// preserving order so the parallel and serial builds see the same work list.
fn unique_pairs(pairs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Vec<(NodeId, NodeId)> {
    let mut seen = std::collections::HashSet::new();
    pairs.into_iter().filter(|&(s, d)| s != d && seen.insert((s, d))).collect()
}

impl PathTable {
    /// Builds the table for the given switch pairs under `scheme`, computing
    /// the per-pair path sets in parallel. Seed-for-seed identical to
    /// [`PathTable::build_serial`].
    pub fn build(
        csr: &CsrGraph,
        scheme: RoutingScheme,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let work = unique_pairs(pairs);
        let paths = work.into_par_iter().map(|(s, d)| ((s, d), scheme.paths(csr, s, d))).collect();
        PathTable { paths }
    }

    /// Serial reference implementation of [`PathTable::build`]; used by the
    /// determinism tests and as the benchmark baseline.
    pub fn build_serial(
        csr: &CsrGraph,
        scheme: RoutingScheme,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let paths = unique_pairs(pairs)
            .into_iter()
            .map(|(s, d)| ((s, d), scheme.paths(csr, s, d)))
            .collect();
        PathTable { paths }
    }

    /// Installed paths for one pair (empty slice if the pair is not in the table).
    pub fn paths_for(&self, src: NodeId, dst: NodeId) -> &[Path] {
        self.paths.get(&(src, dst)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of pairs in the table.
    pub fn num_pairs(&self) -> usize {
        self.paths.len()
    }

    /// Total number of installed paths.
    pub fn num_paths(&self) -> usize {
        // The canonical D01 allow: a sum of per-pair counts is the same in
        // every visit order, so the hash order never reaches the result.
        // detlint: allow(D01, reason = "sum of per-pair path counts is order-independent")
        self.paths.values().map(Vec::len).sum()
    }

    /// Iterates over `((src, dst), paths)` entries in ascending `(src,
    /// dst)` order. The underlying table is a `HashMap`, so the entries are
    /// sorted before yielding — the public iteration order is deterministic
    /// and safe to render from.
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &Vec<Path>)> {
        // detlint: allow(D01, reason = "entries are sorted by (src, dst) before yielding")
        let mut entries: Vec<_> = self.paths.iter().collect();
        entries.sort_unstable_by_key(|&(pair, _)| *pair);
        entries.into_iter()
    }

    /// Counts, for every directed arc (dense [`jellyfish_topology::ArcId`]
    /// order), the number of installed paths traversing it. Arcs never
    /// traversed hold zero. This is the flat Figure 9 accumulator.
    pub fn arc_path_counts(&self, csr: &CsrGraph) -> Vec<usize> {
        let mut counts = vec![0usize; csr.num_arcs()];
        // detlint: allow(D01, reason = "+= 1 per traversed arc commutes across visit order")
        for pair_paths in self.paths.values() {
            for p in pair_paths {
                for w in p.windows(2) {
                    let arc = csr
                        .arc_index(w[0], w[1])
                        .expect("installed path uses a link absent from the snapshot");
                    counts[arc] += 1;
                }
            }
        }
        counts
    }

    /// Counts, for every *directed* inter-switch link, the number of distinct
    /// installed paths that traverse it. Links never traversed are included
    /// with a count of zero. This is the Figure 9 quantity keyed by node
    /// pair; the hot path is [`PathTable::arc_path_counts`].
    pub fn directed_link_path_counts(&self, csr: &CsrGraph) -> HashMap<(NodeId, NodeId), usize> {
        self.arc_path_counts(csr)
            .into_iter()
            .enumerate()
            .map(|(arc, count)| ((csr.arc_source(arc), csr.arc_target(arc)), count))
            .collect()
    }

    /// The Figure 9 series: per-directed-link path counts sorted ascending
    /// ("rank of link" on the x axis, "# distinct paths link is on" on the y
    /// axis).
    pub fn ranked_link_path_counts(&self, csr: &CsrGraph) -> Vec<usize> {
        let mut counts = self.arc_path_counts(csr);
        counts.sort_unstable();
        counts
    }

    /// Fraction of directed links that lie on at most `threshold` distinct
    /// paths (the paper quotes 55% of links on <= 2 paths under ECMP vs 6%
    /// under 8-shortest-paths, for the 686-server Jellyfish).
    pub fn fraction_links_with_at_most(&self, csr: &CsrGraph, threshold: usize) -> f64 {
        let ranked = self.ranked_link_path_counts(csr);
        if ranked.is_empty() {
            return 0.0;
        }
        ranked.iter().filter(|&&c| c <= threshold).count() as f64 / ranked.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::JellyfishBuilder;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn permutation_pairs(n: usize, seed: u64) -> Vec<(usize, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dsts: Vec<usize> = (0..n).collect();
        loop {
            dsts.shuffle(&mut rng);
            if dsts.iter().enumerate().all(|(i, &d)| i != d) {
                break;
            }
        }
        (0..n).map(|s| (s, dsts[s])).collect()
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(RoutingScheme::ecmp8().label(), "8-way ECMP");
        assert_eq!(RoutingScheme::ecmp64().label(), "64-way ECMP");
        assert_eq!(RoutingScheme::ksp8().label(), "8 Shortest Paths");
    }

    #[test]
    fn table_skips_self_pairs_and_counts() {
        let topo = JellyfishBuilder::new(20, 8, 5).seed(1).build().unwrap();
        let csr = topo.csr();
        let table =
            PathTable::build(&csr, RoutingScheme::ksp8(), vec![(0, 5), (5, 0), (3, 3), (7, 12)]);
        assert_eq!(table.num_pairs(), 3);
        assert!(table.num_paths() >= 3);
        assert!(table.paths_for(3, 3).is_empty());
        assert!(!table.paths_for(0, 5).is_empty());
        assert!(table.paths_for(11, 12).is_empty());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let topo = JellyfishBuilder::new(30, 8, 5).seed(12).build().unwrap();
        let csr = topo.csr();
        let pairs = permutation_pairs(30, 13);
        for scheme in [RoutingScheme::ecmp8(), RoutingScheme::ksp8()] {
            let par = PathTable::build(&csr, scheme, pairs.iter().copied());
            let ser = PathTable::build_serial(&csr, scheme, pairs.iter().copied());
            assert_eq!(par.num_pairs(), ser.num_pairs());
            for (&(s, d), paths) in ser.iter() {
                assert_eq!(par.paths_for(s, d), paths.as_slice(), "pair ({s}, {d})");
            }
            assert_eq!(par.ranked_link_path_counts(&csr), ser.ranked_link_path_counts(&csr));
        }
    }

    #[test]
    fn link_counts_cover_every_directed_link() {
        let topo = JellyfishBuilder::new(20, 8, 5).seed(2).build().unwrap();
        let csr = topo.csr();
        let table = PathTable::build(&csr, RoutingScheme::ecmp8(), permutation_pairs(20, 3));
        let counts = table.directed_link_path_counts(&csr);
        assert_eq!(counts.len(), 2 * topo.num_links());
        let ranked = table.ranked_link_path_counts(&csr);
        assert_eq!(ranked.len(), 2 * topo.num_links());
        assert!(ranked.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn link_count_totals_match_path_hops() {
        let topo = JellyfishBuilder::new(15, 8, 5).seed(4).build().unwrap();
        let csr = topo.csr();
        let table = PathTable::build(&csr, RoutingScheme::ksp8(), permutation_pairs(15, 5));
        let counts = table.directed_link_path_counts(&csr);
        let total_from_counts: usize = counts.values().sum();
        let total_hops: usize =
            table.iter().flat_map(|(_, paths)| paths.iter().map(|p| p.len() - 1)).sum();
        assert_eq!(total_from_counts, total_hops);
        let flat_total: usize = table.arc_path_counts(&csr).iter().sum();
        assert_eq!(flat_total, total_hops);
    }

    #[test]
    fn ksp_uses_more_links_than_ecmp() {
        // The Figure 9 effect: 8-shortest-path routing leaves far fewer links
        // with <= 2 paths than 8-way ECMP on a Jellyfish topology.
        let topo = JellyfishBuilder::new(60, 10, 6).seed(6).build().unwrap();
        let csr = topo.csr();
        let pairs = permutation_pairs(60, 7);
        let ecmp = PathTable::build(&csr, RoutingScheme::ecmp8(), pairs.clone());
        let ksp = PathTable::build(&csr, RoutingScheme::ksp8(), pairs);
        let f_ecmp = ecmp.fraction_links_with_at_most(&csr, 2);
        let f_ksp = ksp.fraction_links_with_at_most(&csr, 2);
        assert!(
            f_ksp < f_ecmp,
            "k-shortest paths ({f_ksp}) should leave fewer underused links than ECMP ({f_ecmp})"
        );
    }

    #[test]
    fn ecmp64_no_worse_than_ecmp8() {
        let topo = JellyfishBuilder::new(40, 10, 6).seed(8).build().unwrap();
        let csr = topo.csr();
        let pairs = permutation_pairs(40, 9);
        let e8 = PathTable::build(&csr, RoutingScheme::ecmp8(), pairs.clone());
        let e64 = PathTable::build(&csr, RoutingScheme::ecmp64(), pairs);
        assert!(e64.num_paths() >= e8.num_paths());
    }

    #[test]
    fn empty_table_fraction_is_zero() {
        let topo = JellyfishBuilder::new(10, 6, 3).seed(1).build().unwrap();
        let csr = topo.csr();
        let table = PathTable::build(&csr, RoutingScheme::ecmp8(), Vec::new());
        assert_eq!(table.num_pairs(), 0);
        // All links have zero paths -> fraction with <= 2 is 1.0 (all of them).
        assert!((table.fraction_links_with_at_most(&csr, 2) - 1.0).abs() < 1e-12);
    }
}
