//! Per source–destination path tables and link path-diversity statistics.
//!
//! Figure 9 of the paper counts, for every directed inter-switch link, the
//! number of distinct paths that traverse it when routing a random
//! permutation workload with (a) 8-way ECMP, (b) 64-way ECMP, and (c)
//! 8-shortest-path routing. The punchline: under ECMP most links are on very
//! few paths, so capacity sits idle.

use crate::ecmp::EcmpConfig;
use crate::yen::k_shortest_paths;
use crate::Path;
use jellyfish_topology::{Graph, NodeId};
use std::collections::HashMap;

/// The routing scheme used to build a path table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingScheme {
    /// Equal-cost multipath over shortest paths with the given width.
    Ecmp {
        /// Maximum number of equal-cost paths per destination.
        way: usize,
    },
    /// Yen's k-shortest-path routing with the given k.
    KShortestPaths {
        /// Number of (not necessarily equal-length) shortest paths per pair.
        k: usize,
    },
}

impl RoutingScheme {
    /// The paper's default ECMP configuration (8-way).
    pub fn ecmp8() -> Self {
        RoutingScheme::Ecmp { way: 8 }
    }

    /// 64-way ECMP.
    pub fn ecmp64() -> Self {
        RoutingScheme::Ecmp { way: 64 }
    }

    /// The paper's k-shortest-path configuration (k = 8).
    pub fn ksp8() -> Self {
        RoutingScheme::KShortestPaths { k: 8 }
    }

    /// Computes the path set for one switch pair under this scheme.
    pub fn paths(&self, graph: &Graph, src: NodeId, dst: NodeId) -> Vec<Path> {
        match *self {
            RoutingScheme::Ecmp { way } => EcmpConfig { way }.paths(graph, src, dst),
            RoutingScheme::KShortestPaths { k } => k_shortest_paths(graph, src, dst, k),
        }
    }

    /// Human-readable label used in reports and figures.
    pub fn label(&self) -> String {
        match *self {
            RoutingScheme::Ecmp { way } => format!("{way}-way ECMP"),
            RoutingScheme::KShortestPaths { k } => format!("{k} Shortest Paths"),
        }
    }
}

/// A path table: the set of installed paths for a collection of
/// source–destination switch pairs.
#[derive(Debug, Clone, Default)]
pub struct PathTable {
    paths: HashMap<(NodeId, NodeId), Vec<Path>>,
}

impl PathTable {
    /// Builds the table for the given switch pairs under `scheme`.
    pub fn build(
        graph: &Graph,
        scheme: RoutingScheme,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let mut paths = HashMap::new();
        for (s, d) in pairs {
            if s == d {
                continue;
            }
            paths.entry((s, d)).or_insert_with(|| scheme.paths(graph, s, d));
        }
        PathTable { paths }
    }

    /// Installed paths for one pair (empty slice if the pair is not in the table).
    pub fn paths_for(&self, src: NodeId, dst: NodeId) -> &[Path] {
        self.paths.get(&(src, dst)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of pairs in the table.
    pub fn num_pairs(&self) -> usize {
        self.paths.len()
    }

    /// Total number of installed paths.
    pub fn num_paths(&self) -> usize {
        self.paths.values().map(Vec::len).sum()
    }

    /// Iterates over `((src, dst), paths)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &Vec<Path>)> {
        self.paths.iter()
    }

    /// Counts, for every *directed* inter-switch link, the number of distinct
    /// installed paths that traverse it. Links never traversed are included
    /// with a count of zero. This is the Figure 9 quantity.
    pub fn directed_link_path_counts(&self, graph: &Graph) -> HashMap<(NodeId, NodeId), usize> {
        let mut counts: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        for e in graph.edges() {
            counts.insert((e.a, e.b), 0);
            counts.insert((e.b, e.a), 0);
        }
        for paths in self.paths.values() {
            for p in paths {
                for w in p.windows(2) {
                    *counts.entry((w[0], w[1])).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// The Figure 9 series: per-directed-link path counts sorted ascending
    /// ("rank of link" on the x axis, "# distinct paths link is on" on the y
    /// axis).
    pub fn ranked_link_path_counts(&self, graph: &Graph) -> Vec<usize> {
        let mut counts: Vec<usize> = self.directed_link_path_counts(graph).into_values().collect();
        counts.sort_unstable();
        counts
    }

    /// Fraction of directed links that lie on at most `threshold` distinct
    /// paths (the paper quotes 55% of links on <= 2 paths under ECMP vs 6%
    /// under 8-shortest-paths, for the 686-server Jellyfish).
    pub fn fraction_links_with_at_most(&self, graph: &Graph, threshold: usize) -> f64 {
        let ranked = self.ranked_link_path_counts(graph);
        if ranked.is_empty() {
            return 0.0;
        }
        ranked.iter().filter(|&&c| c <= threshold).count() as f64 / ranked.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::JellyfishBuilder;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn permutation_pairs(n: usize, seed: u64) -> Vec<(usize, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dsts: Vec<usize> = (0..n).collect();
        loop {
            dsts.shuffle(&mut rng);
            if dsts.iter().enumerate().all(|(i, &d)| i != d) {
                break;
            }
        }
        (0..n).map(|s| (s, dsts[s])).collect()
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(RoutingScheme::ecmp8().label(), "8-way ECMP");
        assert_eq!(RoutingScheme::ecmp64().label(), "64-way ECMP");
        assert_eq!(RoutingScheme::ksp8().label(), "8 Shortest Paths");
    }

    #[test]
    fn table_skips_self_pairs_and_counts() {
        let topo = JellyfishBuilder::new(20, 8, 5).seed(1).build().unwrap();
        let table = PathTable::build(
            topo.graph(),
            RoutingScheme::ksp8(),
            vec![(0, 5), (5, 0), (3, 3), (7, 12)],
        );
        assert_eq!(table.num_pairs(), 3);
        assert!(table.num_paths() >= 3);
        assert!(table.paths_for(3, 3).is_empty());
        assert!(!table.paths_for(0, 5).is_empty());
        assert!(table.paths_for(11, 12).is_empty());
    }

    #[test]
    fn link_counts_cover_every_directed_link() {
        let topo = JellyfishBuilder::new(20, 8, 5).seed(2).build().unwrap();
        let table = PathTable::build(topo.graph(), RoutingScheme::ecmp8(), permutation_pairs(20, 3));
        let counts = table.directed_link_path_counts(topo.graph());
        assert_eq!(counts.len(), 2 * topo.num_links());
        let ranked = table.ranked_link_path_counts(topo.graph());
        assert_eq!(ranked.len(), 2 * topo.num_links());
        assert!(ranked.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn link_count_totals_match_path_hops() {
        let topo = JellyfishBuilder::new(15, 8, 5).seed(4).build().unwrap();
        let table = PathTable::build(topo.graph(), RoutingScheme::ksp8(), permutation_pairs(15, 5));
        let counts = table.directed_link_path_counts(topo.graph());
        let total_from_counts: usize = counts.values().sum();
        let total_hops: usize = table
            .iter()
            .flat_map(|(_, paths)| paths.iter().map(|p| p.len() - 1))
            .sum();
        assert_eq!(total_from_counts, total_hops);
    }

    #[test]
    fn ksp_uses_more_links_than_ecmp() {
        // The Figure 9 effect: 8-shortest-path routing leaves far fewer links
        // with <= 2 paths than 8-way ECMP on a Jellyfish topology.
        let topo = JellyfishBuilder::new(60, 10, 6).seed(6).build().unwrap();
        let pairs = permutation_pairs(60, 7);
        let ecmp = PathTable::build(topo.graph(), RoutingScheme::ecmp8(), pairs.clone());
        let ksp = PathTable::build(topo.graph(), RoutingScheme::ksp8(), pairs);
        let f_ecmp = ecmp.fraction_links_with_at_most(topo.graph(), 2);
        let f_ksp = ksp.fraction_links_with_at_most(topo.graph(), 2);
        assert!(
            f_ksp < f_ecmp,
            "k-shortest paths ({f_ksp}) should leave fewer underused links than ECMP ({f_ecmp})"
        );
    }

    #[test]
    fn ecmp64_no_worse_than_ecmp8() {
        let topo = JellyfishBuilder::new(40, 10, 6).seed(8).build().unwrap();
        let pairs = permutation_pairs(40, 9);
        let e8 = PathTable::build(topo.graph(), RoutingScheme::ecmp8(), pairs.clone());
        let e64 = PathTable::build(topo.graph(), RoutingScheme::ecmp64(), pairs);
        assert!(e64.num_paths() >= e8.num_paths());
    }

    #[test]
    fn empty_table_fraction_is_zero() {
        let topo = JellyfishBuilder::new(10, 6, 3).seed(1).build().unwrap();
        let table = PathTable::build(topo.graph(), RoutingScheme::ecmp8(), Vec::new());
        assert_eq!(table.num_pairs(), 0);
        // All links have zero paths -> fraction with <= 2 is 1.0 (all of them).
        assert!((table.fraction_links_with_at_most(topo.graph(), 2) - 1.0).abs() < 1e-12);
    }
}
