//! ECMP (equal-cost multi-path) routing as deployed in commodity switches,
//! and the bounded-width variants (8-way / 64-way) the paper evaluates.
//!
//! ECMP spreads flows across *shortest* paths only. On a fat-tree that is
//! plenty (all core paths have equal length); on Jellyfish it leaves most of
//! the capacity unused because many useful paths are one hop longer than the
//! shortest. This module enumerates equal-cost shortest paths, truncates them
//! to an ECMP path budget the way a switch's hash table would, and hashes
//! flows onto them.

use crate::{shortest::bfs, Path};
use jellyfish_topology::{CsrGraph, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Enumerates *all* shortest paths from `src` to `dst`, up to `limit` paths
/// (the enumeration is depth-first over the shortest-path DAG and stops once
/// `limit` paths have been produced).
pub fn all_shortest_paths(csr: &CsrGraph, src: NodeId, dst: NodeId, limit: usize) -> Vec<Path> {
    if limit == 0 {
        return Vec::new();
    }
    if src == dst {
        return vec![vec![src]];
    }
    // Distances *to dst* let us walk the DAG forward from src.
    let to_dst = bfs(csr, dst).dist;
    if to_dst[src] == usize::MAX {
        return Vec::new();
    }
    let mut paths = Vec::new();
    let mut stack: Path = vec![src];
    dfs_shortest(csr, dst, &to_dst, &mut stack, &mut paths, limit);
    paths
}

fn dfs_shortest(
    csr: &CsrGraph,
    dst: NodeId,
    to_dst: &[usize],
    stack: &mut Path,
    out: &mut Vec<Path>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    let u = *stack.last().expect("stack never empty");
    if u == dst {
        out.push(stack.clone());
        return;
    }
    // CSR rows are sorted, so the enumeration order is deterministic.
    for &v in csr.neighbors(u) {
        let v = v as NodeId;
        if to_dst[v] == usize::MAX || to_dst[v] + 1 != to_dst[u] {
            continue;
        }
        stack.push(v);
        dfs_shortest(csr, dst, to_dst, stack, out, limit);
        stack.pop();
        if out.len() >= limit {
            return;
        }
    }
}

/// An ECMP routing configuration: for every source–destination pair, the set
/// of equal-cost shortest paths a switch fabric with an `way`-wide ECMP group
/// would install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcmpConfig {
    /// Maximum number of equal-cost paths installed per destination
    /// (8 and 64 are the widths the paper evaluates).
    pub way: usize,
}

impl EcmpConfig {
    /// Standard 8-way ECMP.
    pub fn eight_way() -> Self {
        EcmpConfig { way: 8 }
    }

    /// 64-way ECMP ("does not perform much better", per the paper).
    pub fn sixty_four_way() -> Self {
        EcmpConfig { way: 64 }
    }

    /// The ECMP path set for one pair: all shortest paths, truncated to the
    /// ECMP width in deterministic (enumeration) order.
    pub fn paths(&self, csr: &CsrGraph, src: NodeId, dst: NodeId) -> Vec<Path> {
        all_shortest_paths(csr, src, dst, self.way)
    }

    /// Deterministically hashes a flow identifier onto one of the installed
    /// paths, mimicking per-flow ECMP hashing in hardware.
    pub fn pick_path<'a>(&self, paths: &'a [Path], flow_id: u64) -> Option<&'a Path> {
        if paths.is_empty() {
            return None;
        }
        let mut hasher = DefaultHasher::new();
        flow_id.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % paths.len();
        Some(&paths[idx])
    }
}

/// Convenience: hash a 5-tuple-ish flow description to a stable flow id.
pub fn flow_id(src_server: usize, dst_server: usize, subflow: usize) -> u64 {
    let mut hasher = DefaultHasher::new();
    (src_server, dst_server, subflow).hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::fattree::FatTree;
    use jellyfish_topology::JellyfishBuilder;

    #[test]
    fn all_shortest_paths_in_cycle() {
        let mut g = jellyfish_topology::Graph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        let g = CsrGraph::from_graph(&g);
        // Opposite nodes have exactly 2 shortest paths.
        let paths = all_shortest_paths(&g, 0, 3, 16);
        assert_eq!(paths.len(), 2);
        // Adjacent nodes have exactly 1.
        assert_eq!(all_shortest_paths(&g, 0, 1, 16).len(), 1);
    }

    #[test]
    fn limit_truncates_enumeration() {
        let ft = FatTree::new(4).unwrap();
        let g = &ft.topology().csr();
        // Two edge switches in different pods have (k/2)^2 = 4 shortest paths.
        let full = all_shortest_paths(g, 0, 2, 64);
        assert_eq!(full.len(), 4);
        let limited = all_shortest_paths(g, 0, 2, 2);
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn paths_are_shortest_and_valid() {
        let topo = JellyfishBuilder::new(40, 10, 6).seed(3).build().unwrap();
        let g = &topo.csr();
        let sp = crate::shortest::shortest_path(g, 1, 30).unwrap();
        let paths = all_shortest_paths(g, 1, 30, 64);
        assert!(!paths.is_empty());
        for p in &paths {
            assert_eq!(p.len(), sp.len(), "not a shortest path: {p:?}");
            assert!(crate::is_valid_simple_path(g, p));
        }
        // Distinct.
        let set: std::collections::HashSet<_> = paths.iter().collect();
        assert_eq!(set.len(), paths.len());
    }

    #[test]
    fn self_and_unreachable_pairs() {
        let mut g = jellyfish_topology::Graph::new(3);
        g.add_edge(0, 1);
        let g = CsrGraph::from_graph(&g);
        assert_eq!(all_shortest_paths(&g, 2, 2, 8), vec![vec![2]]);
        assert!(all_shortest_paths(&g, 0, 2, 8).is_empty());
        assert!(all_shortest_paths(&g, 0, 1, 0).is_empty());
    }

    #[test]
    fn ecmp_width_limits_path_set() {
        let ft = FatTree::new(6).unwrap();
        let g = &ft.topology().csr();
        // Cross-pod edge switches in a k=6 fat-tree have 9 shortest paths.
        let full = all_shortest_paths(g, 0, 4, 1024);
        assert_eq!(full.len(), 9);
        let eight = EcmpConfig::eight_way().paths(g, 0, 4);
        assert_eq!(eight.len(), 8);
        let sixty_four = EcmpConfig::sixty_four_way().paths(g, 0, 4);
        assert_eq!(sixty_four.len(), 9);
    }

    #[test]
    fn flow_hashing_is_deterministic_and_spreads() {
        let ft = FatTree::new(4).unwrap();
        let g = &ft.topology().csr();
        let cfg = EcmpConfig::eight_way();
        let paths = cfg.paths(g, 0, 2);
        assert_eq!(paths.len(), 4);
        let p1 = cfg.pick_path(&paths, 42).unwrap().clone();
        let p2 = cfg.pick_path(&paths, 42).unwrap().clone();
        assert_eq!(p1, p2, "same flow id must map to the same path");
        // Over many flow ids every path should be picked at least once.
        let mut used = std::collections::HashSet::new();
        for f in 0..200u64 {
            used.insert(cfg.pick_path(&paths, f).unwrap().clone());
        }
        assert_eq!(used.len(), paths.len());
    }

    #[test]
    fn pick_path_empty_set() {
        let cfg = EcmpConfig::eight_way();
        assert!(cfg.pick_path(&[], 1).is_none());
    }

    #[test]
    fn flow_id_is_stable_and_distinguishes_subflows() {
        assert_eq!(flow_id(1, 2, 0), flow_id(1, 2, 0));
        assert_ne!(flow_id(1, 2, 0), flow_id(1, 2, 1));
        assert_ne!(flow_id(1, 2, 0), flow_id(2, 1, 0));
    }
}
