//! Yen's loopless k-shortest-paths algorithm (Yen, Management Science 1971).
//!
//! The paper routes Jellyfish traffic over the `k = 8` shortest paths between
//! every switch pair (§5.1). Yen's algorithm finds the k shortest *simple*
//! (loop-free) paths by repeatedly computing "spur paths" that deviate from
//! previously found paths, with links and nodes of the shared prefix masked
//! out of the shortest-path search.
//!
//! This implementation is hand-rolled on top of the crate's Dijkstra (unit
//! link weights by default), per the reproduction note that no external graph
//! crate is used.

use crate::shortest::weighted_shortest_path;
use crate::Path;
use jellyfish_topology::{CsrGraph, NodeId};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashSet};

/// Finds up to `k` loopless shortest paths from `src` to `dst` using unit
/// link weights (hop count). Paths are returned sorted by (length, lexical
/// order) and are pairwise distinct. Returns an empty vector if `dst` is
/// unreachable; returns `[[src]]` when `src == dst`.
pub fn k_shortest_paths(csr: &CsrGraph, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    k_shortest_paths_weighted(csr, src, dst, k, |_, _| 1.0)
}

/// Weighted variant of [`k_shortest_paths`]; `weight(u, v)` must be positive
/// and finite for every link.
pub fn k_shortest_paths_weighted<F>(
    csr: &CsrGraph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    weight: F,
) -> Vec<Path>
where
    F: Fn(NodeId, NodeId) -> f64 + Copy,
{
    if k == 0 {
        return Vec::new();
    }
    if src == dst {
        return vec![vec![src]];
    }
    let Some((first, _)) = weighted_shortest_path(csr, src, dst, weight) else {
        return Vec::new();
    };

    let mut found: Vec<Path> = vec![first];
    // Candidate set keyed by (cost, path) to keep deterministic ordering and
    // deduplicate spur results found via different prefixes.
    let mut candidates: BTreeSet<(CostKey, Path)> = BTreeSet::new();

    while found.len() < k {
        let last = found.last().expect("at least one path found").clone();
        // Each node of the previous path except the final one is a spur node.
        for spur_idx in 0..last.len() - 1 {
            let spur_node = last[spur_idx];
            let root: Vec<NodeId> = last[..=spur_idx].to_vec();

            // Links to mask: for every found path sharing this root, the link
            // it takes out of the spur node.
            let mut masked_links: HashSet<(NodeId, NodeId)> = HashSet::new();
            for p in &found {
                if p.len() > spur_idx && p[..=spur_idx] == root[..] {
                    let a = p[spur_idx];
                    let b = p[spur_idx + 1];
                    masked_links.insert((a.min(b), a.max(b)));
                }
            }
            // Nodes of the root (except the spur node) are masked entirely to
            // keep paths simple.
            let masked_nodes: HashSet<NodeId> = root[..spur_idx].iter().copied().collect();

            let spur_weight = |u: NodeId, v: NodeId| {
                if masked_nodes.contains(&u) || masked_nodes.contains(&v) {
                    return f64::INFINITY;
                }
                if masked_links.contains(&(u.min(v), u.max(v))) {
                    return f64::INFINITY;
                }
                weight(u, v)
            };
            if let Some((spur_path, _)) = weighted_shortest_path(csr, spur_node, dst, spur_weight) {
                let mut total: Path = root[..spur_idx].to_vec();
                total.extend(spur_path);
                // Guard against any residual loop (should not happen).
                if has_duplicate(&total) {
                    continue;
                }
                if found.contains(&total) {
                    continue;
                }
                let cost = path_cost(&total, weight);
                candidates.insert((CostKey(cost), total));
            }
        }
        // Pop the cheapest candidate not yet in the result set.
        let next = loop {
            let Some(entry) = candidates.iter().next().cloned() else {
                return found;
            };
            candidates.remove(&entry);
            if !found.contains(&entry.1) {
                break entry.1;
            }
        };
        found.push(next);
    }
    found
}

/// All-pairs k-shortest paths; `paths[s][d]` holds the path set from `s` to
/// `d` (empty on the diagonal). Intended for the moderate sizes the paper's
/// packet-level experiments use.
pub fn all_pairs_k_shortest(csr: &CsrGraph, k: usize) -> Vec<Vec<Vec<Path>>> {
    let n = csr.num_nodes();
    csr.nodes()
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|s| {
            (0..n)
                .map(|d| if s == d { Vec::new() } else { k_shortest_paths(csr, s, d, k) })
                .collect()
        })
        .collect()
}

fn has_duplicate(path: &Path) -> bool {
    let mut seen = HashSet::with_capacity(path.len());
    path.iter().any(|&n| !seen.insert(n))
}

fn path_cost<F: Fn(NodeId, NodeId) -> f64>(path: &Path, weight: F) -> f64 {
    path.windows(2).map(|w| weight(w[0], w[1])).sum()
}

/// Ordered f64 key for the candidate set (costs are finite by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct CostKey(f64);

impl Eq for CostKey {}

impl PartialOrd for CostKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CostKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_valid_simple_path;
    use jellyfish_topology::{Graph, JellyfishBuilder};

    /// The classic example graph used to illustrate Yen's algorithm.
    fn diamond() -> CsrGraph {
        // 0 -- 1 -- 3
        //  \   |   /
        //   \  2  /
        //    \ | /
        //      4
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 4);
        g.add_edge(4, 3);
        g.add_edge(1, 2);
        g.add_edge(2, 4);
        CsrGraph::from_graph(&g)
    }

    #[test]
    fn finds_all_simple_paths_in_small_graph() {
        let g = diamond();
        let paths = k_shortest_paths(&g, 0, 3, 10);
        // Simple paths 0->3: [0,1,3], [0,4,3], [0,1,2,4,3], [0,4,2,1,3].
        assert_eq!(paths.len(), 4);
        assert_eq!(paths[0].len(), 3);
        assert_eq!(paths[1].len(), 3);
        assert_eq!(paths[2].len(), 5);
        assert_eq!(paths[3].len(), 5);
        for p in &paths {
            assert!(is_valid_simple_path(&g, p));
            assert_eq!(p.first(), Some(&0));
            assert_eq!(p.last(), Some(&3));
        }
        // All distinct.
        let set: std::collections::HashSet<_> = paths.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn k_limits_result_count() {
        let g = diamond();
        assert_eq!(k_shortest_paths(&g, 0, 3, 2).len(), 2);
        assert_eq!(k_shortest_paths(&g, 0, 3, 1).len(), 1);
        assert!(k_shortest_paths(&g, 0, 3, 0).is_empty());
    }

    #[test]
    fn paths_sorted_by_length() {
        let g = diamond();
        let paths = k_shortest_paths(&g, 0, 3, 8);
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn unreachable_and_self_cases() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let g = CsrGraph::from_graph(&g);
        assert!(k_shortest_paths(&g, 0, 2, 4).is_empty());
        assert_eq!(k_shortest_paths(&g, 1, 1, 4), vec![vec![1]]);
    }

    #[test]
    fn line_graph_has_single_path() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let g = CsrGraph::from_graph(&g);
        let paths = k_shortest_paths(&g, 0, 3, 8);
        assert_eq!(paths, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn cycle_graph_has_exactly_two_paths() {
        let mut g = Graph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        let g = CsrGraph::from_graph(&g);
        let paths = k_shortest_paths(&g, 0, 3, 8);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 4);
        assert_eq!(paths[1].len(), 4);
    }

    #[test]
    fn weighted_paths_respect_weights() {
        let g = diamond();
        // Make the 0-1 link very expensive: the cheapest path must avoid it.
        let weight = |u: usize, v: usize| {
            if (u.min(v), u.max(v)) == (0, 1) {
                10.0
            } else {
                1.0
            }
        };
        let paths = k_shortest_paths_weighted(&g, 0, 3, 3, weight);
        assert_eq!(paths[0], vec![0, 4, 3]);
    }

    #[test]
    fn jellyfish_8_shortest_paths_are_valid_and_distinct() {
        let topo = JellyfishBuilder::new(40, 10, 6).seed(5).build().unwrap();
        let g = &topo.csr();
        for (s, d) in [(0usize, 20usize), (3, 35), (11, 29)] {
            let paths = k_shortest_paths(g, s, d, 8);
            assert_eq!(paths.len(), 8, "expected 8 paths between {s} and {d}");
            let set: std::collections::HashSet<_> = paths.iter().collect();
            assert_eq!(set.len(), 8);
            for p in &paths {
                assert!(is_valid_simple_path(g, p));
                assert_eq!(p.first(), Some(&s));
                assert_eq!(p.last(), Some(&d));
            }
            // First path is a true shortest path.
            let sp = crate::shortest::shortest_path(g, s, d).unwrap();
            assert_eq!(paths[0].len(), sp.len());
        }
    }

    #[test]
    fn all_pairs_table_dimensions() {
        let topo = JellyfishBuilder::new(12, 6, 3).seed(1).build().unwrap();
        let table = all_pairs_k_shortest(&topo.csr(), 4);
        assert_eq!(table.len(), 12);
        for (s, row) in table.iter().enumerate() {
            for (d, cell) in row.iter().enumerate() {
                if s == d {
                    assert!(cell.is_empty());
                } else {
                    assert!(!cell.is_empty());
                    assert!(cell.len() <= 4);
                }
            }
        }
    }
}
