//! Property-based tests for the routing crate: Yen's algorithm, ECMP path
//! enumeration and path tables, exercised over random Jellyfish topologies.

use jellyfish_routing::ecmp::all_shortest_paths;
use jellyfish_routing::is_valid_simple_path;
use jellyfish_routing::path_table::{PathTable, RoutingScheme};
use jellyfish_routing::shortest::{bfs, shortest_path};
use jellyfish_routing::yen::k_shortest_paths;
use jellyfish_topology::JellyfishBuilder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Yen's k shortest paths are simple, valid, distinct, sorted by length,
    /// and the first one is a true shortest path.
    #[test]
    fn yen_paths_invariants(
        n in 10usize..50,
        k in 1usize..10,
        seed in any::<u64>(),
    ) {
        let topo = JellyfishBuilder::new(n, 9, 5).seed(seed).build().unwrap();
        let g = &topo.csr();
        let src = 0;
        let dst = n / 2;
        let paths = k_shortest_paths(g, src, dst, k);
        prop_assert!(!paths.is_empty());
        prop_assert!(paths.len() <= k);
        let sp = shortest_path(g, src, dst).unwrap();
        prop_assert_eq!(paths[0].len(), sp.len());
        for w in paths.windows(2) {
            prop_assert!(w[0].len() <= w[1].len(), "paths not sorted by length");
        }
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            prop_assert!(is_valid_simple_path(g, p));
            prop_assert_eq!(*p.first().unwrap(), src);
            prop_assert_eq!(*p.last().unwrap(), dst);
            prop_assert!(seen.insert(p.clone()), "duplicate path {p:?}");
        }
    }

    /// Every enumerated equal-cost path has exactly the BFS shortest length.
    #[test]
    fn ecmp_paths_are_shortest(n in 10usize..40, seed in any::<u64>()) {
        let topo = JellyfishBuilder::new(n, 8, 5).seed(seed).build().unwrap();
        let g = &topo.csr();
        let dist = bfs(g, 1).dist;
        for dst in [n - 1, n / 2, 2] {
            if dst == 1 { continue; }
            let paths = all_shortest_paths(g, 1, dst, 32);
            prop_assert!(!paths.is_empty());
            for p in &paths {
                prop_assert_eq!(p.len() - 1, dist[dst]);
                prop_assert!(is_valid_simple_path(g, p));
            }
        }
    }

    /// ECMP path sets are a subset (by construction, a prefix-limited subset)
    /// of the k-shortest-path sets in terms of minimum length, and k-shortest
    /// paths always finds at least as many paths as ECMP can install when
    /// k >= the ECMP width.
    #[test]
    fn ksp_at_least_as_many_paths_as_ecmp(n in 12usize..40, seed in any::<u64>()) {
        let topo = JellyfishBuilder::new(n, 8, 5).seed(seed).build().unwrap();
        let g = &topo.csr();
        let ecmp = all_shortest_paths(g, 0, n - 1, 8);
        let ksp = k_shortest_paths(g, 0, n - 1, 8);
        prop_assert!(ksp.len() >= ecmp.len());
    }

    /// Path-table link counts are conserved: the sum over directed links of
    /// the per-link path count equals the total number of hops installed.
    #[test]
    fn path_table_conservation(n in 10usize..30, seed in any::<u64>()) {
        let topo = JellyfishBuilder::new(n, 8, 5).seed(seed).build().unwrap();
        let pairs: Vec<_> = (0..n).map(|s| (s, (s + n / 2) % n)).filter(|(s, d)| s != d).collect();
        let csr = topo.csr();
        let table = PathTable::build(&csr, RoutingScheme::ksp8(), pairs);
        let counts = table.directed_link_path_counts(&csr);
        let total: usize = counts.values().sum();
        let hops: usize = table.iter().flat_map(|(_, ps)| ps.iter().map(|p| p.len() - 1)).sum();
        prop_assert_eq!(total, hops);
        prop_assert_eq!(counts.len(), 2 * topo.num_links());
    }

    /// The rayon path-table build is identical to the serial build for every
    /// scheme and workload — parallelism must never change results.
    #[test]
    fn path_table_parallel_matches_serial(n in 10usize..30, seed in any::<u64>()) {
        let topo = JellyfishBuilder::new(n, 8, 5).seed(seed).build().unwrap();
        let csr = topo.csr();
        let pairs: Vec<_> = (0..n).map(|s| (s, (s * 7 + 3) % n)).filter(|(s, d)| s != d).collect();
        for scheme in [RoutingScheme::ecmp8(), RoutingScheme::ecmp64(), RoutingScheme::ksp8()] {
            let par = PathTable::build(&csr, scheme, pairs.iter().copied());
            let ser = PathTable::build_serial(&csr, scheme, pairs.iter().copied());
            prop_assert_eq!(par, ser);
        }
    }
}
