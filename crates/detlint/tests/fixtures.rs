//! The fixture corpus: one violating + one compliant file per rule, plus
//! the pragma grammar's error cases, driven against exact expected
//! diagnostics. A rule change that moves, drops, or adds a finding fails
//! here with the precise `rule@line:col` delta.

use std::path::Path;

fn lint_fixture(name: &str) -> (Vec<detlint::Finding>, usize) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata").join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    detlint::lint_source(&path.to_string_lossy(), &src)
}

/// Asserts the fixture yields exactly `expected` `(rule, line, col)`
/// findings, in order.
fn assert_findings(name: &str, expected: &[(&str, u32, u32)]) {
    let (findings, _) = lint_fixture(name);
    let got: Vec<(String, u32, u32)> =
        findings.iter().map(|f| (f.rule.clone(), f.line, f.col)).collect();
    let want: Vec<(String, u32, u32)> =
        expected.iter().map(|&(r, l, c)| (r.to_string(), l, c)).collect();
    assert_eq!(got, want, "fixture {name}: findings {findings:#?}");
}

fn assert_clean(name: &str, expected_suppressed: usize) {
    let (findings, suppressed) = lint_fixture(name);
    assert!(findings.is_empty(), "fixture {name} should be clean, got {findings:#?}");
    assert_eq!(suppressed, expected_suppressed, "fixture {name}: suppression count");
}

#[test]
fn d01_unordered_iteration() {
    assert_findings("d01_violation.rs", &[("D01", 6, 11), ("D01", 10, 14), ("D01", 22, 20)]);
    assert_clean("d01_ok.rs", 0);
}

#[test]
fn d01_messages_name_the_container() {
    let (findings, _) = lint_fixture("d01_violation.rs");
    assert!(findings[0].message.contains("'table' via .keys()"), "{}", findings[0].message);
    assert!(findings[1].message.contains("for-loop over unordered container 'seen'"));
    assert!(findings[2].message.contains("'slots' via .drain()"));
}

#[test]
fn d02_wall_clock() {
    assert_findings("d02_violation.rs", &[("D02", 3, 26), ("D02", 6, 19), ("D02", 8, 5)]);
    // Same calls, but under an allowlisted virtual path: clean.
    assert_clean("d02_ok.rs", 0);
}

#[test]
fn d03_entropy_rng() {
    assert_findings(
        "d03_violation.rs",
        &[
            ("D03", 3, 17), // use ...::OsRng
            ("D03", 4, 12), // use ...::thread_rng
            ("D03", 7, 19), // thread_rng()
            ("D03", 8, 28), // rand::random()
            ("D03", 9, 34), // StdRng::from_entropy()
        ],
    );
    // seed_from_u64 and seeded `.gen_range` draws are fine.
    assert_clean("d03_ok.rs", 0);
}

#[test]
fn d04_par_float_reduction() {
    assert_findings("d04_violation.rs", &[("D04", 6, 42), ("D04", 10, 29)]);
    // collect() then serial fold re-establishes a fixed order.
    assert_clean("d04_ok.rs", 0);
}

#[test]
fn d05_crate_root_policy() {
    // forbid(unsafe_code) is present, warn(missing_docs) is not: exactly
    // one finding, anchored to the top of the file.
    assert_findings("d05_violation.rs", &[("D05", 1, 1)]);
    let (findings, _) = lint_fixture("d05_violation.rs");
    assert!(findings[0].message.contains("#![warn(missing_docs)]"));
    assert_clean("d05_ok.rs", 0);
}

#[test]
fn d06_env_read() {
    assert_findings("d06_violation.rs", &[("D06", 5, 15), ("D06", 9, 15)]);
    // Same reads in a non-result-path crate: clean.
    assert_clean("d06_ok.rs", 0);
}

#[test]
fn pragma_with_reason_suppresses() {
    // Standalone and trailing pragma forms each waive one finding.
    assert_clean("pragma_reasoned.rs", 2);
}

#[test]
fn pragma_without_reason_is_p01_and_waives_nothing() {
    assert_findings("pragma_missing_reason.rs", &[("P01", 6, 5), ("D01", 7, 11)]);
    let (findings, _) = lint_fixture("pragma_missing_reason.rs");
    assert!(findings[0].message.contains("reason"), "{}", findings[0].message);
}

#[test]
fn pragma_unknown_rule_is_p01() {
    assert_findings("pragma_unknown_rule.rs", &[("P01", 5, 5)]);
    let (findings, _) = lint_fixture("pragma_unknown_rule.rs");
    assert!(findings[0].message.contains("unknown rule 'D99'"), "{}", findings[0].message);
}

#[test]
fn violating_fixtures_exit_nonzero_through_the_report() {
    // The CLI's exit decision is Report::is_clean(); check it end to end
    // through lint_paths for one violating and one compliant fixture.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata");
    let bad = detlint::lint_paths(&[dir.join("d01_violation.rs")]).unwrap();
    assert!(!bad.is_clean());
    let good = detlint::lint_paths(&[dir.join("d01_ok.rs")]).unwrap();
    assert!(good.is_clean());
}

#[test]
fn walker_skips_testdata_but_explicit_files_lint() {
    // Walking the detlint crate directory must not pick up the fixture
    // corpus (it violates on purpose); it finds the crate's own sources.
    let crate_dir = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    let report = detlint::lint_paths(&[crate_dir]).unwrap();
    assert!(report.is_clean(), "detlint's own sources must lint clean: {:#?}", report.findings);
    assert!(report.files >= 9, "expected the crate's own .rs files, got {}", report.files);
}

#[test]
fn json_report_shape() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata");
    let report = detlint::lint_paths(&[dir.join("d06_violation.rs")]).unwrap();
    let json = detlint::render_json(&report);
    // Dependency-free shape check: stable keys present, findings inline.
    for key in
        ["\"tool\":\"detlint\"", "\"rules\":[", "\"files\":1", "\"findings\":[", "\"rule\":\"D06\""]
    {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
    assert!(json.ends_with("]}\n"));
}

#[test]
fn unknown_path_is_an_error_not_a_finding() {
    let err = detlint::lint_paths(&[Path::new("no/such/path.rs").to_path_buf()]).unwrap_err();
    assert!(err.contains("no such file"), "{err}");
}
