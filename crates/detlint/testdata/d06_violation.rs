// detlint-fixture: path = crates/core/src/fixture.rs
// D06: environment-dependent reads in a result-path crate.

pub fn scale_override() -> Option<String> {
    std::env::var("FIGURES_SCALE").ok()
}

pub fn threads() -> Option<std::ffi::OsString> {
    std::env::var_os("RAYON_NUM_THREADS")
}
