// detlint-fixture: path = crates/bench/src/fixture.rs
// Compliant: the bench CLI is not a result-path crate — it may read the
// environment (and env::args is always fine; it feeds validated flags).

pub fn ci() -> bool {
    std::env::var("CI").is_ok()
}

pub fn argv() -> Vec<String> {
    std::env::args().collect()
}
