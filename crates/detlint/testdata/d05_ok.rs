// detlint-fixture: path = crates/fixture/src/lib.rs
//! A compliant crate root: both policy headers present.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Documented, as missing_docs demands.
pub fn present() {}
