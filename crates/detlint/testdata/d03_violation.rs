// detlint-fixture: path = crates/topology/src/fixture.rs
// D03: entropy-seeded RNG anywhere in the workspace.
use rand::rngs::OsRng;
use rand::{thread_rng, Rng, SeedableRng};

pub fn shuffled(mut items: Vec<u32>) -> Vec<u32> {
    let mut rng = thread_rng();
    let extra: u64 = rand::random();
    let _ = (rand::rngs::StdRng::from_entropy(), extra);
    items.sort_by_key(|&v| rng.gen_range(0..v.max(1)));
    items
}
