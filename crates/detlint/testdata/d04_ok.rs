// detlint-fixture: path = crates/flow/src/fixture.rs
// Compliant: the λ-bit-preservation discipline — fan out in parallel,
// collect, then accumulate serially in a fixed order.
use rayon::prelude::*;

pub fn total_cost(lengths: &[f64]) -> f64 {
    let scaled: Vec<f64> = lengths.par_iter().map(|&l| l * 1.5).collect();
    scaled.iter().fold(0.0, |acc, &l| acc + l)
}
