// detlint-fixture: path = crates/sim/src/fixture.rs
// D02: wall-clock reads outside the timing allowlist.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let started = Instant::now();
    let _ = started;
    SystemTime::now().elapsed().unwrap().as_nanos()
}
