// detlint-fixture: path = crates/topology/src/fixture.rs
// Compliant: every RNG is derived from the experiment seed chain.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn shuffled(mut items: Vec<u32>, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    items.sort_by_key(|&v| rng.gen_range(0..v.max(1)));
    items
}
