// detlint-fixture: path = crates/routing/src/fixture.rs
// Compliant: ordered containers iterate freely; unordered ones are only
// used for order-free lookups, and a Vec<HashMap> is ordered at the level
// being iterated.
use std::collections::{BTreeMap, HashMap};

pub fn sorted_keys(table: &BTreeMap<u32, f64>) -> Vec<u32> {
    table.keys().copied().collect()
}

pub fn lookups_only(index: &HashMap<u32, f64>, probe: &[u32]) -> f64 {
    let mut total = 0.0;
    for k in probe {
        total += index.get(k).copied().unwrap_or(0.0);
    }
    total
}

pub fn outer_vec_is_ordered(maps: &[HashMap<u32, f64>], key: u32) -> Vec<f64> {
    let rows: Vec<HashMap<u32, f64>> = maps.to_vec();
    rows.iter().map(|m| m.get(&key).copied().unwrap_or(0.0)).collect()
}
