// detlint-fixture: path = crates/fixture/src/lib.rs
//! A crate root carrying only half the policy header set.
#![forbid(unsafe_code)]

pub fn present() {}
