// detlint-fixture: path = crates/flow/src/fixture.rs
// A pragma naming an unregistered rule is a finding (P01).

pub fn fine() -> u32 {
    // detlint: allow(D99, reason = "no such rule")
    42
}
