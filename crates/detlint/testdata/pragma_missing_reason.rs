// detlint-fixture: path = crates/flow/src/fixture.rs
// A pragma without a reason is itself a finding (P01) and waives nothing.
use std::collections::HashMap;

pub fn count_all(table: &HashMap<u32, Vec<u32>>) -> usize {
    // detlint: allow(D01)
    table.values().map(Vec::len).sum()
}
