// detlint-fixture: path = crates/flow/src/fixture.rs
// D04: float reduction directly on a parallel iterator.
use rayon::prelude::*;

pub fn total_cost(lengths: &[f64]) -> f64 {
    lengths.par_iter().map(|&l| l * 1.5).sum()
}

pub fn folded(lengths: Vec<f64>) -> f64 {
    lengths.into_par_iter().fold(|| 0.0, |acc, l| acc + l).sum()
}
