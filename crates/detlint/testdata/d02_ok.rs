// detlint-fixture: path = crates/bench/src/launch.rs
// Compliant: this virtual path is on the D02 timing allowlist — the
// launcher measures wall-clock *about* runs, never *into* them.
use std::time::Instant;

pub fn elapsed_us(run: impl FnOnce()) -> u128 {
    let start = Instant::now();
    run();
    start.elapsed().as_micros()
}
