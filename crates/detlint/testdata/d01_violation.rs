// detlint-fixture: path = crates/routing/src/fixture.rs
// D01: iteration over unordered containers in a result-path crate.
use std::collections::{HashMap, HashSet};

pub fn keys_of(table: &HashMap<u32, f64>) -> Vec<u32> {
    table.keys().copied().collect()
}

pub fn first_seen(seen: &HashSet<u32>) -> Option<u32> {
    for v in seen {
        return Some(*v);
    }
    None
}

pub struct Holder {
    slots: HashMap<u32, u32>,
}

impl Holder {
    pub fn drain_all(&mut self) -> Vec<(u32, u32)> {
        self.slots.drain().collect()
    }
}
