// detlint-fixture: path = crates/flow/src/fixture.rs
// A violation waived by a well-formed pragma: clean, one suppression.
use std::collections::HashMap;

pub fn count_all(table: &HashMap<u32, Vec<u32>>) -> usize {
    // detlint: allow(D01, reason = "sum of per-key lengths is order-independent")
    table.values().map(Vec::len).sum()
}

pub fn trailing_form(table: &HashMap<u32, Vec<u32>>) -> usize {
    table.values().count() // detlint: allow(D01, reason = "count ignores order")
}
