//! **D04** — reduction inside a `par_iter` chain.
//!
//! Floating-point addition is not associative, so a parallel reduction whose
//! combination order depends on scheduling produces different low bits run
//! to run — exactly the λ drift the PR 7 kernels eliminated by hoisting
//! every accumulation into fixed-order serial folds (collect the parallel
//! results, then reduce serially). The compat rayon shim happens to be
//! order-preserving today, which is precisely why this must be a *static*
//! rule: code that silently relies on it breaks the day real rayon is
//! swapped back in (DESIGN.md, substitution 5).
//!
//! Flagged: `.sum(…)`, `.product(…)`, `.fold(…)`, `.reduce(…)` reached at
//! method-chain depth from a `par_iter`-family adapter without an
//! intervening `collect()`. A chain that collects first re-establishes a
//! deterministic order, so reductions after `collect()` are fine.

use super::RawFinding;
use crate::lexer::TokKind;
use crate::{FileCtx, FileKind};

const PAR_ADAPTERS: &[&str] =
    &["par_iter", "into_par_iter", "par_iter_mut", "par_bridge", "par_chunks", "par_chunks_mut"];
const REDUCERS: &[&str] = &["sum", "product", "fold", "reduce"];

pub(super) fn check(ctx: &FileCtx) -> Vec<RawFinding> {
    if ctx.kind != FileKind::Src {
        return Vec::new();
    }
    let code = &ctx.code;
    let mut findings = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident
            || !PAR_ADAPTERS.contains(&tok.text.as_str())
            || ctx.in_test_region(tok.line)
        {
            continue;
        }
        // Walk the rest of the method chain at relative depth 0. Anything
        // inside the parens/braces of an adapter argument (closure bodies)
        // is at depth > 0 and ignored; `;`, `,`, or a dedent below the
        // chain's own depth ends it.
        let mut depth = 0i32;
        let mut j = i + 1;
        while let Some(t) = code.get(j) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" | "," if depth == 0 => break,
                "collect" if depth == 0 && code[j - 1].text == "." => break,
                m if depth == 0
                    && REDUCERS.contains(&m)
                    && t.kind == TokKind::Ident
                    && code[j - 1].text == "." =>
                {
                    findings.push(RawFinding::new(
                        t.line,
                        t.col,
                        format!(
                            ".{m}() directly on a parallel iterator: the combination \
                             order is scheduler-dependent, so float accumulation \
                             drifts run to run; collect() the parallel results and \
                             reduce serially in a fixed order (see PERF.md), or add \
                             `// detlint: allow(D04, reason = \"...\")` for integer \
                             or otherwise order-independent reductions"
                        ),
                    ));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    findings
}
