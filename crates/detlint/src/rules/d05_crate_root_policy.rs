//! **D05** — crate-root policy headers.
//!
//! Every `crates/*/src/lib.rs` must carry `#![forbid(unsafe_code)]` and
//! `#![warn(missing_docs)]`. The same policy is enforced at build level by
//! the root `[workspace.lints]` table (every member sets `[lints]
//! workspace = true`), but the headers keep the contract *visible* at the
//! top of each crate root — and this rule keeps header and table from
//! drifting apart.

use super::RawFinding;
use crate::FileCtx;

pub(super) fn check(ctx: &FileCtx) -> Vec<RawFinding> {
    // Exactly .../crates/<name>/src/lib.rs (robust to absolute path
    // prefixes), not some nested src/ dir.
    let is_crate_root = ctx.path.rsplit_once("crates/").is_some_and(|(_, tail)| {
        let segs: Vec<&str> = tail.split('/').collect();
        segs.len() == 3 && segs[1] == "src" && segs[2] == "lib.rs"
    });
    if !is_crate_root {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (attr, arg) in [("forbid", "unsafe_code"), ("warn", "missing_docs")] {
        if !has_inner_attr(ctx, attr, arg) {
            findings.push(RawFinding::new(
                1,
                1,
                format!(
                    "crate root is missing `#![{attr}({arg})]`: every crates/*/src/lib.rs \
                     carries the workspace policy headers (see LINTS.md, D05)"
                ),
            ));
        }
    }
    findings
}

/// Looks for the token sequence `# ! [ <name> ( <arg> ) ]`.
fn has_inner_attr(ctx: &FileCtx, name: &str, arg: &str) -> bool {
    let code = &ctx.code;
    (0..code.len().saturating_sub(7)).any(|i| {
        code[i].text == "#"
            && code[i + 1].text == "!"
            && code[i + 2].text == "["
            && code[i + 3].text == name
            && code[i + 4].text == "("
            && code[i + 5].text == arg
            && code[i + 6].text == ")"
            && code[i + 7].text == "]"
    })
}
