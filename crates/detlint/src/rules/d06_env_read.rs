//! **D06** — environment-dependent reads in result-path crates.
//!
//! `std::env::var` makes an experiment's output a function of the invoking
//! shell, which shard/launch/merge can never reproduce: two workers on
//! different hosts (or the same host with a different profile) silently
//! compute different bytes. Configuration must arrive through explicit CLI
//! flags or spec strings, which are recorded in dataset provenance.
//! `env::args` is fine — the CLI parses it into validated options.

use super::{in_result_path_src, RawFinding};
use crate::lexer::TokKind;
use crate::FileCtx;

pub(super) fn check(ctx: &FileCtx) -> Vec<RawFinding> {
    if !in_result_path_src(ctx) {
        return Vec::new();
    }
    let code = &ctx.code;
    let mut findings = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "env" || ctx.in_test_region(tok.line) {
            continue;
        }
        let is_var_read = code.get(i + 1).is_some_and(|t| t.text == ":")
            && code.get(i + 2).is_some_and(|t| t.text == ":")
            && code.get(i + 3).is_some_and(|t| t.text == "var" || t.text == "var_os");
        if is_var_read {
            let var = &code[i + 3];
            findings.push(RawFinding::new(
                var.line,
                var.col,
                format!(
                    "environment read env::{} in a result-path crate: output would \
                     depend on the invoking shell and break shard/launch/merge \
                     reproducibility; take the value as an explicit CLI flag or \
                     spec parameter instead",
                    var.text
                ),
            ));
        }
    }
    findings
}
