//! **D02** — wall-clock reads (`Instant::now`, `SystemTime`) outside the
//! allowlisted timing modules.
//!
//! Wall-clock values differ every run, so any one that flows into a result
//! breaks byte-identical output. The workspace confines timing to three
//! places where it is *measurement about* a run, never *data in* one: the
//! distributed launcher, the kernel bench harness, and the `TimedRun` path
//! of the experiment driver (whose timings are validated to never influence
//! item results — see `run_selected_timed`). Benches and integration tests
//! time things by nature and are exempt; everything else needs a reasoned
//! pragma.

use super::RawFinding;
use crate::lexer::TokKind;
use crate::{FileCtx, FileKind};

/// Files whose entire purpose is timing measurement. Kept as exact virtual
/// paths so a new timing call anywhere else still surfaces.
const ALLOWLIST: &[&str] = &[
    "crates/bench/src/launch.rs",
    "crates/bench/src/bench_report.rs",
    // Only the `TimedRun` machinery in here reads the clock; the shard
    // wire-format validation keeps those timings out of item results.
    "crates/core/src/experiment.rs",
];

pub(super) fn check(ctx: &FileCtx) -> Vec<RawFinding> {
    if ctx.kind != FileKind::Src || ALLOWLIST.iter().any(|p| ctx.path.ends_with(p)) {
        return Vec::new();
    }
    let code = &ctx.code;
    let mut findings = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident || ctx.in_test_region(tok.line) {
            continue;
        }
        let flagged = match tok.text.as_str() {
            // `Instant` alone is fine (type positions, imports); reading it
            // is what diverges.
            "Instant" => {
                code.get(i + 1).is_some_and(|t| t.text == ":")
                    && code.get(i + 2).is_some_and(|t| t.text == ":")
                    && code.get(i + 3).is_some_and(|t| t.text == "now")
            }
            // Any `SystemTime` use is wall-clock by definition.
            "SystemTime" => true,
            _ => false,
        };
        if flagged {
            findings.push(RawFinding::new(
                tok.line,
                tok.col,
                format!(
                    "wall-clock read ({}) outside the timing allowlist \
                     ({}): clock values differ every run and must never reach a \
                     result; move the measurement into a timing module or add \
                     `// detlint: allow(D02, reason = \"...\")`",
                    if tok.text == "Instant" { "Instant::now" } else { "SystemTime" },
                    ALLOWLIST.join(", ")
                ),
            ));
        }
    }
    findings
}
