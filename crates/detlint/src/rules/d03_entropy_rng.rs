//! **D03** — entropy-seeded randomness anywhere in the workspace.
//!
//! `thread_rng()`, `SeedableRng::from_entropy()`, `OsRng` and the free
//! function `rand::random()` all pull seeds from the operating system, so
//! two runs can never agree. Every RNG in this workspace must be seeded
//! from the experiment's `(seed, stable key)` derivation chain
//! (`StdRng::seed_from_u64`). This rule applies to **all** file kinds —
//! tests and benches included — because a flaky seed in a test hides real
//! nondeterminism behind retries.

use super::RawFinding;
use crate::lexer::TokKind;
use crate::FileCtx;

pub(super) fn check(ctx: &FileCtx) -> Vec<RawFinding> {
    let code = &ctx.code;
    let mut findings = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let flagged = match tok.text.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" => true,
            // The free function `random()` / `rand::random()`. A method call
            // `.random(...)` is a seeded-RNG draw and stays legal.
            "random" => {
                code.get(i + 1).is_some_and(|t| t.text == "(")
                    && (i == 0 || code[i - 1].text != ".")
            }
            _ => false,
        };
        if flagged {
            findings.push(RawFinding::new(
                tok.line,
                tok.col,
                format!(
                    "entropy-seeded RNG '{}': operating-system entropy makes runs \
                     unreproducible; derive every RNG from the experiment seed \
                     (StdRng::seed_from_u64) instead",
                    tok.text
                ),
            ));
        }
    }
    findings
}
