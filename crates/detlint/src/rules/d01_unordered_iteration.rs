//! **D01** — iteration over an unordered container (`HashMap` / `HashSet`)
//! in a result-path crate.
//!
//! Hash iteration order is unspecified and can differ across `std`
//! versions, hosts, and (with hashers that randomize) even runs. Any value
//! that flows from such an iteration into a dataset breaks the
//! byte-identical-output contract. The fix is a `BTreeMap`/sorted `Vec`, a
//! sort before use, or — when the consumption is provably order-independent
//! (a sum of counts, say) — a reasoned `allow` pragma.
//!
//! Detection is lexical, per file: an identifier is *known unordered* when
//! it is declared with an outermost `HashMap`/`HashSet` type (let binding,
//! struct field, or fn parameter) or initialized from `HashMap::…` /
//! `HashSet::…`. Flagged uses are `x.iter()`, `.iter_mut()`, `.keys()`,
//! `.values()`, `.values_mut()`, `.into_iter()`, `.into_keys()`,
//! `.into_values()`, `.drain()` and `for … in [&[mut]] x` on a known
//! identifier (including `self.field`). Lookups (`get`, `contains`,
//! `insert`, `entry`, `remove`, `len`) are order-free and never flagged.

use super::{in_result_path_src, RawFinding};
use crate::lexer::{Tok, TokKind};
use crate::FileCtx;
use std::collections::BTreeSet;

const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];
/// Path segments skipped when looking for the outermost type constructor.
const PATH_PREFIX: &[&str] = &["std", "collections", "alloc"];

pub(super) fn check(ctx: &FileCtx) -> Vec<RawFinding> {
    if !in_result_path_src(ctx) {
        return Vec::new();
    }
    let names = collect_unordered_names(&ctx.code);
    if names.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    flag_method_iteration(ctx, &names, &mut findings);
    flag_for_loops(ctx, &names, &mut findings);
    findings
}

fn text(code: &[Tok], i: usize) -> &str {
    code.get(i).map_or("", |t| t.text.as_str())
}

fn is_ident(code: &[Tok], i: usize) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokKind::Ident)
}

/// `::` is two adjacent `:` tokens; a type annotation's `:` is a single one.
fn is_single_colon(code: &[Tok], i: usize) -> bool {
    text(code, i) == ":" && text(code, i + 1) != ":" && (i == 0 || text(code, i - 1) != ":")
}

/// Names declared (anywhere in the file) with an unordered outermost type.
fn collect_unordered_names(code: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        // `NAME : <type>` — let annotations, struct fields, fn params, and
        // struct-literal field inits (`Foo { paths: HashMap::new() }`) all
        // share this shape.
        if is_ident(code, i) && is_single_colon(code, i + 1) {
            if let Some(head) = outermost_type_head(code, i + 2) {
                if UNORDERED_TYPES.contains(&head) {
                    names.insert(code[i].text.clone());
                }
            }
        }
        // `let [mut] NAME = HashMap::new()` — inferred-type bindings.
        if text(code, i) == "let" {
            let mut j = i + 1;
            if text(code, j) == "mut" {
                j += 1;
            }
            if is_ident(code, j) && text(code, j + 1) == "=" {
                if let Some(head) = outermost_type_head(code, j + 2) {
                    if UNORDERED_TYPES.contains(&head) && text(code, j + 3) == ":" {
                        names.insert(code[j].text.clone());
                    }
                }
            }
        }
    }
    names
}

/// The first meaningful identifier of a type expression, skipping
/// references, `mut`, lifetimes, and `std::collections::`-style prefixes.
/// Returns `None` when the next token is not an identifier at all. A
/// `Vec<HashMap<...>>` therefore resolves to `Vec` — iterating the outer
/// vector is ordered and must not be flagged.
fn outermost_type_head(code: &[Tok], mut i: usize) -> Option<&str> {
    loop {
        match code.get(i) {
            Some(t) if t.text == "&" || t.text == "mut" || t.kind == TokKind::Lifetime => i += 1,
            _ => break,
        }
    }
    while is_ident(code, i)
        && PATH_PREFIX.contains(&text(code, i))
        && text(code, i + 1) == ":"
        && text(code, i + 2) == ":"
    {
        i += 3;
    }
    is_ident(code, i).then(|| text(code, i))
}

/// Flags `X.iter()` / `self.X.keys()` / ... where `X` is known unordered.
fn flag_method_iteration(ctx: &FileCtx, names: &BTreeSet<String>, out: &mut Vec<RawFinding>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if !is_ident(code, i) || !names.contains(&code[i].text) {
            continue;
        }
        if text(code, i + 1) != "." {
            continue;
        }
        let method = &code[i + 2];
        if method.kind != TokKind::Ident
            || !ITER_METHODS.contains(&method.text.as_str())
            || text(code, i + 3) != "("
        {
            continue;
        }
        if ctx.in_test_region(method.line) {
            continue;
        }
        out.push(RawFinding::new(
            method.line,
            method.col,
            format!(
                "iteration over unordered container '{}' via .{}(): hash order is \
                 unspecified and can differ across hosts/runs; use a BTreeMap, sort \
                 before use, or add `// detlint: allow(D01, reason = \"...\")` if the \
                 consumption is order-independent",
                code[i].text, method.text
            ),
        ));
    }
}

/// Flags `for P in [&[mut]] X` / `for P in [&[mut]] self.X` where `X` is
/// known unordered. Method-call iterators (`for v in x.values()`) are the
/// method pattern's to flag.
fn flag_for_loops(ctx: &FileCtx, names: &BTreeSet<String>, out: &mut Vec<RawFinding>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if text(code, i) != "for" {
            continue;
        }
        // Find the pattern's `in` at bracket depth 0.
        let mut depth = 0i32;
        let mut j = i + 1;
        let in_at = loop {
            match code.get(j) {
                None => break None,
                Some(t) if t.text == "(" || t.text == "[" => depth += 1,
                Some(t) if t.text == ")" || t.text == "]" => depth -= 1,
                Some(t) if t.text == "in" && depth == 0 => break Some(j),
                Some(t) if t.text == "{" || t.text == ";" => break None,
                Some(_) => {}
            }
            j += 1;
        };
        let Some(in_at) = in_at else { continue };
        // Collect the iterated expression up to the loop body's `{`.
        let mut expr = Vec::new();
        let mut k = in_at + 1;
        while k < code.len() && text(code, k) != "{" {
            expr.push(k);
            k += 1;
        }
        // Strip leading `&` / `mut`.
        let mut e = 0;
        while e < expr.len() && (text(code, expr[e]) == "&" || text(code, expr[e]) == "mut") {
            e += 1;
        }
        let path = &expr[e..];
        // A pure field/ident path: idents separated by single `.`s.
        let is_path = !path.is_empty()
            && path.iter().enumerate().all(|(n, &idx)| {
                if n % 2 == 0 {
                    is_ident(code, idx)
                } else {
                    text(code, idx) == "."
                }
            })
            && path.len() % 2 == 1;
        if !is_path {
            continue;
        }
        let last = *path.last().unwrap();
        if !names.contains(&code[last].text) || ctx.in_test_region(code[last].line) {
            continue;
        }
        out.push(RawFinding::new(
            code[last].line,
            code[last].col,
            format!(
                "for-loop over unordered container '{}': hash order is unspecified \
                 and can differ across hosts/runs; use a BTreeMap, sort before use, \
                 or add `// detlint: allow(D01, reason = \"...\")` if the loop body \
                 is order-independent",
                code[last].text
            ),
        ));
    }
}
