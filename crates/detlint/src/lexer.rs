//! A small hand-rolled Rust lexer.
//!
//! The rules in this crate pattern-match token sequences, so the lexer only
//! has to be faithful about the things that would otherwise corrupt a match:
//! comments (line, nested block, doc), string literals (plain, raw with any
//! number of `#`, byte, byte-raw), char literals vs. lifetimes, and exact
//! `line:col` positions for every token. It does not classify keywords or
//! parse numbers precisely — rules compare identifier text directly.

/// Token classification. Comments are kept in the stream (the pragma layer
/// reads them); rules work over the comment-free view built by
/// [`crate::FileCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `r#mod`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal, lexed loosely (digits, `_`, `.`, suffix letters).
    Num,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `// ...` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* ... */` comment (nesting handled), including `/** ... */`.
    BlockComment,
    /// Any other single character of punctuation (`::` is two `:` tokens).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text (for comments, includes the delimiters).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not bytes: only advance the column on a
            // UTF-8 leading byte so multi-byte characters count once.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream, comments included. The lexer never
/// fails: unterminated literals or comments simply consume to end of file,
/// which is the most useful behavior for a linter (the parse error itself is
/// rustc's to report).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut toks = Vec::new();
    while let Some(b) = c.peek(0) {
        let (line, col, start) = (c.line, c.col, c.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                while let Some(nb) = c.peek(0) {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                push(&mut toks, TokKind::LineComment, src, start, c.pos, line, col);
            }
            b'/' if c.peek(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(&mut toks, TokKind::BlockComment, src, start, c.pos, line, col);
            }
            b'r' | b'b' if raw_string_hashes(&c).is_some() => {
                let hashes = raw_string_hashes(&c).unwrap();
                // Consume the prefix (`r`, `br`, `rb`), hashes, and quote.
                while c.peek(0) != Some(b'"') {
                    c.bump();
                }
                c.bump();
                let closer: Vec<u8> =
                    std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                'raw: while c.peek(0).is_some() {
                    if (0..closer.len()).all(|k| c.peek(k) == Some(closer[k])) {
                        for _ in 0..closer.len() {
                            c.bump();
                        }
                        break 'raw;
                    }
                    c.bump();
                }
                push(&mut toks, TokKind::Str, src, start, c.pos, line, col);
            }
            b'b' if c.peek(1) == Some(b'\'') => {
                c.bump();
                lex_char(&mut c);
                push(&mut toks, TokKind::Char, src, start, c.pos, line, col);
            }
            b'b' if c.peek(1) == Some(b'"') => {
                c.bump();
                lex_string(&mut c);
                push(&mut toks, TokKind::Str, src, start, c.pos, line, col);
            }
            b'"' => {
                lex_string(&mut c);
                push(&mut toks, TokKind::Str, src, start, c.pos, line, col);
            }
            b'\'' => {
                // Disambiguate lifetime from char literal: `'` + ident-start
                // not immediately closed by `'` is a lifetime.
                let is_lifetime = match (c.peek(1), c.peek(2)) {
                    (Some(n1), n2) if is_ident_start(n1) && n1 != b'\\' => n2 != Some(b'\''),
                    _ => false,
                };
                if is_lifetime {
                    c.bump();
                    while c.peek(0).is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    push(&mut toks, TokKind::Lifetime, src, start, c.pos, line, col);
                } else {
                    lex_char(&mut c);
                    push(&mut toks, TokKind::Char, src, start, c.pos, line, col);
                }
            }
            b if is_ident_start(b) => {
                // Raw identifiers (`r#mod`) reach here via the `r` branch
                // only when not a raw string; handle the `r#` prefix.
                if b == b'r' && c.peek(1) == Some(b'#') && c.peek(2).is_some_and(is_ident_start) {
                    c.bump();
                    c.bump();
                }
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                push(&mut toks, TokKind::Ident, src, start, c.pos, line, col);
            }
            b if b.is_ascii_digit() => {
                while c
                    .peek(0)
                    .is_some_and(|nb| nb.is_ascii_alphanumeric() || nb == b'_' || nb == b'.')
                {
                    // Stop before `..` (range) and before a method call on a
                    // literal (`1.max(2)`).
                    if c.peek(0) == Some(b'.')
                        && (c.peek(1) == Some(b'.') || c.peek(1).is_some_and(is_ident_start))
                    {
                        break;
                    }
                    c.bump();
                }
                push(&mut toks, TokKind::Num, src, start, c.pos, line, col);
            }
            _ => {
                c.bump();
                push(&mut toks, TokKind::Punct, src, start, c.pos, line, col);
            }
        }
    }
    toks
}

/// If the cursor sits on a raw-string opener (`r"`, `r#"`, `br#"`, `rb"`,
/// ...), returns the number of `#`s; otherwise `None`.
fn raw_string_hashes(c: &Cursor<'_>) -> Option<usize> {
    let mut k = 1; // past the leading `r` or `b`
    if c.peek(0) == Some(b'b') || c.peek(0) == Some(b'r') {
        // Allow the two-letter prefixes `br` / `rb`.
        if (c.peek(0) == Some(b'b') && c.peek(1) == Some(b'r'))
            || (c.peek(0) == Some(b'r') && c.peek(1) == Some(b'b'))
        {
            k = 2;
        }
    }
    if c.peek(0) == Some(b'b') && k == 1 {
        return None; // bare `b` prefix is a byte string/char, not raw
    }
    let mut hashes = 0;
    while c.peek(k) == Some(b'#') {
        k += 1;
        hashes += 1;
    }
    (c.peek(k) == Some(b'"')).then_some(hashes)
}

fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
}

fn lex_char(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'\'' => {
                c.bump();
                break;
            }
            b'\n' => break, // never span lines: protects against `'` typos
            _ => {
                c.bump();
            }
        }
    }
}

fn push(
    toks: &mut Vec<Tok>,
    kind: TokKind,
    src: &str,
    start: usize,
    end: usize,
    line: u32,
    col: u32,
) {
    toks.push(Tok { kind, text: src[start..end].to_string(), line, col });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("for x in &map {}");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["for", "x", "in", "&", "map", "{", "}"]);
    }

    #[test]
    fn comments_are_tokens() {
        let toks = lex("a // hello\nb /* nested /* deep */ still */ c");
        let comments: Vec<&str> =
            toks.iter().filter(|t| t.is_comment()).map(|t| t.text.as_str()).collect();
        assert_eq!(comments, ["// hello", "/* nested /* deep */ still */"]);
    }

    #[test]
    fn raw_strings_hide_comment_markers() {
        let toks = lex(r####"let s = r#"// not a comment"#;"####);
        assert!(toks.iter().all(|t| !t.is_comment()));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("&'a str 'x' '\\n'");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokKind::Char, "'x'".to_string())));
        assert!(toks.contains(&(TokKind::Char, "'\\n'".to_string())));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn strings_swallow_escapes() {
        let toks = lex(r#"let s = "quote \" slash // end";"#);
        assert!(toks.iter().all(|t| !t.is_comment()));
    }
}
