//! The inline pragma grammar.
//!
//! A finding is suppressed by a comment pragma that names the rule **and
//! gives a human-readable reason** — an allow without a reason is itself a
//! diagnostic (`P01`), so the annotation debt stays self-documenting:
//!
//! ```text
//! // detlint: allow(D01, reason = "sum of per-pair counts is order-independent")
//! // detlint: allow(D01, D04, reason = "...")   (several rules, one reason)
//! ```
//!
//! A pragma written on its own line applies to the next line that holds
//! code; written at the end of a code line it applies to that line.
//! Fixture files may also carry a `// detlint-fixture: path = <virtual
//! path>` directive, which makes the linter classify the file as if it
//! lived at that workspace path (crate, result-path status, allowlists).

use crate::lexer::Tok;

/// One parsed `allow` pragma: the rules it waives and where it applies.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule ids named by the pragma (`D01`...).
    pub rules: Vec<String>,
    /// The mandatory justification string (non-empty by construction).
    pub reason: String,
    /// The source line the pragma waives findings on.
    pub applies_to_line: u32,
}

/// A malformed pragma, reported as a `P01` finding by the engine.
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// Line of the offending comment.
    pub line: u32,
    /// Column of the offending comment.
    pub col: u32,
    /// What was wrong.
    pub message: String,
}

/// Everything the pragma scan extracts from one file's token stream.
#[derive(Debug, Default)]
pub struct PragmaScan {
    /// Well-formed allows, anchored to the lines they waive.
    pub allows: Vec<Allow>,
    /// Malformed pragmas (missing reason, unknown rule, bad syntax).
    pub errors: Vec<PragmaError>,
    /// Virtual path from a `detlint-fixture:` directive, if present.
    pub fixture_path: Option<String>,
}

const MARKER: &str = "detlint:";
const FIXTURE_MARKER: &str = "detlint-fixture:";

/// Scans the full token stream (comments included) for pragmas.
/// `known_rules` validates the rule ids an `allow` may name.
pub fn scan(toks: &[Tok], known_rules: &[&str]) -> PragmaScan {
    let mut out = PragmaScan::default();
    for (i, tok) in toks.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        let body = comment_body(&tok.text);
        if let Some(rest) = body.strip_prefix(FIXTURE_MARKER) {
            match parse_fixture_path(rest) {
                Ok(path) => out.fixture_path = Some(path),
                Err(message) => {
                    out.errors.push(PragmaError { line: tok.line, col: tok.col, message });
                }
            }
            continue;
        }
        let Some(rest) = body.strip_prefix(MARKER) else { continue };
        match parse_allow(rest, known_rules) {
            Ok((rules, reason)) => {
                let applies_to_line = anchor_line(toks, i);
                out.allows.push(Allow { rules, reason, applies_to_line });
            }
            Err(message) => {
                out.errors.push(PragmaError { line: tok.line, col: tok.col, message });
            }
        }
    }
    out
}

/// Strips the comment delimiters and leading doc-comment sigils.
fn comment_body(text: &str) -> &str {
    let body = if let Some(rest) = text.strip_prefix("//") {
        rest.trim_start_matches(['/', '!'])
    } else {
        text.trim_start_matches("/*").trim_end_matches("*/")
    };
    body.trim()
}

/// The line a pragma at token index `i` waives: the comment's own line when
/// code precedes it there (trailing pragma), otherwise the line of the next
/// code token after it.
fn anchor_line(toks: &[Tok], i: usize) -> u32 {
    let line = toks[i].line;
    let code_before_on_line =
        toks[..i].iter().rev().take_while(|t| t.line == line).any(|t| !t.is_comment());
    if code_before_on_line {
        return line;
    }
    toks[i + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.line)
        // A pragma at end of file anchors to the (nonexistent) next line,
        // so it can never waive anything — harmless.
        .unwrap_or(line + 1)
}

/// Parses `allow(RULE[, RULE...], reason = "...")` after the marker.
fn parse_allow(rest: &str, known_rules: &[&str]) -> Result<(Vec<String>, String), String> {
    const GRAMMAR: &str = "expected `detlint: allow(RULE, reason = \"...\")`";
    let rest = rest.trim();
    let Some(args) = rest.strip_prefix("allow") else {
        return Err(format!("malformed detlint pragma: {GRAMMAR}"));
    };
    let args = args.trim();
    let Some(args) = args.strip_prefix('(').and_then(|a| a.strip_suffix(')')) else {
        return Err(format!("malformed detlint pragma: {GRAMMAR}"));
    };
    // Split at the `reason =` key; everything before is the rule list.
    let Some(reason_at) = args.find("reason") else {
        return Err("detlint pragma needs a reason: allow(RULE, reason = \"...\")".to_string());
    };
    let (rule_part, reason_part) = args.split_at(reason_at);
    let reason_part = reason_part["reason".len()..].trim_start();
    let Some(reason_expr) = reason_part.strip_prefix('=') else {
        return Err(format!("malformed detlint pragma: {GRAMMAR}"));
    };
    let reason_expr = reason_expr.trim();
    let Some(reason) =
        reason_expr.strip_prefix('"').and_then(|r| r.strip_suffix('"')).map(str::trim)
    else {
        return Err(format!("malformed detlint pragma: reason must be a quoted string; {GRAMMAR}"));
    };
    if reason.is_empty() {
        return Err("detlint pragma reason must not be empty: say *why* the \
                    finding is acceptable"
            .to_string());
    }
    let rules: Vec<String> =
        rule_part.split(',').map(str::trim).filter(|r| !r.is_empty()).map(str::to_string).collect();
    if rules.is_empty() {
        return Err(format!("detlint pragma names no rule: {GRAMMAR}"));
    }
    for rule in &rules {
        if !known_rules.contains(&rule.as_str()) {
            return Err(format!(
                "detlint pragma allows unknown rule '{rule}' (known rules: {})",
                known_rules.join(", ")
            ));
        }
    }
    Ok((rules, reason.to_string()))
}

/// Parses `path = <workspace-relative path>` after the fixture marker.
fn parse_fixture_path(rest: &str) -> Result<String, String> {
    let rest = rest.trim();
    let Some(path) = rest.strip_prefix("path") else {
        return Err(
            "malformed detlint-fixture directive: expected `path = <virtual path>`".to_string()
        );
    };
    let Some(path) = path.trim_start().strip_prefix('=') else {
        return Err(
            "malformed detlint-fixture directive: expected `path = <virtual path>`".to_string()
        );
    };
    let path = path.trim().trim_matches('"').trim();
    if path.is_empty() {
        return Err("detlint-fixture directive has an empty path".to_string());
    }
    Ok(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const RULES: &[&str] = &["D01", "D02"];

    #[test]
    fn trailing_pragma_anchors_to_its_own_line() {
        let toks = lex("let x = 1; // detlint: allow(D01, reason = \"why\")\nlet y = 2;");
        let scan = scan(&toks, RULES);
        assert!(scan.errors.is_empty());
        assert_eq!(scan.allows.len(), 1);
        assert_eq!(scan.allows[0].applies_to_line, 1);
        assert_eq!(scan.allows[0].rules, ["D01"]);
    }

    #[test]
    fn standalone_pragma_anchors_to_next_code_line() {
        let toks = lex("// detlint: allow(D02, reason = \"why\")\n\n// other comment\nf();");
        let scan = scan(&toks, RULES);
        assert_eq!(scan.allows[0].applies_to_line, 4);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let toks = lex("// detlint: allow(D01)\nf();");
        let scan = scan(&toks, RULES);
        assert!(scan.allows.is_empty());
        assert_eq!(scan.errors.len(), 1);
        assert!(scan.errors[0].message.contains("reason"), "{}", scan.errors[0].message);
    }

    #[test]
    fn empty_reason_is_an_error() {
        let toks = lex("// detlint: allow(D01, reason = \"\")\nf();");
        let scan = scan(&toks, RULES);
        assert_eq!(scan.errors.len(), 1);
        assert!(scan.errors[0].message.contains("empty"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let toks = lex("// detlint: allow(D99, reason = \"why\")\nf();");
        let scan = scan(&toks, RULES);
        assert_eq!(scan.errors.len(), 1);
        assert!(scan.errors[0].message.contains("unknown rule 'D99'"));
    }

    #[test]
    fn multiple_rules_one_reason() {
        let toks = lex("// detlint: allow(D01, D02, reason = \"shared why\")\nf();");
        let scan = scan(&toks, RULES);
        assert_eq!(scan.allows[0].rules, ["D01", "D02"]);
    }

    #[test]
    fn fixture_directive() {
        let toks = lex("// detlint-fixture: path = crates/routing/src/x.rs\nf();");
        let scan = scan(&toks, RULES);
        assert_eq!(scan.fixture_path.as_deref(), Some("crates/routing/src/x.rs"));
    }
}
