//! The rule registry.
//!
//! Each rule is a pure function from a [`FileCtx`] (lexed file + workspace
//! classification) to raw findings. Rules are registered in [`registry`];
//! adding a rule means adding a module here, an entry in the registry, a
//! violating + compliant fixture pair under `testdata/`, and a row in
//! LINTS.md — the fixture integration test enforces the first three.

use crate::{FileCtx, FileKind};

mod d01_unordered_iteration;
mod d02_wall_clock;
mod d03_entropy_rng;
mod d04_par_float_reduction;
mod d05_crate_root_policy;
mod d06_env_read;

/// A finding before file attribution: position + message only.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl RawFinding {
    pub(crate) fn new(line: u32, col: u32, message: impl Into<String>) -> Self {
        RawFinding { line, col, message: message.into() }
    }
}

/// One registered rule.
pub struct Rule {
    /// Stable id (`D01`...), the name pragmas and diagnostics use.
    pub id: &'static str,
    /// One-line summary for `--list-rules` and the JSON report.
    pub summary: &'static str,
    /// The checker. Receives every scanned file; rules that only apply to a
    /// subset of the tree (result-path crates, `src/lib.rs`, ...) return no
    /// findings elsewhere.
    pub check: fn(&FileCtx) -> Vec<RawFinding>,
}

/// Every rule, in diagnostic order. The determinism contract each rule
/// protects is spelled out in LINTS.md.
pub fn registry() -> &'static [Rule] {
    &[
        Rule {
            id: "D01",
            summary: "unordered-container iteration (HashMap/HashSet) in a result-path crate",
            check: d01_unordered_iteration::check,
        },
        Rule {
            id: "D02",
            summary: "wall-clock read (Instant::now / SystemTime) outside the timing allowlist",
            check: d02_wall_clock::check,
        },
        Rule {
            id: "D03",
            summary: "entropy-seeded RNG (thread_rng / from_entropy / OsRng / random())",
            check: d03_entropy_rng::check,
        },
        Rule {
            id: "D04",
            summary: "float reduction inside a par_iter chain (accumulation order not fixed)",
            check: d04_par_float_reduction::check,
        },
        Rule {
            id: "D05",
            summary: "crate root missing #![forbid(unsafe_code)] / #![warn(missing_docs)]",
            check: d05_crate_root_policy::check,
        },
        Rule {
            id: "D06",
            summary: "environment-dependent read (std::env::var) in a result-path crate",
            check: d06_env_read::check,
        },
    ]
}

/// The rule ids, for pragma validation.
pub fn rule_ids() -> Vec<&'static str> {
    registry().iter().map(|r| r.id).collect()
}

/// Crates whose output feeds rendered experiment datasets: nondeterminism
/// here changes shipped bytes, so D01/D06 apply.
pub const RESULT_PATH_CRATES: &[&str] = &["topology", "routing", "flow", "sim", "core", "traffic"];

/// Whether `ctx` is a `src/` file of a result-path crate (tests, benches
/// and examples assert on results rather than producing them).
pub(crate) fn in_result_path_src(ctx: &FileCtx) -> bool {
    ctx.kind == FileKind::Src
        && ctx.crate_name.as_deref().is_some_and(|c| RESULT_PATH_CRATES.contains(&c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let ids = rule_ids();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "rule ids must be unique and registered in order");
    }
}
