//! `detlint` — the standalone determinism-linter binary.
//!
//! ```text
//! detlint [--json] [--list-rules] [paths...]
//! ```
//!
//! Walks the given files/directories (default: `crates/`), lints every
//! `.rs` file, and prints `file:line:col: RULE: message` diagnostics (or
//! one JSON object with `--json`). Exit code 0 = clean, 1 = findings,
//! 2 = usage or I/O error. See LINTS.md for the rules and the pragma
//! grammar.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: detlint [--json] [--list-rules] [paths...]

Statically enforces the workspace's byte-identical-output contract.
Walks the given files/directories (default: crates/) and lints every .rs
file; see LINTS.md for the rule table and the pragma grammar.

options:
  --json        print one machine-readable JSON object instead of text
  --list-rules  print the rule registry and exit";

fn main() -> ExitCode {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for rule in detlint::rules::registry() {
                    println!("{}\t{}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("detlint: unknown option '{flag}'\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }
    match detlint::lint_paths(&paths) {
        Ok(report) => {
            if json {
                print!("{}", detlint::render_json(&report));
            } else {
                print!("{}", detlint::render_text(&report));
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("detlint: {e}");
            ExitCode::from(2)
        }
    }
}
