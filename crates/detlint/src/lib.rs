//! # detlint — the workspace determinism linter
//!
//! Every result this workspace ships rests on one contract: **runs are
//! byte-identical** regardless of sharding, parallelism, or host. The
//! dynamic enforcement (shard-determinism proptests, golden TSVs) only
//! catches a violation after it has produced wrong bytes; this crate
//! enforces the contract *statically*, before code merges, the way
//! `#![forbid(unsafe_code)]` enforces memory-safety policy.
//!
//! It is a dependency-free static-analysis pass: a small hand-rolled Rust
//! [`lexer`], a per-file rule engine with a [`rules::registry`], exact
//! `file:line:col` diagnostics, machine-readable `--json` output, and an
//! inline pragma grammar (see [`pragma`]) that **requires a reason string**
//! for every waiver. The rules and their rationale are documented in
//! LINTS.md at the repository root.
//!
//! Run it standalone (`cargo run -p detlint -- crates/`) or through the
//! bench CLI (`figures lint [--json] [paths...]`). Exit code 0 means clean,
//! 1 means findings, 2 means a usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

pub mod lexer;
pub mod pragma;
pub mod rules;

use lexer::Tok;

/// How a file participates in the build, inferred from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library or binary source (`src/`): the result path; all rules apply.
    Src,
    /// Integration test (`tests/`): asserts on results, relaxed rules.
    Test,
    /// Criterion bench (`benches/`): timing is its purpose.
    Bench,
    /// Example (`examples/`): illustrative, not result-bearing.
    Example,
    /// Anything else (`build.rs`, loose files).
    Other,
}

/// One scanned file: its classification plus lexed token views.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators. Fixtures may override
    /// this via a `// detlint-fixture: path = ...` directive, so the rules
    /// see the *virtual* location.
    pub path: String,
    /// The `<name>` in `crates/<name>/...`, when the file lives there.
    pub crate_name: Option<String>,
    /// Path-derived role of the file.
    pub kind: FileKind,
    /// Comment-free token stream (what rules pattern-match over).
    pub code: Vec<Tok>,
    /// Line ranges (inclusive) covered by `#[cfg(test)] mod` blocks.
    pub test_regions: Vec<(u32, u32)>,
}

impl FileCtx {
    /// Whether `line` falls inside a `#[cfg(test)]` module. Rules that
    /// protect shipped bytes (D01/D02/D04/D06) skip those regions — unit
    /// tests may iterate maps to assert set-wise properties.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// One diagnostic: where, which rule, and why.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative (virtual) path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`D01`..., or `P01` for a malformed pragma).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

/// Result of linting a set of paths.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Findings waived by a well-formed `allow(..., reason = "...")`.
    pub suppressed: usize,
}

impl Report {
    /// Whether the tree is clean (no findings at all).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

fn classify(path: &str) -> (Option<String>, FileKind) {
    let crate_name =
        path.split_once("crates/").and_then(|(_, rest)| rest.split('/').next()).map(str::to_string);
    let kind = if path.contains("/tests/") {
        FileKind::Test
    } else if path.contains("/benches/") {
        FileKind::Bench
    } else if path.contains("/examples/") {
        FileKind::Example
    } else if path.contains("/src/") {
        FileKind::Src
    } else {
        FileKind::Other
    };
    (crate_name, kind)
}

/// Finds the inclusive line ranges of `#[cfg(test)] mod ... { ... }` blocks.
fn test_regions(code: &[Tok]) -> Vec<(u32, u32)> {
    let text = |i: usize| code.get(i).map(|t| t.text.as_str());
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let is_cfg_test = text(i) == Some("#")
            && text(i + 1) == Some("[")
            && text(i + 2) == Some("cfg")
            && text(i + 3) == Some("(")
            && text(i + 4) == Some("test")
            && text(i + 5) == Some(")")
            && text(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes between the cfg and the item.
        while text(j) == Some("#") && text(j + 1) == Some("[") {
            let mut depth = 0i32;
            j += 1;
            while j < code.len() {
                match text(j) {
                    Some("[") => depth += 1,
                    Some("]") => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if text(j) == Some("pub") {
            j += 1;
            if text(j) == Some("(") {
                while j < code.len() && text(j) != Some(")") {
                    j += 1;
                }
                j += 1;
            }
        }
        if text(j) == Some("mod") {
            j += 2; // mod + name
            if text(j) == Some("{") {
                let start_line = code[i].line;
                let mut depth = 0i32;
                while j < code.len() {
                    match text(j) {
                        Some("{") => depth += 1,
                        Some("}") => {
                            depth -= 1;
                            if depth == 0 {
                                regions.push((start_line, code[j].line));
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        i = j.max(i + 1);
    }
    regions
}

/// Lints one file's source under a virtual path. Returns the findings plus
/// the count of pragma-suppressed ones. This is the engine `lint_paths`
/// drives and the fixture tests call directly.
pub fn lint_source(virtual_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let toks = lexer::lex(src);
    let ids = rules::rule_ids();
    let scan = pragma::scan(&toks, &ids);
    let path = scan
        .fixture_path
        .clone()
        .unwrap_or_else(|| virtual_path.replace('\\', "/"))
        .trim_start_matches("./")
        .to_string();
    let (crate_name, kind) = classify(&path);
    let code: Vec<Tok> = toks.iter().filter(|t| !t.is_comment()).cloned().collect();
    let regions = test_regions(&code);
    let ctx = FileCtx { path: path.clone(), crate_name, kind, code, test_regions: regions };

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for rule in rules::registry() {
        for raw in (rule.check)(&ctx) {
            let waived = scan
                .allows
                .iter()
                .any(|a| a.applies_to_line == raw.line && a.rules.iter().any(|r| r == rule.id));
            if waived {
                suppressed += 1;
            } else {
                findings.push(Finding {
                    file: path.clone(),
                    line: raw.line,
                    col: raw.col,
                    rule: rule.id.to_string(),
                    message: raw.message,
                });
            }
        }
    }
    for err in &scan.errors {
        findings.push(Finding {
            file: path.clone(),
            line: err.line,
            col: err.col,
            rule: "P01".to_string(),
            message: err.message.clone(),
        });
    }
    findings
        .sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    (findings, suppressed)
}

/// Directory names the walker never descends into: build output, run
/// output, VCS state, and fixture corpora (fixtures violate on purpose —
/// lint one explicitly by passing its file path).
const SKIP_DIRS: &[&str] = &["target", "testdata", ".git", "figures-runs"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory '{}': {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    // Deterministic scan order regardless of filesystem enumeration order.
    entries.sort();
    for entry in entries {
        let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if entry.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&entry, out)?;
        } else if name.ends_with(".rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `paths` (files are taken as-is, directories
/// are walked recursively, skipping `target/`, `testdata/`, `.git/` and
/// `figures-runs/`). Paths are scanned in sorted order so the report is
/// deterministic. I/O problems are hard errors, not findings.
pub fn lint_paths(paths: &[PathBuf]) -> Result<Report, String> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            walk(path, &mut files)?;
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(format!("no such file or directory: '{}'", path.display()));
        }
    }
    let mut report = Report::default();
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read '{}': {e}", file.display()))?;
        let virtual_path = file.to_string_lossy().replace('\\', "/");
        let (findings, suppressed) = lint_source(&virtual_path, &src);
        report.findings.extend(findings);
        report.suppressed += suppressed;
        report.files += 1;
    }
    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule.as_str(),
        ))
    });
    Ok(report)
}

/// Renders the human-readable diagnostic listing plus a summary line.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!("{}:{}:{}: {}: {}\n", f.file, f.line, f.col, f.rule, f.message));
    }
    out.push_str(&format!(
        "detlint: {} finding(s) in {} file(s), {} suppressed by pragma\n",
        report.findings.len(),
        report.files,
        report.suppressed
    ));
    out
}

/// Renders the machine-readable JSON report (one object, stable key order).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"tool\":\"detlint\",\"rules\":[");
    for (i, rule) in rules::registry().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"summary\":{}}}",
            json_str(rule.id),
            json_str(rule.summary)
        ));
    }
    out.push_str(&format!(
        "],\"files\":{},\"suppressed\":{},\"findings\":[",
        report.files, report.suppressed
    ));
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.rule),
            json_str(&f.message)
        ));
    }
    out.push_str("]}\n");
    out
}

/// Minimal JSON string encoder (the only JSON this crate emits).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let (c, k) = classify("crates/routing/src/yen.rs");
        assert_eq!(c.as_deref(), Some("routing"));
        assert_eq!(k, FileKind::Src);
        let (c, k) = classify("crates/core/tests/shard_determinism.rs");
        assert_eq!(c.as_deref(), Some("core"));
        assert_eq!(k, FileKind::Test);
        let (c, k) = classify("compat/rand/src/lib.rs");
        assert_eq!(c, None);
        assert_eq!(k, FileKind::Src);
    }

    #[test]
    fn test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let code: Vec<Tok> = lexer::lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        assert_eq!(test_regions(&code), vec![(2, 5)]);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn suppression_counts() {
        let src = "// detlint-fixture: path = crates/sim/src/x.rs\n\
                   fn f(m: &std::collections::HashMap<u32, u32>) -> u32 {\n\
                   m.values().sum() // detlint: allow(D01, reason = \"order-independent sum\")\n\
                   }\n";
        let (findings, suppressed) = lint_source("whatever.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }
}
