//! Property tests for the traffic-spec grammar and the streaming contract:
//! canonical spec strings round-trip through parse/Display unchanged across
//! every generator × transform chain, a lazy [`FlowStream`] agrees
//! flow-for-flow with its collected [`TrafficMatrix`], builds are
//! deterministic per seed with distinct streams across seeds, and an
//! all-to-all workload past a million flows is consumed without ever
//! materializing the flow set.

use jellyfish_traffic::{Flow, ServerMap, TrafficSpec};
use proptest::prelude::*;

/// A canonical spec string for generator index `g`, parameterized by the
/// sampled values (only the ones the generator takes are used). Canonical
/// means exactly what `Display` prints, so string equality is the
/// round-trip check.
#[allow(clippy::too_many_arguments)]
fn spec_string(
    g: usize,
    k: usize,
    fraction: f64,
    s: f64,
    fanin: usize,
    scale: f64,
    epochs: usize,
    with_transforms: bool,
) -> String {
    let mut spec = match g {
        0 => "permutation".to_string(),
        1 => "all2all".to_string(),
        2 => format!("stride:k={k}"),
        3 => format!("hotspot:fraction={fraction}"),
        4 => format!("zipf:s={s}"),
        5 => format!("zipf:s={s},hot_racks={}", k.max(1)),
        6 => format!("incast:fanin={fanin},targets=2"),
        7 => format!("outcast:fanout={fanin},sources=2"),
        _ => unreachable!("generator index out of range"),
    };
    if with_transforms {
        spec.push_str(&format!("+scale_demand={scale}"));
        if epochs > 1 {
            spec.push_str(&format!("+epochs={epochs}"));
        }
    }
    spec
}

fn servers() -> ServerMap {
    // 6 racks x 4 servers = 24 servers: enough for every sampled generator
    // (incast fanin stays well below n-1, zipf has racks to skew across).
    ServerMap::uniform(6, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parse → Display returns the canonical string byte-for-byte, for every
    /// generator crossed with transform chains, and the re-parsed spec
    /// produces the identical flow sequence.
    #[test]
    fn canonical_specs_roundtrip_through_parse_and_display(
        g in 0usize..8,
        k in 1usize..5,
        fraction in 0.05f64..0.95,
        s in 0.3f64..2.5,
        fanin in 1usize..4,
        scale in 0.25f64..3.0,
        epochs in 1usize..4,
        with_transforms in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let text = spec_string(g, k, fraction, s, fanin, scale, epochs, with_transforms);
        let spec: TrafficSpec = text.parse().expect("canonical spec parses");
        prop_assert_eq!(spec.to_string(), text.clone(), "Display drifted from the input");
        let reparsed: TrafficSpec = spec.to_string().parse().expect("Display output parses");
        prop_assert_eq!(reparsed.to_string(), text, "second round-trip drifted");
        let map = servers();
        let a: Vec<Flow> = spec.stream(&map, seed).expect("spec builds").collect();
        let b: Vec<Flow> = reparsed.stream(&map, seed).expect("reparsed spec builds").collect();
        prop_assert_eq!(a, b, "re-parsed spec generates different flows");
    }

    /// A lazy stream and its collected matrix agree exactly: same flows in
    /// the same order, same advertised length, same switch-level aggregation.
    #[test]
    fn stream_agrees_with_collected_matrix(
        g in 0usize..8,
        k in 1usize..5,
        fraction in 0.05f64..0.95,
        s in 0.3f64..2.5,
        fanin in 1usize..4,
        scale in 0.25f64..3.0,
        epochs in 1usize..4,
        with_transforms in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let text = spec_string(g, k, fraction, s, fanin, scale, epochs, with_transforms);
        let spec: TrafficSpec = text.parse().expect("canonical spec parses");
        let map = servers();
        let stream = spec.stream(&map, seed).expect("spec builds");
        let advertised = stream.exact_len();
        let stream_demands = spec.stream(&map, seed).expect("spec builds").switch_demands(&map);
        let tm = spec.matrix(&map, seed).expect("spec builds");
        let streamed: Vec<Flow> = stream.collect();
        prop_assert_eq!(&streamed, tm.flows(), "{}: stream != collected matrix", text);
        if let Some(n) = advertised {
            prop_assert_eq!(n, streamed.len(), "{}: exact_len lied", text);
        }
        prop_assert_eq!(
            stream_demands,
            tm.switch_demands(&map),
            "{}: streamed aggregation differs",
            text
        );
    }

    /// The same `(spec, servers, seed)` always generates the identical flow
    /// sequence, and the seeded generators spread: different seeds give a
    /// different permutation.
    #[test]
    fn builds_are_deterministic_and_seeds_spread(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        prop_assume!(seed_a != seed_b);
        let map = servers();
        let spec: TrafficSpec = "permutation".parse().unwrap();
        let once: Vec<Flow> = spec.stream(&map, seed_a).unwrap().collect();
        let again: Vec<Flow> = spec.stream(&map, seed_a).unwrap().collect();
        prop_assert_eq!(&once, &again, "same seed must reproduce the stream");
        let other: Vec<Flow> = spec.stream(&map, seed_b).unwrap().collect();
        prop_assert!(once != other, "seeds {seed_a} and {seed_b} gave the same permutation");
    }
}

/// The ISSUE's streaming acceptance criterion: an all-to-all workload on
/// 1024 servers — 1024 x 1023 = 1,047,552 flows — is generated and consumed
/// lazily, holding one flow at a time, never a `Vec` of the flow set. The
/// aggregates confirm every flow was visited.
#[test]
fn million_flow_all_to_all_streams_without_materializing() {
    let map = ServerMap::uniform(64, 16); // 1024 servers
    let spec: TrafficSpec = "all2all".parse().unwrap();
    let stream = spec.stream(&map, 0).unwrap();
    let expected = 1024 * 1023;
    assert_eq!(stream.exact_len(), Some(expected), "all-to-all knows its size up front");
    let mut count = 0usize;
    let mut total_demand = 0.0f64;
    for flow in stream {
        count += 1;
        total_demand += flow.demand;
        debug_assert!(flow.src != flow.dst);
    }
    assert_eq!(count, expected);
    // Per-flow demand is 1/(n-1), so the total egress demand is n.
    assert!((total_demand - 1024.0).abs() < 1e-6, "total demand {total_demand} != 1024");
}
