//! Lazy flow streams: workloads as iterators.
//!
//! A [`FlowStream`] yields [`Flow`]s one at a time, so workloads whose flow
//! count is quadratic in the server count (all-to-all at a million servers)
//! never materialize a flow `Vec`: consumers that only need aggregates
//! ([`FlowStream::switch_demands`]) run in memory bounded by the aggregation
//! state, not the flow count. Collecting a stream back into the eager
//! [`TrafficMatrix`] representation ([`FlowStream::collect_matrix`]) is the
//! compat path for consumers that genuinely need every flow resident.
//!
//! Streams are deterministic: a stream is a pure function of the spec that
//! built it plus its seed, and iterating it twice (by rebuilding) yields the
//! identical flow sequence in the identical order — which is what keeps the
//! float accumulation order in [`FlowStream::switch_demands`] byte-stable
//! across shards (see LINTS.md, rule D01).

use crate::{aggregate_switch_demands, Flow, ServerMap, TrafficMatrix};
use jellyfish_topology::NodeId;
use std::fmt;

/// A lazy, epoch-aware iterator over the flows of one workload instance.
///
/// Created by the generators in [`crate::spec`]; also obtainable from an
/// eager matrix via [`TrafficMatrix::stream`]. The stream knows its exact
/// flow count whenever the generator can state it without enumerating
/// ([`FlowStream::exact_len`]).
pub struct FlowStream {
    inner: Box<dyn Iterator<Item = Flow> + Send>,
    num_servers: usize,
    exact_len: Option<usize>,
    name: String,
}

impl fmt::Debug for FlowStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlowStream")
            .field("name", &self.name)
            .field("num_servers", &self.num_servers)
            .field("exact_len", &self.exact_len)
            .finish_non_exhaustive()
    }
}

impl FlowStream {
    /// Wraps an iterator as a stream. `exact_len` is the exact number of
    /// flows the iterator will yield, when the producer knows it.
    pub fn new(
        name: impl Into<String>,
        num_servers: usize,
        exact_len: Option<usize>,
        inner: impl Iterator<Item = Flow> + Send + 'static,
    ) -> Self {
        FlowStream { inner: Box::new(inner), num_servers, exact_len, name: name.into() }
    }

    /// A stream over an already-materialized flow list (the compat
    /// direction; the flows are moved, not copied).
    pub fn from_flows(name: impl Into<String>, num_servers: usize, flows: Vec<Flow>) -> Self {
        let len = flows.len();
        FlowStream::new(name, num_servers, Some(len), flows.into_iter())
    }

    /// Concatenates `parts` into one stream (epoch phases, mix components).
    /// The exact length is known iff every part's is.
    pub fn concat(name: impl Into<String>, num_servers: usize, parts: Vec<FlowStream>) -> Self {
        let exact_len = parts.iter().try_fold(0usize, |acc, p| p.exact_len().map(|l| acc + l));
        FlowStream::new(name, num_servers, exact_len, parts.into_iter().flatten())
    }

    /// Number of servers the flow endpoints index into.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Exact number of flows this stream will yield, if known up front.
    pub fn exact_len(&self) -> Option<usize> {
        self.exact_len
    }

    /// Human-readable workload name (carried into the collected matrix).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scales every demand by `factor` (epoch weighting, `+scale_demand=`).
    pub fn scaled(self, factor: f64) -> FlowStream {
        let FlowStream { inner, num_servers, exact_len, name } = self;
        FlowStream {
            inner: Box::new(inner.map(move |f| Flow { demand: f.demand * factor, ..f })),
            num_servers,
            exact_len,
            name,
        }
    }

    /// Drains the stream into an eager [`TrafficMatrix`] (the thin collected
    /// compat wrapper). Only use this when a consumer needs every flow
    /// resident; aggregating consumers should stay on the stream.
    pub fn collect_matrix(self) -> TrafficMatrix {
        let FlowStream { inner, num_servers, name, .. } = self;
        TrafficMatrix::from_flows(inner.collect(), num_servers, name)
    }

    /// Aggregates the stream to switch-level demands without materializing
    /// the flows: peak memory is one `BTreeMap` entry per (src switch, dst
    /// switch) pair with traffic, regardless of the flow count. Intra-switch
    /// flows are excluded, exactly as [`TrafficMatrix::switch_demands`] does.
    pub fn switch_demands(self, servers: &ServerMap) -> Vec<(NodeId, NodeId, f64)> {
        aggregate_switch_demands(self.inner, servers)
    }
}

impl Iterator for FlowStream {
    type Item = Flow;

    fn next(&mut self) -> Option<Flow> {
        let next = self.inner.next();
        if next.is_some() {
            if let Some(len) = self.exact_len.as_mut() {
                *len = len.saturating_sub(1);
            }
        }
        next
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.exact_len {
            Some(len) => (len, Some(len)),
            None => self.inner.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(n: usize) -> Vec<Flow> {
        (0..n).map(|s| Flow { src: s, dst: (s + 1) % n, demand: 1.0 }).collect()
    }

    #[test]
    fn from_flows_round_trips_through_collect() {
        let fs = FlowStream::from_flows("ring", 4, flows(4));
        assert_eq!(fs.exact_len(), Some(4));
        assert_eq!(fs.num_servers(), 4);
        let tm = fs.collect_matrix();
        assert_eq!(tm.flows(), flows(4).as_slice());
        assert_eq!(tm.name(), "ring");
    }

    #[test]
    fn scaled_multiplies_demands_and_keeps_len() {
        let fs = FlowStream::from_flows("ring", 4, flows(4)).scaled(0.25);
        assert_eq!(fs.exact_len(), Some(4));
        for f in fs {
            assert!((f.demand - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn concat_chains_parts_in_order() {
        let a = FlowStream::from_flows("a", 4, flows(2));
        let b = FlowStream::from_flows("b", 4, flows(3));
        let c = FlowStream::concat("ab", 4, vec![a, b]);
        assert_eq!(c.exact_len(), Some(5));
        let got: Vec<Flow> = c.collect();
        let mut want = flows(2);
        want.extend(flows(3));
        assert_eq!(got, want);
    }

    #[test]
    fn size_hint_tracks_consumption() {
        let mut fs = FlowStream::from_flows("ring", 4, flows(4));
        assert_eq!(fs.size_hint(), (4, Some(4)));
        fs.next();
        assert_eq!(fs.size_hint(), (3, Some(3)));
    }
}
