//! `TrafficSpec`: round-trippable workload spec strings resolved through a
//! registry of [`TrafficGenerator`]s — the traffic mirror of the topology
//! crate's `TopoSpec` (see TRAFFIC.md for the user-facing grammar).
//!
//! A spec names a generator, an ordered parameter list, and a chain of
//! workload transforms:
//!
//! ```text
//! zipf:s=1.2,hot_racks=4+scale_demand=0.5+epochs=4
//! ```
//!
//! `Display` and `FromStr` are exact inverses. Generators build lazy
//! [`FlowStream`]s; the legacy eager patterns (`permutation`, `all2all`,
//! `stride`, `hotspot`) reproduce the historical `TrafficMatrix`
//! constructors flow-for-flow at the same seed, so porting a call site to a
//! spec is byte-invisible. Every generator derives its randomness only from
//! `(params, seed, epoch)` — never from global state — which keeps spec
//! builds deterministic across shards and hosts.

use crate::stream::FlowStream;
use crate::{Flow, ServerMap, TrafficMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use std::str::FromStr;

/// Errors produced while parsing, validating or building a traffic spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficSpecError {
    /// The spec string does not follow the grammar.
    Syntax(String),
    /// The generator name is not registered.
    UnknownGenerator(String),
    /// A `+transform` segment names no known workload transform.
    UnknownTransform(String),
    /// A parameter is missing, duplicated, unknown or out of range.
    Param(String),
    /// The generator could not build a stream for this server population.
    Build(String),
}

impl fmt::Display for TrafficSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficSpecError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            TrafficSpecError::UnknownGenerator(name) => {
                let names: Vec<&str> = generators().iter().map(|g| g.name()).collect();
                write!(
                    f,
                    "unknown traffic generator '{name}': registered generators are {}",
                    names.join(", ")
                )
            }
            TrafficSpecError::UnknownTransform(name) => {
                write!(
                    f,
                    "unknown workload transform '{name}': known transforms are {}",
                    transform_grammar()
                )
            }
            TrafficSpecError::Param(msg) => write!(f, "parameter error: {msg}"),
            TrafficSpecError::Build(msg) => write!(f, "build error: {msg}"),
        }
    }
}

impl std::error::Error for TrafficSpecError {}

/// Ordered `key=value` parameters of a spec. Order is preserved so
/// `Display` round-trips the exact string the user wrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    pairs: Vec<(String, String)>,
}

impl Params {
    /// Creates an empty parameter list.
    pub fn new() -> Self {
        Params::default()
    }

    /// The `(key, value)` pairs in spec order.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Appends a `key=value` pair.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.pairs.push((key.into(), value.into()));
    }

    /// Looks a key up (first occurrence).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Rejects duplicated keys and keys outside `known`.
    pub fn check_keys(&self, generator: &str, known: &[&str]) -> Result<(), TrafficSpecError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !known.contains(&k.as_str()) {
                return Err(TrafficSpecError::Param(format!(
                    "'{generator}' does not take '{k}': known keys are {}",
                    if known.is_empty() { "(none)".to_string() } else { known.join(", ") }
                )));
            }
            if self.pairs[..i].iter().any(|(prev, _)| prev == k) {
                return Err(TrafficSpecError::Param(format!("duplicate key '{k}'")));
            }
        }
        Ok(())
    }

    /// Parses an optional `usize` parameter.
    pub fn usize_opt(&self, key: &str) -> Result<Option<usize>, TrafficSpecError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse::<usize>().map(Some).map_err(|_| {
                TrafficSpecError::Param(format!("'{key}={raw}' is not an unsigned integer"))
            }),
        }
    }

    /// Parses a required `usize` parameter.
    pub fn usize(&self, key: &str) -> Result<usize, TrafficSpecError> {
        self.usize_opt(key)?
            .ok_or_else(|| TrafficSpecError::Param(format!("missing required key '{key}'")))
    }

    /// Parses an optional finite `f64` parameter.
    pub fn f64_opt(&self, key: &str) -> Result<Option<f64>, TrafficSpecError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => match raw.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(Some(v)),
                _ => Err(TrafficSpecError::Param(format!("'{key}={raw}' is not a finite number"))),
            },
        }
    }

    /// Parses a required finite `f64` parameter.
    pub fn f64(&self, key: &str) -> Result<f64, TrafficSpecError> {
        self.f64_opt(key)?
            .ok_or_else(|| TrafficSpecError::Param(format!("missing required key '{key}'")))
    }
}

/// Folds a value into a seed (the same multiplier the topology spec layer
/// uses for its per-transform seed derivation).
pub(crate) fn mix64(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// SplitMix64 finalizer: a stateless position-addressable random stream, so
/// lazy generators can draw the i-th flow's randomness without generating
/// the first i−1 flows.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` addressed by `(seed, position)`.
fn unit_f64(seed: u64, position: u64) -> f64 {
    (splitmix64(mix64(seed, position)) >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform draw in `[0, bound)` addressed by `(seed, position)`.
fn bounded_u64(seed: u64, position: u64, bound: u64) -> u64 {
    splitmix64(mix64(seed, position)) % bound.max(1)
}

/// The epoch a stream is being built for: `index` in `0..count`. Workloads
/// with one phase get [`Epoch::SINGLE`]; the `+epochs=` transform builds one
/// stream per phase with an epoch-derived seed, and `mix` additionally
/// modulates its component weights by epoch (`diurnal=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Zero-based phase index.
    pub index: usize,
    /// Total number of phases.
    pub count: usize,
}

impl Epoch {
    /// The only epoch of a single-phase workload.
    pub const SINGLE: Epoch = Epoch { index: 0, count: 1 };
}

/// A registered traffic-pattern generator.
pub trait TrafficGenerator: Sync {
    /// Registry name (the spec's head segment).
    fn name(&self) -> &'static str;

    /// One-line description for `figures traffic list`.
    fn describe(&self) -> &'static str;

    /// An example spec string that builds.
    fn example(&self) -> &'static str;

    /// Server-count-independent parameter validation — what the CLI can
    /// check before any topology exists. Build-time checks that need the
    /// server population (`incast` fanin vs servers) live in [`Self::build`].
    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError>;

    /// Builds the lazy flow stream for one epoch.
    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError>;
}

// ------------------------------------------------------------ generators

/// `permutation`: every server sends unit demand to a distinct server, no
/// fixed points — the paper's workload. Reproduces
/// [`TrafficMatrix::random_permutation`] flow-for-flow (the permutation
/// itself is O(servers) generator state, which is the pattern's floor).
struct Permutation;

impl TrafficGenerator for Permutation {
    fn name(&self) -> &'static str {
        "permutation"
    }

    fn describe(&self) -> &'static str {
        "random fixed-point-free permutation, unit demand per server"
    }

    fn example(&self) -> &'static str {
        "permutation"
    }

    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError> {
        params.check_keys(self.name(), &[])
    }

    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        _epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError> {
        self.validate(params)?;
        Ok(TrafficMatrix::random_permutation(servers, seed).into_stream())
    }
}

/// `all2all`: every ordered server pair, demand 1/(n−1) — each server's
/// egress sums to 1. Fully lazy: the n·(n−1) flows are a pair of counters.
struct All2All;

/// The lazy all-to-all pair walk, identical in order and demand to the
/// eager [`TrafficMatrix::all_to_all`] constructor.
struct All2AllIter {
    n: usize,
    src: usize,
    dst: usize,
    demand: f64,
}

impl Iterator for All2AllIter {
    type Item = Flow;

    fn next(&mut self) -> Option<Flow> {
        while self.src < self.n {
            if self.dst >= self.n {
                self.src += 1;
                self.dst = 0;
                continue;
            }
            let (src, dst) = (self.src, self.dst);
            self.dst += 1;
            if src != dst {
                return Some(Flow { src, dst, demand: self.demand });
            }
        }
        None
    }
}

impl TrafficGenerator for All2All {
    fn name(&self) -> &'static str {
        "all2all"
    }

    fn describe(&self) -> &'static str {
        "every ordered pair, demand 1/(n-1) (lazy: flows are never materialized)"
    }

    fn example(&self) -> &'static str {
        "all2all"
    }

    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError> {
        params.check_keys(self.name(), &[])
    }

    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        _epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError> {
        self.validate(params)?;
        let _ = seed; // the pattern is deterministic regardless of seed
        let n = servers.num_servers();
        let (len, demand) = if n > 1 { (n * (n - 1), 1.0 / (n - 1) as f64) } else { (0, 0.0) };
        let iter = All2AllIter { n: if n > 1 { n } else { 0 }, src: 0, dst: 0, demand };
        Ok(FlowStream::new("all-to-all", n, Some(len), iter))
    }
}

/// `stride:k=4`: server s sends unit demand to (s+k) mod n — the classic
/// adversarial pattern for rigid topologies. Lazy.
struct StrideGen;

impl TrafficGenerator for StrideGen {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn describe(&self) -> &'static str {
        "server s sends to (s+k) mod n, unit demand"
    }

    fn example(&self) -> &'static str {
        "stride:k=4"
    }

    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError> {
        params.check_keys(self.name(), &["k"])?;
        let k = params.usize("k")?;
        if k == 0 {
            return Err(TrafficSpecError::Param("'k' must be at least 1".to_string()));
        }
        Ok(())
    }

    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        _epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError> {
        self.validate(params)?;
        let _ = seed;
        let k = params.usize("k")?;
        let n = servers.num_servers();
        // Same emptiness rule as the eager constructor: a stride that is a
        // multiple of n maps every server to itself.
        let len = if n <= 1 || k % n == 0 { 0 } else { n };
        let iter = (0..len).map(move |s| Flow { src: s, dst: (s + k) % n, demand: 1.0 });
        Ok(FlowStream::new(format!("stride({k})"), n, Some(len), iter))
    }
}

/// `hotspot:fraction=0.1`: every server sends unit demand to a uniformly
/// chosen member of a hot server subset. Reproduces
/// [`TrafficMatrix::hotspot`] flow-for-flow.
struct HotspotGen;

impl TrafficGenerator for HotspotGen {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn describe(&self) -> &'static str {
        "all servers target a random hot fraction of servers"
    }

    fn example(&self) -> &'static str {
        "hotspot:fraction=0.1"
    }

    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError> {
        params.check_keys(self.name(), &["fraction"])?;
        let fraction = params.f64("fraction")?;
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(TrafficSpecError::Param(format!(
                "'fraction={fraction}' must be in (0, 1]"
            )));
        }
        Ok(())
    }

    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        _epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError> {
        self.validate(params)?;
        let fraction = params.f64("fraction")?;
        Ok(TrafficMatrix::hotspot(servers, fraction, seed).into_stream())
    }
}

/// `zipf:s=1.2,hot_racks=4`: rack-skewed destinations — rack popularity
/// follows a Zipf(s) law over a seed-shuffled rack ranking, optionally
/// restricted to the `hot_racks` most popular racks. Lazy: generator state
/// is O(racks); each source's destination is drawn by position-addressable
/// hashing, never by a sequential RNG walk.
struct ZipfGen;

impl TrafficGenerator for ZipfGen {
    fn name(&self) -> &'static str {
        "zipf"
    }

    fn describe(&self) -> &'static str {
        "rack-skewed destinations with Zipf(s) popularity (lazy, O(racks) state)"
    }

    fn example(&self) -> &'static str {
        "zipf:s=1.2,hot_racks=4"
    }

    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError> {
        params.check_keys(self.name(), &["s", "hot_racks"])?;
        let s = params.f64("s")?;
        if s <= 0.0 {
            return Err(TrafficSpecError::Param(format!("'s={s}' must be positive")));
        }
        if let Some(h) = params.usize_opt("hot_racks")? {
            if h == 0 {
                return Err(TrafficSpecError::Param("'hot_racks' must be at least 1".to_string()));
            }
        }
        Ok(())
    }

    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        _epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError> {
        self.validate(params)?;
        let s = params.f64("s")?;
        let hot_racks = params.usize_opt("hot_racks")?;
        let n = servers.num_servers();
        let name = match hot_racks {
            Some(h) => format!("zipf(s={s},hot_racks={h})"),
            None => format!("zipf(s={s})"),
        };
        if n < 2 {
            return Ok(FlowStream::new(name, n, Some(0), std::iter::empty()));
        }
        // Rank the racks that actually hold servers by a seed-derived
        // shuffle, then keep the `hot_racks` most popular.
        let mut ranked: Vec<usize> =
            (0..servers.num_switches()).filter(|&r| !servers.servers_of(r).is_empty()).collect();
        let mut rng = StdRng::seed_from_u64(mix64(seed, 0x21BF));
        ranked.shuffle(&mut rng);
        let hot = hot_racks.unwrap_or(ranked.len()).min(ranked.len()).max(1);
        ranked.truncate(hot);
        // Cumulative Zipf weights over the ranked racks: rank i has weight
        // (i+1)^-s.
        let mut cumulative = Vec::with_capacity(hot);
        let mut total = 0.0f64;
        for i in 0..hot {
            total += ((i + 1) as f64).powf(-s);
            cumulative.push(total);
        }
        let rack_ranges: Vec<(usize, usize)> = ranked
            .iter()
            .map(|&r| {
                let range = servers.servers_of(r);
                (range.start, range.end - range.start)
            })
            .collect();
        let iter = (0..n).map(move |src| {
            let u = unit_f64(seed, src as u64) * total;
            let rank = cumulative.partition_point(|&c| c <= u).min(cumulative.len() - 1);
            let (start, len) = rack_ranges[rank];
            let mut dst = start + bounded_u64(seed, src as u64 ^ 0x0FF5_E700, len as u64) as usize;
            if dst == src {
                dst = (dst + 1) % n;
            }
            Flow { src, dst, demand: 1.0 }
        });
        Ok(FlowStream::new(name, n, Some(n), iter))
    }
}

/// `incast:fanin=32,targets=8`: `targets` servers (spread evenly across the
/// population) each receive unit-demand flows from the `fanin` servers that
/// follow them — the many-to-one pattern that stresses a single ToR's
/// downlinks. Lazy nested counters.
struct IncastGen;

impl TrafficGenerator for IncastGen {
    fn name(&self) -> &'static str {
        "incast"
    }

    fn describe(&self) -> &'static str {
        "many-to-one: fanin senders per target, unit demand each"
    }

    fn example(&self) -> &'static str {
        "incast:fanin=8,targets=2"
    }

    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError> {
        params.check_keys(self.name(), &["fanin", "targets"])?;
        let fanin = params.usize("fanin")?;
        if fanin == 0 {
            return Err(TrafficSpecError::Param("'fanin' must be at least 1".to_string()));
        }
        if let Some(t) = params.usize_opt("targets")? {
            if t == 0 {
                return Err(TrafficSpecError::Param("'targets' must be at least 1".to_string()));
            }
        }
        Ok(())
    }

    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        _epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError> {
        self.validate(params)?;
        let _ = seed;
        let fanin = params.usize("fanin")?;
        let targets = params.usize_opt("targets")?.unwrap_or(1);
        let n = servers.num_servers();
        if n < 2 {
            return Err(TrafficSpecError::Build(format!(
                "incast needs at least 2 servers, topology has {n}"
            )));
        }
        if fanin > n - 1 {
            return Err(TrafficSpecError::Build(format!(
                "incast fanin={fanin} exceeds the {} possible senders per target ({n} servers)",
                n - 1
            )));
        }
        if targets > n {
            return Err(TrafficSpecError::Build(format!(
                "incast targets={targets} exceeds {n} servers"
            )));
        }
        let spacing = n / targets;
        let iter = (0..targets).flat_map(move |j| {
            let target = j * spacing;
            (0..fanin).map(move |i| Flow { src: (target + 1 + i) % n, dst: target, demand: 1.0 })
        });
        Ok(FlowStream::new(
            format!("incast(fanin={fanin},targets={targets})"),
            n,
            Some(targets * fanin),
            iter,
        ))
    }
}

/// `outcast:fanout=32`: `sources` servers each spray demand 1/fanout at the
/// `fanout` servers that follow them — the one-to-many mirror of `incast`
/// (each source's egress sums to 1). Lazy nested counters.
struct OutcastGen;

impl TrafficGenerator for OutcastGen {
    fn name(&self) -> &'static str {
        "outcast"
    }

    fn describe(&self) -> &'static str {
        "one-to-many: each source sprays fanout receivers, egress 1 per source"
    }

    fn example(&self) -> &'static str {
        "outcast:fanout=8"
    }

    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError> {
        params.check_keys(self.name(), &["fanout", "sources"])?;
        let fanout = params.usize("fanout")?;
        if fanout == 0 {
            return Err(TrafficSpecError::Param("'fanout' must be at least 1".to_string()));
        }
        if let Some(s) = params.usize_opt("sources")? {
            if s == 0 {
                return Err(TrafficSpecError::Param("'sources' must be at least 1".to_string()));
            }
        }
        Ok(())
    }

    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        _epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError> {
        self.validate(params)?;
        let _ = seed;
        let fanout = params.usize("fanout")?;
        let sources = params.usize_opt("sources")?.unwrap_or(1);
        let n = servers.num_servers();
        if n < 2 {
            return Err(TrafficSpecError::Build(format!(
                "outcast needs at least 2 servers, topology has {n}"
            )));
        }
        if fanout > n - 1 {
            return Err(TrafficSpecError::Build(format!(
                "outcast fanout={fanout} exceeds the {} possible receivers per source ({n} servers)",
                n - 1
            )));
        }
        if sources > n {
            return Err(TrafficSpecError::Build(format!(
                "outcast sources={sources} exceeds {n} servers"
            )));
        }
        let spacing = n / sources;
        let demand = 1.0 / fanout as f64;
        let iter = (0..sources).flat_map(move |i| {
            let src = i * spacing;
            (0..fanout).map(move |j| Flow { src, dst: (src + 1 + j) % n, demand })
        });
        Ok(FlowStream::new(
            format!("outcast(fanout={fanout},sources={sources})"),
            n,
            Some(sources * fanout),
            iter,
        ))
    }
}

/// Component patterns `mix` can blend, with the server-count-independent
/// default parameters each is instantiated with. (`incast`/`outcast` are
/// excluded: their sizing is relative to the server count, so they only make
/// sense as explicit top-level specs.)
const MIX_COMPONENTS: [(&str, &[(&str, &str)]); 5] = [
    ("permutation", &[]),
    ("all2all", &[]),
    ("stride", &[("k", "1")]),
    ("hotspot", &[("fraction", "0.1")]),
    ("zipf", &[("s", "1.2")]),
];

/// `mix:permutation=2,zipf=1,diurnal=3`: a weighted blend of component
/// patterns, each built with its default parameters and a per-component
/// derived seed, demands scaled to `weight / total_weight`. The optional
/// `diurnal=<factor>` key makes the blend time-varying under `+epochs=`:
/// even epochs ("day") boost the first component's weight by the factor,
/// odd epochs ("night") boost the last component's.
struct MixGen;

impl MixGen {
    fn component(
        key: &str,
    ) -> Option<&'static (&'static str, &'static [(&'static str, &'static str)])> {
        MIX_COMPONENTS.iter().find(|(name, _)| *name == key)
    }
}

impl TrafficGenerator for MixGen {
    fn name(&self) -> &'static str {
        "mix"
    }

    fn describe(&self) -> &'static str {
        "weighted blend of patterns; diurnal= makes it time-varying under +epochs="
    }

    fn example(&self) -> &'static str {
        "mix:permutation=2,zipf=1,diurnal=3"
    }

    fn validate(&self, params: &Params) -> Result<(), TrafficSpecError> {
        let mut components = 0usize;
        for (i, (key, raw)) in params.pairs().iter().enumerate() {
            if params.pairs()[..i].iter().any(|(prev, _)| prev == key) {
                return Err(TrafficSpecError::Param(format!("duplicate key '{key}'")));
            }
            let value = match raw.parse::<f64>() {
                Ok(v) if v.is_finite() => v,
                _ => {
                    return Err(TrafficSpecError::Param(format!(
                        "'{key}={raw}' is not a finite number"
                    )))
                }
            };
            if key == "diurnal" {
                if value < 1.0 {
                    return Err(TrafficSpecError::Param(format!(
                        "'diurnal={raw}' must be at least 1"
                    )));
                }
                continue;
            }
            if Self::component(key).is_none() {
                let names: Vec<&str> = MIX_COMPONENTS.iter().map(|(n, _)| *n).collect();
                return Err(TrafficSpecError::Param(format!(
                    "'mix' does not take '{key}': known keys are {}, diurnal",
                    names.join(", ")
                )));
            }
            if value <= 0.0 {
                return Err(TrafficSpecError::Param(format!(
                    "'{key}={raw}' must be a positive weight"
                )));
            }
            components += 1;
        }
        if components == 0 {
            return Err(TrafficSpecError::Param(
                "'mix' needs at least one weighted component".to_string(),
            ));
        }
        Ok(())
    }

    fn build(
        &self,
        params: &Params,
        servers: &ServerMap,
        seed: u64,
        epoch: Epoch,
    ) -> Result<FlowStream, TrafficSpecError> {
        self.validate(params)?;
        let diurnal = params.f64_opt("diurnal")?;
        type Component = (&'static str, &'static [(&'static str, &'static str)], f64);
        let components: Vec<Component> = params
            .pairs()
            .iter()
            .filter(|(k, _)| k != "diurnal")
            .map(|(k, v)| {
                let (name, defaults) = Self::component(k).expect("validated component");
                (*name, *defaults, v.parse::<f64>().expect("validated weight"))
            })
            .collect();
        let mut weights: Vec<f64> = components.iter().map(|&(_, _, w)| w).collect();
        if let Some(factor) = diurnal {
            // Day/night alternation across epochs: even epochs boost the
            // first component, odd epochs the last.
            let boosted = if epoch.index.is_multiple_of(2) { 0 } else { weights.len() - 1 };
            weights[boosted] *= factor;
        }
        let total: f64 = weights.iter().sum();
        let mut parts = Vec::with_capacity(components.len());
        for (ci, &(name, defaults, _)) in components.iter().enumerate() {
            let generator = find_generator(name).expect("mix components are registered");
            let mut sub_params = Params::new();
            for &(k, v) in defaults {
                sub_params.push(k, v);
            }
            let sub_seed = mix64(seed, 0x301C ^ ci as u64);
            let part = generator.build(&sub_params, servers, sub_seed, Epoch::SINGLE)?;
            parts.push(part.scaled(weights[ci] / total));
        }
        let labels: Vec<String> = components
            .iter()
            .enumerate()
            .map(|(ci, &(name, _, _))| format!("{name}={}", weights[ci] / total))
            .collect();
        Ok(FlowStream::concat(format!("mix({})", labels.join(",")), servers.num_servers(), parts))
    }
}

// ------------------------------------------------------------- registry

/// The registered traffic generators, in presentation order.
pub fn generators() -> &'static [&'static dyn TrafficGenerator] {
    static REGISTRY: [&dyn TrafficGenerator; 8] = [
        &Permutation,
        &All2All,
        &StrideGen,
        &HotspotGen,
        &ZipfGen,
        &IncastGen,
        &OutcastGen,
        &MixGen,
    ];
    &REGISTRY
}

/// Looks a generator up by registry name.
pub fn find_generator(name: &str) -> Option<&'static dyn TrafficGenerator> {
    generators().iter().find(|g| g.name() == name).copied()
}

// ------------------------------------------------------------ transforms

/// A composable workload transform (`+name=value` spec segments).
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficTransform {
    /// Multiplies every demand by the factor.
    ScaleDemand(f64),
    /// Splits the workload into that many time-varying phases: each phase
    /// rebuilds the generator with an epoch-derived seed at 1/count of the
    /// demand, and `mix` additionally re-weights per phase (`diurnal=`).
    Epochs(usize),
}

impl TrafficTransform {
    /// The transform's spec-segment name.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficTransform::ScaleDemand(_) => "scale_demand",
            TrafficTransform::Epochs(_) => "epochs",
        }
    }

    /// Parses one `+` segment (without the `+`).
    pub fn parse(segment: &str) -> Result<Self, TrafficSpecError> {
        let (name, raw) = segment.split_once('=').ok_or_else(|| {
            TrafficSpecError::Syntax(format!("transform '{segment}' is missing '=value'"))
        })?;
        match name {
            "scale_demand" => match raw.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => Ok(TrafficTransform::ScaleDemand(v)),
                _ => Err(TrafficSpecError::Param(format!(
                    "'scale_demand={raw}' must be a positive finite number"
                ))),
            },
            "epochs" => match raw.parse::<usize>() {
                Ok(v) if v >= 1 => Ok(TrafficTransform::Epochs(v)),
                _ => Err(TrafficSpecError::Param(format!(
                    "'epochs={raw}' must be an integer of at least 1"
                ))),
            },
            other => Err(TrafficSpecError::UnknownTransform(other.to_string())),
        }
    }

    /// Server-count-independent re-validation (for programmatically built
    /// transforms that never went through [`TrafficTransform::parse`]).
    fn validate(&self) -> Result<(), TrafficSpecError> {
        match *self {
            TrafficTransform::ScaleDemand(v) if !(v.is_finite() && v > 0.0) => {
                Err(TrafficSpecError::Param(format!(
                    "'scale_demand={v}' must be a positive finite number"
                )))
            }
            TrafficTransform::Epochs(0) => Err(TrafficSpecError::Param(
                "'epochs=0' must be an integer of at least 1".to_string(),
            )),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for TrafficTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficTransform::ScaleDemand(v) => write!(f, "scale_demand={v}"),
            TrafficTransform::Epochs(k) => write!(f, "epochs={k}"),
        }
    }
}

/// One-line summary of the workload-transform grammar.
pub fn transform_grammar() -> &'static str {
    "+scale_demand=<factor>, +epochs=<count>"
}

// ------------------------------------------------------------------ spec

/// A parsed workload spec: generator, ordered params, transform chain.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    generator: String,
    params: Params,
    transforms: Vec<TrafficTransform>,
}

impl TrafficSpec {
    /// Creates a bare spec for a generator.
    pub fn new(generator: impl Into<String>) -> Self {
        TrafficSpec { generator: generator.into(), params: Params::new(), transforms: Vec::new() }
    }

    /// The paper's default workload (`permutation`).
    pub fn permutation() -> Self {
        TrafficSpec::new("permutation")
    }

    /// Appends a `key=value` parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.push(key, value);
        self
    }

    /// Appends a transform (builder style).
    pub fn with_transform(mut self, transform: TrafficTransform) -> Self {
        self.transforms.push(transform);
        self
    }

    /// The generator name.
    pub fn generator(&self) -> &str {
        &self.generator
    }

    /// The ordered parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The transform chain, in application order.
    pub fn transforms(&self) -> &[TrafficTransform] {
        &self.transforms
    }

    fn resolve(&self) -> Result<&'static dyn TrafficGenerator, TrafficSpecError> {
        find_generator(&self.generator)
            .ok_or_else(|| TrafficSpecError::UnknownGenerator(self.generator.clone()))
    }

    /// Validates everything that does not need a server population: the
    /// generator exists, its parameters are in range, the transforms are in
    /// range. The CLI probes `--traffic` arguments with this before any
    /// topology is built; population-dependent checks (`incast` fanin vs
    /// servers) surface from [`TrafficSpec::stream`].
    pub fn validate(&self) -> Result<(), TrafficSpecError> {
        self.resolve()?.validate(&self.params)?;
        for t in &self.transforms {
            t.validate()?;
        }
        Ok(())
    }

    /// Number of time-varying phases the transform chain requests (the
    /// product of all `+epochs=` factors; 1 when none).
    pub fn epochs(&self) -> usize {
        self.transforms
            .iter()
            .map(|t| match *t {
                TrafficTransform::Epochs(k) => k,
                _ => 1,
            })
            .product::<usize>()
            .max(1)
    }

    /// Overall demand factor of the transform chain (the product of all
    /// `+scale_demand=` factors; 1 when none).
    pub fn demand_scale(&self) -> f64 {
        self.transforms
            .iter()
            .map(|t| match *t {
                TrafficTransform::ScaleDemand(v) => v,
                _ => 1.0,
            })
            .product()
    }

    /// Builds the lazy flow stream for this spec over `servers`.
    ///
    /// With one epoch and no demand scaling the generator's stream is
    /// returned untouched, so legacy-pattern specs stay flow-for-flow
    /// identical to the historical eager constructors. With E epochs the
    /// stream is the concatenation of E phases, phase `i` built with the
    /// derived seed `mix64(seed, 0xE70C ^ i)` at 1/E of the demand.
    pub fn stream(&self, servers: &ServerMap, seed: u64) -> Result<FlowStream, TrafficSpecError> {
        self.validate()?;
        let generator = self.resolve()?;
        let epochs = self.epochs();
        let mut parts = Vec::with_capacity(epochs);
        for index in 0..epochs {
            let epoch_seed = if epochs == 1 { seed } else { mix64(seed, 0xE70C ^ index as u64) };
            let epoch = Epoch { index, count: epochs };
            let part = generator.build(&self.params, servers, epoch_seed, epoch)?;
            parts.push(if epochs == 1 { part } else { part.scaled(1.0 / epochs as f64) });
        }
        let mut stream = if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            FlowStream::concat(self.to_string(), servers.num_servers(), parts)
        };
        let scale = self.demand_scale();
        if scale != 1.0 {
            stream = stream.scaled(scale);
        }
        Ok(stream)
    }

    /// Builds and collects the spec into an eager [`TrafficMatrix`] (the
    /// compat wrapper for consumers that need every flow resident).
    pub fn matrix(
        &self,
        servers: &ServerMap,
        seed: u64,
    ) -> Result<TrafficMatrix, TrafficSpecError> {
        Ok(self.stream(servers, seed)?.collect_matrix())
    }
}

impl fmt::Display for TrafficSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.generator)?;
        for (i, (k, v)) in self.params.pairs().iter().enumerate() {
            let sep = if i == 0 { ':' } else { ',' };
            write!(f, "{sep}{k}={v}")?;
        }
        for t in &self.transforms {
            write!(f, "+{t}")?;
        }
        Ok(())
    }
}

impl FromStr for TrafficSpec {
    type Err = TrafficSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(TrafficSpecError::Syntax("empty traffic spec".to_string()));
        }
        let mut segments = s.split('+');
        let head = segments.next().expect("split yields at least one segment");
        let (generator, raw_params) = match head.split_once(':') {
            Some((g, p)) => (g, Some(p)),
            None => (head, None),
        };
        if generator.is_empty() {
            return Err(TrafficSpecError::Syntax("missing generator name".to_string()));
        }
        if find_generator(generator).is_none() {
            return Err(TrafficSpecError::UnknownGenerator(generator.to_string()));
        }
        let mut params = Params::new();
        if let Some(raw) = raw_params {
            for pair in raw.split(',') {
                let (k, v) = pair.split_once('=').ok_or_else(|| {
                    TrafficSpecError::Syntax(format!("parameter '{pair}' is missing '=value'"))
                })?;
                if k.is_empty() || v.is_empty() {
                    return Err(TrafficSpecError::Syntax(format!(
                        "parameter '{pair}' has an empty key or value"
                    )));
                }
                params.push(k, v);
            }
        }
        let mut transforms = Vec::new();
        for segment in segments {
            transforms.push(TrafficTransform::parse(segment)?);
        }
        Ok(TrafficSpec { generator: generator.to_string(), params, transforms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers() -> ServerMap {
        ServerMap::uniform(8, 4)
    }

    #[test]
    fn parse_display_round_trips_examples() {
        for g in generators() {
            let spec: TrafficSpec = g
                .example()
                .parse()
                .unwrap_or_else(|e| panic!("example '{}' does not parse: {e}", g.example()));
            assert_eq!(spec.to_string(), g.example(), "display is not the parse inverse");
        }
        let chained: TrafficSpec =
            "zipf:s=1.2,hot_racks=4+scale_demand=0.5+epochs=4".parse().unwrap();
        assert_eq!(chained.to_string(), "zipf:s=1.2,hot_racks=4+scale_demand=0.5+epochs=4");
        assert_eq!(chained.epochs(), 4);
        assert!((chained.demand_scale() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn examples_build_and_streams_match_their_exact_len() {
        let map = servers();
        for g in generators() {
            let spec: TrafficSpec = g.example().parse().unwrap();
            let stream = spec
                .stream(&map, 7)
                .unwrap_or_else(|e| panic!("example '{}' does not build: {e}", g.example()));
            let expected = stream.exact_len();
            let flows: Vec<Flow> = stream.collect();
            if let Some(len) = expected {
                assert_eq!(flows.len(), len, "{}: exact_len lied", g.name());
            }
            for f in &flows {
                assert!(f.src < map.num_servers() && f.dst < map.num_servers());
                assert!(f.demand >= 0.0);
            }
        }
    }

    #[test]
    fn bad_specs_fail_with_useful_errors() {
        // Parse-time failures.
        let parse_cases: [(&str, &str); 6] = [
            ("", "empty"),
            ("warp9", "registered generators are permutation"),
            ("permutation+hyperspeed=1", "known transforms are"),
            ("zipf:s", "missing '=value'"),
            ("zipf:=3", "empty key or value"),
            ("permutation+epochs=0", "at least 1"),
        ];
        for (spec, needle) in parse_cases {
            let err = spec.parse::<TrafficSpec>().unwrap_err().to_string();
            assert!(err.contains(needle), "'{spec}': error '{err}' lacks '{needle}'");
        }
        // Build-time failures (valid grammar, bad params or population).
        let map = servers();
        let build_cases: [(&str, &str); 8] = [
            ("hotspot:fraction=0", "must be in (0, 1]"),
            ("hotspot:fraction=1.5", "must be in (0, 1]"),
            ("zipf:s=0", "must be positive"),
            ("zipf:s=1.2,s=1.3", "duplicate key 's'"),
            ("stride:k=4,speed=9", "does not take 'speed'"),
            ("incast:fanin=99", "exceeds the 31 possible senders"),
            ("outcast:fanout=40", "exceeds the 31 possible receivers"),
            ("mix:diurnal=2", "at least one weighted component"),
        ];
        for (spec, needle) in build_cases {
            let spec: TrafficSpec = spec.parse().unwrap();
            let err = spec.stream(&map, 7).unwrap_err().to_string();
            assert!(err.contains(needle), "'{spec}': error '{err}' lacks '{needle}'");
        }
    }

    #[test]
    fn legacy_patterns_match_the_eager_constructors_flow_for_flow() {
        let map = servers();
        for seed in [0u64, 7, 99] {
            let perm = TrafficSpec::permutation().matrix(&map, seed).unwrap();
            let legacy = TrafficMatrix::random_permutation(&map, seed);
            assert_eq!(perm.flows(), legacy.flows(), "permutation diverged at seed {seed}");
            assert_eq!(perm.name(), legacy.name());
        }
        let a2a: TrafficSpec = "all2all".parse().unwrap();
        assert_eq!(a2a.matrix(&map, 1).unwrap().flows(), TrafficMatrix::all_to_all(&map).flows());
        let stride: TrafficSpec = "stride:k=4".parse().unwrap();
        assert_eq!(stride.matrix(&map, 1).unwrap().flows(), TrafficMatrix::stride(&map, 4).flows());
        let hot: TrafficSpec = "hotspot:fraction=0.25".parse().unwrap();
        assert_eq!(
            hot.matrix(&map, 13).unwrap().flows(),
            TrafficMatrix::hotspot(&map, 0.25, 13).flows()
        );
    }

    #[test]
    fn builds_are_deterministic_and_seeds_spread() {
        let map = servers();
        for raw in
            ["permutation", "zipf:s=1.2,hot_racks=4", "mix:permutation=2,zipf=1,diurnal=3+epochs=4"]
        {
            let spec: TrafficSpec = raw.parse().unwrap();
            let a = spec.matrix(&map, 42).unwrap();
            let b = spec.matrix(&map, 42).unwrap();
            assert_eq!(a.flows(), b.flows(), "{raw}: same seed, different flows");
        }
        let spec = TrafficSpec::permutation();
        let a = spec.matrix(&map, 1).unwrap();
        let b = spec.matrix(&map, 2).unwrap();
        assert_ne!(a.flows(), b.flows(), "different seeds should spread");
    }

    #[test]
    fn epochs_split_demand_and_vary_phases() {
        let map = servers();
        let spec: TrafficSpec = "permutation+epochs=2".parse().unwrap();
        let stream = spec.stream(&map, 7).unwrap();
        assert_eq!(stream.exact_len(), Some(2 * map.num_servers()));
        let flows: Vec<Flow> = stream.collect();
        let total: f64 = flows.iter().map(|f| f.demand).sum();
        // Two phases at half demand each: total demand equals one phase's.
        assert!((total - map.num_servers() as f64).abs() < 1e-9);
        let (first, second) = flows.split_at(map.num_servers());
        let dsts = |fs: &[Flow]| fs.iter().map(|f| f.dst).collect::<Vec<_>>();
        assert_ne!(dsts(first), dsts(second), "epochs should draw distinct phases");
    }

    #[test]
    fn scale_demand_multiplies_everything() {
        let map = servers();
        let spec: TrafficSpec = "all2all+scale_demand=3".parse().unwrap();
        let scaled = spec.matrix(&map, 7).unwrap();
        let base = TrafficMatrix::all_to_all(&map);
        assert!((scaled.total_demand() - 3.0 * base.total_demand()).abs() < 1e-9);
    }

    #[test]
    fn zipf_respects_hot_racks_and_hits_valid_servers() {
        let map = servers();
        let spec: TrafficSpec = "zipf:s=1.5,hot_racks=2".parse().unwrap();
        let tm = spec.matrix(&map, 7).unwrap();
        assert_eq!(tm.flows().len(), map.num_servers());
        // At most 2 hot racks, plus at most one spill rack per hot rack
        // when a draw lands on the source itself (dst moves to src+1).
        let mut dst_racks: Vec<usize> = tm.flows().iter().map(|f| map.switch_of(f.dst)).collect();
        dst_racks.sort_unstable();
        dst_racks.dedup();
        assert!(dst_racks.len() <= 4, "hot_racks=2 produced {} racks", dst_racks.len());
        for f in tm.flows() {
            assert_ne!(f.src, f.dst, "zipf must not emit self-flows");
        }
    }

    #[test]
    fn incast_concentrates_on_targets() {
        let map = servers();
        let spec: TrafficSpec = "incast:fanin=8,targets=2".parse().unwrap();
        let tm = spec.matrix(&map, 7).unwrap();
        assert_eq!(tm.flows().len(), 16);
        let mut dsts: Vec<usize> = tm.flows().iter().map(|f| f.dst).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts, vec![0, 16], "targets spread evenly across 32 servers");
        assert!((tm.ingress_load()[0] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn outcast_spreads_each_source_egress_to_one() {
        let map = servers();
        let spec: TrafficSpec = "outcast:fanout=8,sources=2".parse().unwrap();
        let tm = spec.matrix(&map, 7).unwrap();
        assert_eq!(tm.flows().len(), 16);
        let egress = tm.egress_load();
        assert!((egress[0] - 1.0).abs() < 1e-12);
        assert!((egress[16] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mix_weights_blend_and_diurnal_modulates_epochs() {
        let map = servers();
        let spec: TrafficSpec = "mix:permutation=3,all2all=1".parse().unwrap();
        let tm = spec.matrix(&map, 7).unwrap();
        let n = map.num_servers() as f64;
        // permutation contributes n flows at 3/4 demand, all2all n(n-1)
        // flows summing to n at 1/4 demand: total = 3n/4 + n/4 = n.
        assert!((tm.total_demand() - n).abs() < 1e-9);
        // Diurnal alternation: with epochs, phase weights differ between
        // even and odd epochs, so the phase demand splits differ.
        let spec: TrafficSpec = "mix:permutation=1,zipf=1,diurnal=9+epochs=2".parse().unwrap();
        let flows: Vec<Flow> = spec.stream(&map, 7).unwrap().collect();
        let half = flows.len() / 2;
        let perm_share = |fs: &[Flow]| {
            // The permutation component comes first in each phase.
            fs.iter().take(map.num_servers()).map(|f| f.demand).sum::<f64>()
        };
        let day = perm_share(&flows[..half]);
        let night = perm_share(&flows[half..]);
        assert!(day > night, "day phase should weight the first component up");
    }

    #[test]
    fn validate_catches_programmatic_mistakes() {
        let spec = TrafficSpec::new("zipf").with_param("s", "-1");
        assert!(spec.validate().is_err());
        let spec = TrafficSpec::permutation().with_transform(TrafficTransform::Epochs(0));
        assert!(spec.validate().is_err());
        let spec = TrafficSpec::permutation().with_transform(TrafficTransform::ScaleDemand(-2.0));
        assert!(spec.validate().is_err());
    }
}
