//! Traffic-matrix generation for the Jellyfish (NSDI 2012) reproduction.
//!
//! The paper's primary workload is **random permutation traffic**: each
//! server sends at its full line rate to exactly one other server and
//! receives from exactly one other server, with the permutation drawn
//! uniformly at random (§4, evaluation methodology). This crate generates
//! that workload — plus a few others useful for extensions — at the server
//! level and maps it onto switch-level demands.
//!
//! Servers are numbered globally: server `j` of switch `i` gets the id
//! obtained by counting servers switch by switch in node order (see
//! [`ServerMap`]).
//!
//! ```
//! use jellyfish_topology::JellyfishBuilder;
//! use jellyfish_traffic::{ServerMap, TrafficMatrix};
//!
//! let topo = JellyfishBuilder::new(10, 6, 3).seed(1).build().unwrap();
//! let servers = ServerMap::new(&topo);
//! let tm = TrafficMatrix::random_permutation(&servers, 7);
//! assert_eq!(tm.flows().len(), servers.num_servers());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod spec;
pub mod stream;

pub use spec::{
    find_generator, generators, transform_grammar, Epoch, TrafficGenerator, TrafficSpec,
    TrafficSpecError, TrafficTransform,
};
pub use stream::FlowStream;

use jellyfish_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Mapping between global server ids and the switches hosting them.
#[derive(Debug, Clone)]
pub struct ServerMap {
    /// `switch_of[s]` is the ToR switch hosting server `s`.
    switch_of: Vec<NodeId>,
    /// `first_server[i]` is the id of the first server on switch `i`
    /// (servers of a switch are contiguous); has one extra trailing entry
    /// equal to the total server count.
    first_server: Vec<usize>,
}

impl ServerMap {
    /// Builds the server map of a topology.
    pub fn new(topo: &Topology) -> Self {
        let mut switch_of = Vec::with_capacity(topo.total_servers());
        let mut first_server = Vec::with_capacity(topo.num_switches() + 1);
        for i in topo.graph().nodes() {
            first_server.push(switch_of.len());
            for _ in 0..topo.servers(i) {
                switch_of.push(i);
            }
        }
        first_server.push(switch_of.len());
        ServerMap { switch_of, first_server }
    }

    /// A synthetic uniform map: `num_switches` switches hosting
    /// `servers_per_switch` servers each, with no topology behind it. Used
    /// by tests and benchmarks that exercise workload generation at scales
    /// where building a full topology would dominate the cost.
    pub fn uniform(num_switches: usize, servers_per_switch: usize) -> Self {
        let mut switch_of = Vec::with_capacity(num_switches * servers_per_switch);
        let mut first_server = Vec::with_capacity(num_switches + 1);
        for i in 0..num_switches {
            first_server.push(switch_of.len());
            for _ in 0..servers_per_switch {
                switch_of.push(i);
            }
        }
        first_server.push(switch_of.len());
        ServerMap { switch_of, first_server }
    }

    /// Total number of servers.
    pub fn num_servers(&self) -> usize {
        self.switch_of.len()
    }

    /// Number of switches in the map (including any hosting no servers).
    pub fn num_switches(&self) -> usize {
        self.first_server.len() - 1
    }

    /// The switch hosting server `s`.
    pub fn switch_of(&self, s: usize) -> NodeId {
        self.switch_of[s]
    }

    /// The global ids of the servers hosted by switch `i`.
    pub fn servers_of(&self, i: NodeId) -> std::ops::Range<usize> {
        self.first_server[i]..self.first_server[i + 1]
    }
}

/// A single server-to-server demand, in units of the server line rate
/// (1.0 = the server sends at its full NIC rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Sending server (global id).
    pub src: usize,
    /// Receiving server (global id).
    pub dst: usize,
    /// Demand as a fraction of the line rate.
    pub demand: f64,
}

/// A server-level traffic matrix: a list of flows plus the server map used
/// to interpret them.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    flows: Vec<Flow>,
    num_servers: usize,
    name: String,
}

impl TrafficMatrix {
    /// Creates a traffic matrix from explicit flows.
    pub fn from_flows(flows: Vec<Flow>, num_servers: usize, name: impl Into<String>) -> Self {
        for f in &flows {
            assert!(f.src < num_servers && f.dst < num_servers, "flow endpoints out of range");
            assert!(f.demand >= 0.0, "negative demand");
        }
        TrafficMatrix { flows, num_servers, name: name.into() }
    }

    /// Random permutation traffic (the paper's workload): a uniform random
    /// derangement-ish permutation where no server sends to itself; each flow
    /// has unit demand.
    ///
    /// Servers hosted on the same switch may still be paired (the paper does
    /// not exclude that), but a server never sends to itself.
    pub fn random_permutation(servers: &ServerMap, seed: u64) -> Self {
        let n = servers.num_servers();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dst: Vec<usize> = (0..n).collect();
        if n > 1 {
            loop {
                dst.shuffle(&mut rng);
                if dst.iter().enumerate().all(|(s, &d)| s != d) {
                    break;
                }
            }
        }
        let flows = if n > 1 {
            (0..n).map(|s| Flow { src: s, dst: dst[s], demand: 1.0 }).collect()
        } else {
            Vec::new()
        };
        TrafficMatrix { flows, num_servers: n, name: format!("random-permutation(seed={seed})") }
    }

    /// All-to-all traffic: every ordered server pair exchanges `1/(n-1)` of
    /// the line rate, so every server sends (and receives) at exactly line
    /// rate in aggregate.
    pub fn all_to_all(servers: &ServerMap) -> Self {
        let n = servers.num_servers();
        let mut flows = Vec::with_capacity(n.saturating_sub(1) * n);
        if n > 1 {
            let demand = 1.0 / (n - 1) as f64;
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        flows.push(Flow { src: s, dst: d, demand });
                    }
                }
            }
        }
        TrafficMatrix { flows, num_servers: n, name: "all-to-all".to_string() }
    }

    /// Hotspot traffic: a `fraction` of servers (at least one) are chosen as
    /// hot destinations; every other server sends its full line rate to a
    /// uniformly chosen hot server. Models incast-style skew.
    pub fn hotspot(servers: &ServerMap, fraction: f64, seed: u64) -> Self {
        let n = servers.num_servers();
        let mut rng = StdRng::seed_from_u64(seed);
        let hot_count = ((n as f64 * fraction.clamp(0.0, 1.0)).round() as usize).clamp(1, n.max(1));
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        let hot: Vec<usize> = ids.into_iter().take(hot_count).collect();
        let mut flows = Vec::new();
        for s in 0..n {
            let candidates: Vec<usize> = hot.iter().copied().filter(|&h| h != s).collect();
            if candidates.is_empty() {
                continue;
            }
            let d = candidates[rng.gen_range(0..candidates.len())];
            flows.push(Flow { src: s, dst: d, demand: 1.0 });
        }
        TrafficMatrix { flows, num_servers: n, name: format!("hotspot(fraction={fraction})") }
    }

    /// Stride traffic: server `s` sends to server `(s + stride) mod n` at
    /// full rate. A structured pattern useful as an adversarial complement to
    /// the random permutation.
    pub fn stride(servers: &ServerMap, stride: usize) -> Self {
        let n = servers.num_servers();
        let flows = if n > 1 && !stride.is_multiple_of(n) {
            (0..n).map(|s| Flow { src: s, dst: (s + stride) % n, demand: 1.0 }).collect()
        } else {
            Vec::new()
        };
        TrafficMatrix { flows, num_servers: n, name: format!("stride({stride})") }
    }

    /// The flows of this matrix.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of servers the matrix was generated for.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Matrix name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total offered demand (in server line rates).
    pub fn total_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.demand).sum()
    }

    /// Aggregates the server-level flows into switch-level demands using a
    /// server map: returns a list of `(src_switch, dst_switch, demand)` with
    /// one entry per switch pair that has non-zero demand. Flows between
    /// servers on the same switch are excluded (they never cross the
    /// interconnect).
    pub fn switch_demands(&self, servers: &ServerMap) -> Vec<(NodeId, NodeId, f64)> {
        aggregate_switch_demands(self.flows.iter().copied(), servers)
    }

    /// A borrowing stream over this matrix's flows (the flows are cloned
    /// lazily as the stream is consumed). Lets stream-based consumers accept
    /// an eager matrix without taking ownership.
    pub fn stream(&self) -> FlowStream {
        FlowStream::from_flows(self.name.clone(), self.num_servers, self.flows.clone())
    }

    /// Converts this matrix into a stream over its flows without copying.
    pub fn into_stream(self) -> FlowStream {
        FlowStream::from_flows(self.name, self.num_servers, self.flows)
    }

    /// Per-server egress load (sum of demands sent by each server).
    pub fn egress_load(&self) -> Vec<f64> {
        let mut load = vec![0.0; self.num_servers];
        for f in &self.flows {
            load[f.src] += f.demand;
        }
        load
    }

    /// Per-server ingress load (sum of demands received by each server).
    pub fn ingress_load(&self) -> Vec<f64> {
        let mut load = vec![0.0; self.num_servers];
        for f in &self.flows {
            load[f.dst] += f.demand;
        }
        load
    }
}

/// Aggregates server-level flows into switch-level demands: one
/// `(src_switch, dst_switch, demand)` entry per switch pair with non-zero
/// demand, ascending by `(src, dst)`. Flows between servers on the same
/// switch are excluded (they never cross the interconnect). Shared by the
/// eager [`TrafficMatrix::switch_demands`] and the lazy
/// [`FlowStream::switch_demands`], so peak memory is the map of switch
/// pairs, not the flow count.
pub(crate) fn aggregate_switch_demands(
    flows: impl Iterator<Item = Flow>,
    servers: &ServerMap,
) -> Vec<(NodeId, NodeId, f64)> {
    use std::collections::BTreeMap;
    // A BTreeMap keeps the aggregation deterministic end to end: the
    // per-pair accumulation order is the (fixed) flow order, and the
    // output order is ascending (src, dst) by construction — no sort,
    // no hash-order dependence (detlint D01).
    let mut agg: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for f in flows {
        let s = servers.switch_of(f.src);
        let d = servers.switch_of(f.dst);
        if s != d {
            *agg.entry((s, d)).or_insert(0.0) += f.demand;
        }
    }
    agg.into_iter().map(|((s, d), v)| (s, d, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::JellyfishBuilder;

    fn topo() -> jellyfish_topology::Topology {
        JellyfishBuilder::new(12, 8, 5).seed(3).build().unwrap()
    }

    #[test]
    fn server_map_contiguous_and_complete() {
        let t = topo();
        let m = ServerMap::new(&t);
        assert_eq!(m.num_servers(), 12 * 3);
        for i in t.graph().nodes() {
            let range = m.servers_of(i);
            assert_eq!(range.len(), 3);
            for s in range {
                assert_eq!(m.switch_of(s), i);
            }
        }
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let t = topo();
        let m = ServerMap::new(&t);
        let tm = TrafficMatrix::random_permutation(&m, 11);
        let n = m.num_servers();
        assert_eq!(tm.flows().len(), n);
        let mut sends = vec![0usize; n];
        let mut recvs = vec![0usize; n];
        for f in tm.flows() {
            assert_ne!(f.src, f.dst, "server sends to itself");
            assert_eq!(f.demand, 1.0);
            sends[f.src] += 1;
            recvs[f.dst] += 1;
        }
        assert!(sends.iter().all(|&c| c == 1));
        assert!(recvs.iter().all(|&c| c == 1));
        assert_eq!(tm.total_demand(), n as f64);
    }

    #[test]
    fn random_permutation_deterministic_per_seed() {
        let t = topo();
        let m = ServerMap::new(&t);
        let a = TrafficMatrix::random_permutation(&m, 5);
        let b = TrafficMatrix::random_permutation(&m, 5);
        let c = TrafficMatrix::random_permutation(&m, 6);
        assert_eq!(a.flows(), b.flows());
        assert_ne!(a.flows(), c.flows());
    }

    #[test]
    fn all_to_all_load_is_unit() {
        let t = JellyfishBuilder::new(5, 6, 3).seed(2).build().unwrap();
        let m = ServerMap::new(&t);
        let tm = TrafficMatrix::all_to_all(&m);
        let n = m.num_servers();
        assert_eq!(tm.flows().len(), n * (n - 1));
        for load in tm.egress_load() {
            assert!((load - 1.0).abs() < 1e-9);
        }
        for load in tm.ingress_load() {
            assert!((load - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hotspot_targets_hot_servers_only() {
        let t = topo();
        let m = ServerMap::new(&t);
        let tm = TrafficMatrix::hotspot(&m, 0.1, 4);
        let n = m.num_servers();
        let hot_count = (n as f64 * 0.1).round() as usize;
        let mut dsts: Vec<usize> = tm.flows().iter().map(|f| f.dst).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert!(dsts.len() <= hot_count.max(1));
        assert!(tm.flows().len() >= n - hot_count);
        for f in tm.flows() {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn stride_wraps_around() {
        let t = JellyfishBuilder::new(4, 6, 3).seed(1).build().unwrap();
        let m = ServerMap::new(&t);
        let tm = TrafficMatrix::stride(&m, 3);
        assert_eq!(tm.flows().len(), 12);
        for f in tm.flows() {
            assert_eq!(f.dst, (f.src + 3) % 12);
        }
        // stride 0 (mod n) produces no flows.
        assert!(TrafficMatrix::stride(&m, 0).flows().is_empty());
        assert!(TrafficMatrix::stride(&m, 12).flows().is_empty());
    }

    #[test]
    fn switch_demands_exclude_intra_switch_flows() {
        let t = JellyfishBuilder::new(4, 6, 3).seed(1).build().unwrap();
        let m = ServerMap::new(&t);
        // Handcrafted: server 0 -> 1 (same switch 0), server 0 -> 5 (switch 1),
        // server 3 -> 8 (switch 1 -> switch 2).
        let tm = TrafficMatrix::from_flows(
            vec![
                Flow { src: 0, dst: 1, demand: 1.0 },
                Flow { src: 0, dst: 5, demand: 0.5 },
                Flow { src: 3, dst: 8, demand: 0.25 },
            ],
            m.num_servers(),
            "handmade",
        );
        let demands = tm.switch_demands(&m);
        assert_eq!(demands.len(), 2);
        assert_eq!(demands[0], (0, 1, 0.5));
        assert_eq!(demands[1], (1, 2, 0.25));
    }

    #[test]
    fn from_flows_validates_ranges() {
        let t = JellyfishBuilder::new(4, 6, 3).seed(1).build().unwrap();
        let m = ServerMap::new(&t);
        let tm = TrafficMatrix::from_flows(
            vec![Flow { src: 0, dst: 2, demand: 0.5 }],
            m.num_servers(),
            "ok",
        );
        assert_eq!(tm.total_demand(), 0.5);
        assert_eq!(tm.name(), "ok");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_flows_panics_on_bad_endpoint() {
        TrafficMatrix::from_flows(vec![Flow { src: 0, dst: 99, demand: 1.0 }], 4, "bad");
    }

    #[test]
    fn single_server_has_no_flows() {
        let t = JellyfishBuilder::new(1, 4, 0).build().unwrap();
        let m = ServerMap::new(&t);
        assert_eq!(m.num_servers(), 4);
        let t1 = JellyfishBuilder::new(1, 1, 0).build().unwrap();
        let m1 = ServerMap::new(&t1);
        assert_eq!(m1.num_servers(), 1);
        assert!(TrafficMatrix::random_permutation(&m1, 0).flows().is_empty());
        assert!(TrafficMatrix::all_to_all(&m1).flows().is_empty());
    }
}
