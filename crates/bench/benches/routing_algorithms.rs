//! Benchmarks of the routing machinery: Yen's k-shortest paths, ECMP path
//! enumeration, and the Figure 9 path-diversity accounting, including the
//! ECMP-width / k ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jellyfish_routing::ecmp::all_shortest_paths;
use jellyfish_routing::path_table::{PathTable, RoutingScheme};
use jellyfish_routing::yen::k_shortest_paths;
use jellyfish_topology::JellyfishBuilder;
use jellyfish_traffic::{ServerMap, TrafficMatrix};

fn bench_yen(c: &mut Criterion) {
    let topo = JellyfishBuilder::new(245, 14, 11).seed(1).build().unwrap();
    let g = &topo.csr();
    let mut group = c.benchmark_group("yen_k_shortest_paths");
    for &k in &[1usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| k_shortest_paths(g, 0, 200, k));
        });
    }
    group.finish();
}

fn bench_ecmp(c: &mut Criterion) {
    let topo = JellyfishBuilder::new(245, 14, 11).seed(2).build().unwrap();
    let g = &topo.csr();
    let mut group = c.benchmark_group("ecmp_enumeration");
    for &way in &[8usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(way), &way, |b, &way| {
            b.iter(|| all_shortest_paths(g, 3, 150, way));
        });
    }
    group.finish();
}

fn bench_fig9_path_tables(c: &mut Criterion) {
    // Figure 9 at laptop scale: path table + ranked link path counts for a
    // random permutation on an 80-switch Jellyfish.
    let topo = JellyfishBuilder::new(80, 10, 7).seed(3).build().unwrap();
    let csr = topo.csr();
    let servers = ServerMap::new(&topo);
    let tm = TrafficMatrix::random_permutation(&servers, 9);
    let pairs: Vec<(usize, usize)> =
        tm.switch_demands(&servers).into_iter().map(|(s, d, _)| (s, d)).collect();
    let mut group = c.benchmark_group("fig9_path_diversity");
    group.sample_size(10);
    for (label, scheme) in [
        ("ecmp8", RoutingScheme::ecmp8()),
        ("ecmp64", RoutingScheme::ecmp64()),
        ("ksp8", RoutingScheme::ksp8()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let table = PathTable::build(&csr, scheme, pairs.iter().copied());
                table.ranked_link_path_counts(&csr)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_yen, bench_ecmp, bench_fig9_path_tables
}
criterion_main!(benches);
