//! Benchmarks of the topology substrate: Jellyfish construction (including
//! the naive-retry ablation called out in DESIGN.md), fat-tree generation,
//! incremental expansion, and the path-length machinery behind Figures 1(c)
//! and 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jellyfish_topology::expansion::add_switch;
use jellyfish_topology::fattree::FatTree;
use jellyfish_topology::properties::{path_length_stats, server_pair_histogram};
use jellyfish_topology::rrg::build_naive_retry;
use jellyfish_topology::JellyfishBuilder;

fn bench_jellyfish_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("jellyfish_construction");
    for &n in &[50usize, 200, 800] {
        group.bench_with_input(BenchmarkId::new("swap_completion", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                JellyfishBuilder::new(n, 24, 18).seed(seed).build().unwrap()
            });
        });
    }
    // Ablation: naive configuration-model retry at a size where it still works.
    group.bench_function("naive_retry_n20_r3", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            build_naive_retry(20, 6, 3, seed, 1_000_000).unwrap()
        });
    });
    group.finish();
}

fn bench_fattree_and_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("structured_topologies");
    for &k in &[8usize, 16, 24] {
        group.bench_with_input(BenchmarkId::new("fat_tree", k), &k, |b, &k| {
            b.iter(|| FatTree::new(k).unwrap());
        });
    }
    group.bench_function("incremental_add_rack_n200", |b| {
        let base = JellyfishBuilder::new(200, 24, 18).seed(1).build().unwrap();
        let mut seed = 0u64;
        b.iter(|| {
            let mut topo = base.clone();
            seed += 1;
            add_switch(&mut topo, 24, 6, seed).unwrap()
        });
    });
    group.finish();
}

fn bench_path_lengths(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_length_figures");
    // Figure 1(c) machinery: server-pair histogram for same-equipment pair.
    group.bench_function("fig1c_histogram_k10", |b| {
        let jf = JellyfishBuilder::new(125, 10, 7).seed(3).build().unwrap();
        b.iter(|| server_pair_histogram(&jf));
    });
    // Figure 5 machinery: APSP statistics.
    group.bench_function("fig5_stats_n400_r18", |b| {
        let jf = JellyfishBuilder::new(400, 24, 18).seed(4).build().unwrap();
        b.iter(|| path_length_stats(jf.graph()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_jellyfish_construction, bench_fattree_and_expansion, bench_path_lengths
}
criterion_main!(benches);
