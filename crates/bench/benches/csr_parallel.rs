//! The PR-level numbers for the CSR snapshot refactor: pointer-chasing
//! `Vec<Vec<NodeId>>` adjacency walks vs flat [`CsrGraph`] scans for
//! all-pairs BFS, the additional rayon speedup on top, and serial vs
//! parallel [`PathTable`] construction at paper scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jellyfish_routing::path_table::{PathTable, RoutingScheme};
use jellyfish_routing::shortest::{all_pairs_distances, all_pairs_distances_serial};
use jellyfish_topology::properties::bfs_distances;
use jellyfish_topology::JellyfishBuilder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Paper scale: the Jellyfish equivalent of a k=14 fat-tree (245 switches,
/// 14 ports, 11 network ports) used throughout §5 of the paper.
const N: usize = 245;
const PORTS: usize = 14;
const NET_DEGREE: usize = 11;

fn bench_all_pairs_bfs(c: &mut Criterion) {
    let topo = JellyfishBuilder::new(N, PORTS, NET_DEGREE).seed(1).build().unwrap();
    let g = topo.graph();
    let csr = topo.csr();
    let mut group = c.benchmark_group("all_pairs_bfs");
    group.sample_size(10);
    group.bench_function("adjacency_walk_serial", |b| {
        b.iter(|| {
            let total: usize = (0..g.num_nodes())
                .map(|s| bfs_distances(g, s).iter().filter(|&&d| d != usize::MAX).sum::<usize>())
                .sum();
            black_box(total)
        });
    });
    group.bench_function("csr_serial", |b| {
        b.iter(|| black_box(all_pairs_distances_serial(&csr)));
    });
    group.bench_function("csr_rayon", |b| {
        b.iter(|| black_box(all_pairs_distances(&csr)));
    });
    group.finish();
}

fn bench_path_table_build(c: &mut Criterion) {
    let topo = JellyfishBuilder::new(N, PORTS, NET_DEGREE).seed(2).build().unwrap();
    let csr = topo.csr();
    // A random permutation of the switches, as in the Figure 9 workload.
    let mut dsts: Vec<usize> = (0..N).collect();
    dsts.shuffle(&mut StdRng::seed_from_u64(9));
    let pairs: Vec<(usize, usize)> = (0..N).zip(dsts).filter(|(s, d)| s != d).collect();
    let mut group = c.benchmark_group("path_table_build_ksp8");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            black_box(PathTable::build_serial(&csr, RoutingScheme::ksp8(), pairs.iter().copied()))
        });
    });
    group.bench_function("rayon", |b| {
        b.iter(|| black_box(PathTable::build(&csr, RoutingScheme::ksp8(), pairs.iter().copied())));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all_pairs_bfs, bench_path_table_build
}
criterion_main!(benches);
