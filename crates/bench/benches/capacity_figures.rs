//! Benchmarks of the capacity analyses: the max-concurrent-flow solver (the
//! CPLEX substitute) with its ε ablation, the bisection-bandwidth machinery
//! behind Figures 2(a)/2(b)/7, and the throughput figures 3, 4, 6, 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jellyfish::experiment::{find, Dataset, RunCtx};
use jellyfish::figures::Scale;
use jellyfish_flow::bisection::{jellyfish_full_bisection_cost, min_bisection_heuristic};
use jellyfish_flow::throughput::{normalized_throughput, ThroughputOptions};
use jellyfish_topology::JellyfishBuilder;
use jellyfish_traffic::{ServerMap, TrafficMatrix};

fn bench_mcf_epsilon_ablation(c: &mut Criterion) {
    let topo = JellyfishBuilder::new(60, 10, 6).seed(1).build().unwrap();
    let servers = ServerMap::new(&topo);
    let tm = TrafficMatrix::random_permutation(&servers, 2);
    let mut group = c.benchmark_group("mcf_epsilon_ablation");
    group.sample_size(10);
    for &eps in &[0.15f64, 0.08] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let opts =
                ThroughputOptions { epsilon: eps, stop_at_full: false, ..Default::default() };
            b.iter(|| normalized_throughput(&topo, &servers, &tm, opts));
        });
    }
    group.finish();
}

fn bench_bisection(c: &mut Criterion) {
    let mut group = c.benchmark_group("bisection_figures");
    group.sample_size(10);
    // Figure 2(b): full design-space scan for one port count.
    group.bench_function("fig2b_cost_scan_48_ports", |b| {
        b.iter(|| {
            (10_000..=80_000)
                .step_by(10_000)
                .filter_map(|servers| jellyfish_full_bisection_cost(servers, 48))
                .count()
        });
    });
    // Figure 7 inner loop: Kernighan-Lin bisection of a mid-size topology.
    group.bench_function("fig7_kl_bisection_n60", |b| {
        let topo = JellyfishBuilder::new(60, 24, 12).seed(5).build().unwrap();
        b.iter(|| min_bisection_heuristic(&topo, 2, 1));
    });
    group.finish();
}

/// Runs a registered experiment single-process, as `figures run` would.
fn run_experiment(name: &str, scale: Scale, seed: u64) -> Dataset {
    find(name).expect("experiment is registered").run(&RunCtx::new(scale, seed))
}

fn bench_capacity_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity_figures");
    group.sample_size(10);
    group.bench_function("fig1c_tiny", |b| {
        b.iter(|| run_experiment("fig1c", Scale::Tiny, 1));
    });
    group.bench_function("fig2a_bounds", |b| {
        b.iter(|| run_experiment("fig2a", Scale::Laptop, 0));
    });
    group.bench_function("fig4_swdc_tiny", |b| {
        b.iter(|| run_experiment("fig4", Scale::Tiny, 1));
    });
    group.bench_function("fig6_incremental_tiny", |b| {
        b.iter(|| run_experiment("fig6", Scale::Tiny, 1));
    });
    group.bench_function("fig7_legup_tiny", |b| {
        b.iter(|| run_experiment("fig7", Scale::Tiny, 1));
    });
    group.bench_function("fig8_resilience_tiny", |b| {
        b.iter(|| run_experiment("fig8", Scale::Tiny, 1));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mcf_epsilon_ablation, bench_bisection, bench_capacity_figures
}
criterion_main!(benches);
