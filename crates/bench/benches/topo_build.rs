//! `topo_build`: spec-resolved topology construction at paper scale.
//!
//! Measures the full `TopoSpec` path — parse, registry resolution, generator
//! build, transform application — for the three generator families the
//! paper's headline comparisons use, at the sizes the paper uses. Guards
//! against regressions in the generators themselves (the spec layer on top
//! is string handling measured in microseconds; the builds dominate).

use criterion::{criterion_group, criterion_main, Criterion};
use jellyfish_topology::TopoSpec;

fn build(spec: &str, seed: u64) {
    let spec: TopoSpec = spec.parse().expect("bench spec parses");
    let topo = spec.build(seed).expect("bench spec builds");
    assert!(topo.num_switches() > 0);
}

fn bench_spec_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("topo_build");
    // The paper's same-equipment Jellyfish: 245 switches of 14 ports.
    group.bench_function("jellyfish_paper_245x14", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            build("jellyfish:switches=245,ports=14,degree=11", seed);
        });
    });
    // The k=14 fat-tree it is compared against (deterministic).
    group.bench_function("fattree_paper_k14", |b| {
        b.iter(|| build("fattree:k=14", 0));
    });
    // The Figure 4 SWDC torus at paper size.
    group.bench_function("swdc_paper_torus2d_484", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            build("swdc:lattice=torus2d,n=484,servers=2", seed);
        });
    });
    // A transformed scenario: the Figure 8 failure point plus growth, to
    // time the transform chain on top of the base build.
    group.bench_function("jellyfish_failed_expanded", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            build("jellyfish:switches=245,ports=14,degree=11+fail_links=0.08+expand=8", seed);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_spec_builds);
criterion_main!(benches);
