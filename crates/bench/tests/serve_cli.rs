//! End-to-end tests of the live-topology daemon through the real `figures`
//! binary: a scripted churn-and-query session over stdin/stdout must
//! reproduce the committed golden transcript byte for byte (the same check
//! CI's serve smoke runs in both feature configs), oracle mode must answer
//! every query identically, and the TCP listener must speak the same
//! protocol as the stdio loop.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_figures");

/// The serve smoke configuration: topology, seed, script and golden are one
/// committed unit — regenerate the golden when (and only when) the wire
/// format deliberately changes.
const TOPO: &str = "jellyfish:switches=16,ports=8,degree=5";
const SEED: &str = "7";
const SCRIPT: &str = include_str!("../testdata/serve_session.script");
const GOLDEN: &str = include_str!("../testdata/serve_session.golden.jsonl");

fn serve_args(extra: &[&str]) -> Vec<String> {
    let mut args: Vec<String> =
        ["serve", "--topo", TOPO, "--seed", SEED].iter().map(ToString::to_string).collect();
    args.extend(extra.iter().map(ToString::to_string));
    args
}

/// Runs `figures serve` with the committed script on stdin, returning the
/// process output once the script's `shutdown` op stops it.
fn scripted_session(extra: &[&str]) -> Output {
    let mut child = Command::new(BIN)
        .args(serve_args(extra))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("figures serve starts");
    child.stdin.take().unwrap().write_all(SCRIPT.as_bytes()).expect("script written");
    child.wait_with_output().expect("figures serve exits")
}

#[test]
fn stdio_session_matches_the_committed_golden_transcript() {
    let out = scripted_session(&[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let transcript = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        transcript, GOLDEN,
        "serve transcript drifted from testdata/serve_session.golden.jsonl"
    );
}

/// Oracle mode rebuilds everything per event, so repair accounting differs —
/// but every query reply and error must be byte-identical to the golden.
#[test]
fn oracle_session_answers_queries_byte_identically() {
    let out = scripted_session(&["--oracle"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let transcript = String::from_utf8(out.stdout).unwrap();
    let queries_and_errors = |t: &str| -> Vec<String> {
        t.lines()
            .filter(|l| {
                l.starts_with("{\"ok\":true,\"op\":\"query\"") || l.starts_with("{\"ok\":false")
            })
            .map(str::to_string)
            .collect()
    };
    assert_eq!(queries_and_errors(&transcript), queries_and_errors(GOLDEN));
    assert!(transcript.contains("\"oracle\":true"), "stats must report oracle mode");
}

/// Reads the daemon's stderr until it prints the bound TCP address.
fn bound_addr(stderr: &mut dyn Read) -> String {
    let mut lines = BufReader::new(stderr).lines();
    while let Some(Ok(line)) = lines.next() {
        if let Some(addr) = line.strip_prefix("figures: listening on ") {
            return addr.trim().to_string();
        }
    }
    panic!("daemon never reported its listen address");
}

fn kill(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn tcp_session_speaks_the_same_protocol() {
    let mut child = Command::new(BIN)
        .args(serve_args(&["--tcp", "127.0.0.1:0"]))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("figures serve --tcp starts");
    let addr = bound_addr(child.stderr.as_mut().unwrap());
    let stream = std::net::TcpStream::connect(&addr).expect("connect to daemon");
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(SCRIPT.as_bytes()).expect("script written");
    let mut transcript = String::new();
    BufReader::new(stream).read_to_string(&mut transcript).expect("replies read");
    kill(child);
    assert_eq!(transcript, GOLDEN, "TCP transcript differs from the stdio golden");
}

#[test]
fn serve_rejects_bad_options_with_exit_2() {
    for args in [
        vec!["serve", "--bogus"],
        vec!["serve", "--topo", "nope:what=1"],
        vec!["serve", "--seed", "NaN"],
        vec!["serve", "--topo"],
    ] {
        let out = Command::new(BIN).args(&args).output().expect("figures runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(!String::from_utf8_lossy(&out.stderr).is_empty(), "{args:?}: silent failure");
    }
}
