//! Golden-output guard for the hot-kernel rewrites (PERF.md): the registry
//! experiments must render **byte-identical** output before and after any
//! kernel change, seed for seed, in both the single-process and the
//! sharded-and-merged paths. The goldens in `testdata/` were captured from
//! the pre-rewrite binary with
//! `figures run <experiment> --scale tiny --seed 7`; a diff here means a
//! kernel changed observable results, not just speed.

use jellyfish::experiment::{self, RunCtx, Shard, ShardFragment, WorkPlan};
use jellyfish::figures::Scale;
use jellyfish_bench::merge::{merge_fragments, render_merged};
use jellyfish_bench::render_run;

const SEED: u64 = 7;

const GOLDENS: &[(&str, &str)] = &[
    ("throughput_vs_size", include_str!("../testdata/throughput_vs_size_tiny.golden.tsv")),
    ("bisection", include_str!("../testdata/bisection_tiny.golden.tsv")),
    ("failure_sweep", include_str!("../testdata/failure_sweep_tiny.golden.tsv")),
    ("throughput_vs_workload", include_str!("../testdata/throughput_vs_workload_tiny.golden.tsv")),
];

/// `figures run <exp> --scale tiny --seed 7` reproduces the committed golden
/// bytes under the current build (scalar or `--features simd` alike).
#[test]
fn tiny_runs_match_goldens_byte_for_byte() {
    for (name, golden) in GOLDENS {
        let exp = experiment::find(name).expect("golden experiment is registered");
        let data = exp.run(&RunCtx::new(Scale::Tiny, SEED));
        let rendered = render_run(exp.name(), Scale::Tiny, SEED, None, None, &data);
        assert_eq!(rendered, *golden, "{name}: output drifted from the pre-rewrite golden");
    }
}

/// Splitting the same runs across two shards and merging the fragments
/// reproduces the identical bytes — the launcher path has no seam for the
/// kernels to leak nondeterminism through.
#[test]
fn sharded_merge_matches_goldens_byte_for_byte() {
    for (name, golden) in GOLDENS {
        let exp = experiment::find(name).expect("golden experiment is registered");
        let ctx = RunCtx::new(Scale::Tiny, SEED);
        let num_shards = 2;
        let plan = WorkPlan::plan(exp.work_items(&ctx).len(), num_shards, None);
        let fragments: Vec<ShardFragment> = (1..=num_shards)
            .map(|k| {
                let shard = Shard::new(k, num_shards).expect("valid shard index");
                let timed = exp.run_selected_timed(&ctx, &|i| plan.owns(shard, i));
                ShardFragment {
                    experiment: exp.name().to_string(),
                    scale: Scale::Tiny,
                    seed: SEED,
                    topo: None,
                    traffic: None,
                    shard,
                    timings_us: timed.timings_us,
                    items: timed.items,
                }
            })
            .collect();
        let merged = merge_fragments(&fragments).expect("complete shard set merges");
        let rendered = render_merged(&merged, false);
        assert_eq!(rendered, *golden, "{name}: sharded+merged output drifted from the golden");
    }
}
