//! End-to-end tests of the distributed shard launcher through the real
//! `figures` binary: `figures launch` must print byte-for-byte what
//! `figures run` prints — including when a second launch LPT-partitions by
//! the first launch's timing file, and when workers run through hosts-file
//! command templates — and merge/launch failures must name the experiment,
//! item label, or shard at fault.
//!
//! Uses `fig2b` throughout: 4 work items, microseconds each, so the test
//! cost is process-spawn overhead, not simulation.

use jellyfish::experiment::TimingFile;
use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_figures");

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jf-launch-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn figures(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("figures binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).unwrap()
}

#[test]
fn launch_matches_run_and_a_second_launch_reuses_the_timing_file() {
    let dir = scratch("roundtrip");
    let run = figures(&["run", "fig2b", "--scale", "tiny", "--seed", "7"]);
    assert!(run.status.success(), "{}", stderr(&run));
    let expected = stdout(&run);

    let run1 = dir.join("run1");
    let launched = figures(&[
        "launch",
        "fig2b",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--jobs",
        "3",
        "--run-dir",
        run1.to_str().unwrap(),
    ]);
    assert!(launched.status.success(), "{}", stderr(&launched));
    assert_eq!(stdout(&launched), expected, "launch must be byte-identical to run");

    // The run directory holds per-shard fragments/logs, the merged output,
    // and the aggregated timing file with one non-zero timing per item.
    for k in 1..=3 {
        assert!(run1.join(format!("shard-{k}.jsonl")).exists());
        assert!(run1.join(format!("shard-{k}.log")).exists());
    }
    assert_eq!(std::fs::read_to_string(run1.join("merged.tsv")).unwrap(), expected);
    let timings_path = run1.join("timings.json");
    let tf = TimingFile::from_json(&std::fs::read_to_string(&timings_path).unwrap()).unwrap();
    let fig2b = tf.get("fig2b").expect("timings recorded for fig2b");
    assert_eq!(fig2b.len(), 4, "one timing per work item");
    assert!(fig2b.iter().all(|&t| t > 0), "timings are non-zero: {fig2b:?}");

    // Second launch: LPT-partitioned by the first run's timings, still
    // byte-identical, and it writes a fresh timing file of its own.
    let run2 = dir.join("run2");
    let relaunched = figures(&[
        "launch",
        "fig2b",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--jobs",
        "3",
        "--plan",
        timings_path.to_str().unwrap(),
        "--run-dir",
        run2.to_str().unwrap(),
    ]);
    assert!(relaunched.status.success(), "{}", stderr(&relaunched));
    assert_eq!(stdout(&relaunched), expected, "LPT-planned launch must stay byte-identical");
    assert!(run2.join("timings.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hosts_file_templates_drive_workers_through_sh() {
    let dir = scratch("hosts");
    let hosts = dir.join("hosts");
    // A template that "dispatches" to localhost: the placeholder expands to
    // the quoted worker command and runs under sh -c, the same path an
    // `ssh host {}` template takes.
    std::fs::write(&hosts, "# local pseudo-cluster\n{}\n").unwrap();
    let run = figures(&["run", "fig2b", "--scale", "tiny", "--seed", "7"]);
    let launched = figures(&[
        "launch",
        "fig2b",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--jobs",
        "2",
        "--hosts",
        hosts.to_str().unwrap(),
        "--run-dir",
        dir.join("run").to_str().unwrap(),
    ]);
    assert!(launched.status.success(), "{}", stderr(&launched));
    assert_eq!(stdout(&launched), stdout(&run));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_twice_failing_worker_fails_the_launch_naming_the_shard() {
    let dir = scratch("fail");
    let hosts = dir.join("hosts");
    std::fs::write(&hosts, "exit 7 # {}\n").unwrap();
    let launched = figures(&[
        "launch",
        "fig2b",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--jobs",
        "2",
        "--hosts",
        hosts.to_str().unwrap(),
        "--run-dir",
        dir.join("run").to_str().unwrap(),
    ]);
    assert_eq!(launched.status.code(), Some(2));
    let err = stderr(&launched);
    assert!(err.contains("retrying"), "first failure retries: {err}");
    assert!(err.contains("shard 1/2"), "hard error names the shard: {err}");
    assert!(err.contains("worker exited"), "hard error says why: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_hung_worker_is_killed_at_the_timeout_and_the_launch_fails_fast() {
    let dir = scratch("timeout");
    let hosts = dir.join("hosts");
    // Every worker hangs (the template never runs the real command); with a
    // 1s deadline both attempts are killed, and the launch fails naming the
    // shard instead of blocking on the 60s sleep.
    std::fs::write(&hosts, "sleep 60 # {}\n").unwrap();
    let start = std::time::Instant::now();
    let launched = figures(&[
        "launch",
        "fig2b",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--jobs",
        "2",
        "--timeout-secs",
        "1",
        "--hosts",
        hosts.to_str().unwrap(),
        "--run-dir",
        dir.join("run").to_str().unwrap(),
    ]);
    assert_eq!(launched.status.code(), Some(2));
    let err = stderr(&launched);
    assert!(err.contains("timed out"), "error must say the worker hung: {err}");
    assert!(err.contains("retrying"), "the first timeout still retries: {err}");
    assert!(err.contains("shard"), "hard error names the shard: {err}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "launch must not wait out hung workers ({:?})",
        start.elapsed()
    );

    // Flag validation: a zero deadline is rejected up front.
    let zero = figures(&["launch", "fig2b", "--jobs", "2", "--timeout-secs", "0"]);
    assert_eq!(zero.status.code(), Some(2));
    assert!(stderr(&zero).contains("--timeout-secs"), "{}", stderr(&zero));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_errors_name_the_experiment_and_the_item_label() {
    let dir = scratch("merge-errors");
    let frag = dir.join("shard1.jsonl");
    let half = figures(&["run", "fig2b", "--scale", "tiny", "--seed", "7", "--shard", "1/2"]);
    assert!(half.status.success());
    std::fs::write(&frag, stdout(&half)).unwrap();
    let frag = frag.to_str().unwrap();

    // Same shard file twice: the duplicate is named with its debug label.
    let dup = figures(&["merge", frag, frag]);
    assert_eq!(dup.status.code(), Some(2));
    let err = stderr(&dup);
    assert!(
        err.contains("fig2b: item 0 ('") && err.contains("appears in more than one fragment"),
        "duplicate error must name experiment and label: {err}"
    );

    // Shard 2/2 never merged: the first missing item is named with its label.
    let missing = figures(&["merge", frag]);
    assert_eq!(missing.status.code(), Some(2));
    let err = stderr(&missing);
    assert!(
        err.contains("fig2b: incomplete shard set: item 1 ('") && err.contains("is missing"),
        "missing-item error must name experiment and label: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn launch_flag_validation_is_strict() {
    let no_jobs = figures(&["launch", "fig2b", "--scale", "tiny"]);
    assert_eq!(no_jobs.status.code(), Some(2));
    assert!(stderr(&no_jobs).contains("--jobs"), "{}", stderr(&no_jobs));

    let shard = figures(&["launch", "fig2b", "--jobs", "2", "--shard", "1/2"]);
    assert_eq!(shard.status.code(), Some(2));
    assert!(stderr(&shard).contains("--jobs N instead of --shard"), "{}", stderr(&shard));

    let bad_plan = figures(&["run", "fig2b", "--plan", "/nonexistent.json"]);
    assert_eq!(bad_plan.status.code(), Some(2));
    assert!(
        stderr(&bad_plan).contains("--plan only affects sharded runs"),
        "{}",
        stderr(&bad_plan)
    );

    let unreadable = figures(&["run", "fig2b", "--shard", "1/2", "--plan", "/nonexistent.json"]);
    assert_eq!(unreadable.status.code(), Some(2));
    assert!(stderr(&unreadable).contains("cannot read --plan"), "{}", stderr(&unreadable));
}
