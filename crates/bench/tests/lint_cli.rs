//! End-to-end tests of `figures lint` through the real binary: the
//! determinism linter must (a) pass the actual workspace tree — the
//! byte-identical-output contract holds on main — and (b) report violating
//! fixtures with exact `file:line:col` diagnostics and exit code 1.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_figures");

/// Repository root (this file lives at `crates/bench/tests/`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

fn figures(args: &[&str]) -> Output {
    Command::new(BIN).args(args).current_dir(repo_root()).output().expect("figures binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

#[test]
fn the_workspace_lints_clean() {
    // The repo-wide guard: any un-annotated D01–D06 finding anywhere under
    // crates/ fails this test the same way it fails CI.
    let out = figures(&["lint", "crates"]);
    assert!(out.status.success(), "workspace has determinism findings:\n{}", stdout(&out));
    assert!(stdout(&out).contains("0 finding(s)"));
}

#[test]
fn violating_fixture_exits_one_with_exact_diagnostic() {
    let fixture = "crates/detlint/testdata/d01_violation.rs";
    let out = figures(&["lint", fixture]);
    assert_eq!(out.status.code(), Some(1), "expected findings to exit 1");
    let text = stdout(&out);
    // The fixture-path directive relocates the diagnostics to the virtual
    // result-path location, with exact line:col anchors.
    assert!(
        text.contains("crates/routing/src/fixture.rs:6:11: D01:"),
        "missing exact diagnostic:\n{text}"
    );
    assert!(text.contains("3 finding(s)"), "{text}");
}

#[test]
fn json_output_is_machine_readable() {
    let fixture = "crates/detlint/testdata/d02_violation.rs";
    let out = figures(&["lint", "--json", fixture]);
    assert_eq!(out.status.code(), Some(1));
    let json = stdout(&out);
    for key in ["\"tool\":\"detlint\"", "\"rule\":\"D02\"", "\"line\":6", "\"findings\":["] {
        assert!(json.contains(key), "JSON missing {key}:\n{json}");
    }
}

#[test]
fn list_rules_names_the_registry() {
    let out = figures(&["lint", "--list-rules"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for rule in ["D01", "D02", "D03", "D04", "D05", "D06"] {
        assert!(text.contains(rule), "--list-rules missing {rule}:\n{text}");
    }
}

#[test]
fn unknown_option_is_a_usage_error() {
    let out = figures(&["lint", "--nope"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_path_is_a_hard_error() {
    let out = figures(&["lint", "no/such/dir"]);
    assert_eq!(out.status.code(), Some(2));
}
