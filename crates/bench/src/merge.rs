//! Shard-fragment merging shared by `figures merge` and `figures launch`.
//!
//! A merge takes the [`ShardFragment`]s of all `N` shards of one or more
//! experiments and recombines them into the datasets a single-process
//! `figures run` would have produced, byte-for-byte. Before combining
//! anything it validates the whole set: every fragment must name a
//! registered experiment, fragments of one experiment must agree on
//! `(scale, seed, topo, traffic)`, per-item timings (when present) must pair up with
//! the items, and the items must cover the experiment's work-item list
//! exactly — no duplicates, no gaps. Violations are reported with the
//! experiment name *and* the offending item's debug label, so "item 7 is
//! missing" reads as "item 7 ('jellyfish 96sw x16') is missing".

use jellyfish::experiment::{self, Dataset, Experiment, RunCtx, ShardFragment};
use jellyfish::figures::Scale;
use jellyfish_topology::TopoSpec;
use jellyfish_traffic::TrafficSpec;

/// One merged experiment: the run configuration the fragments agreed on and
/// the recombined dataset, ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRun {
    /// Registered experiment name.
    pub name: &'static str,
    /// Scale all fragments ran at.
    pub scale: Scale,
    /// Seed all fragments ran with.
    pub seed: u64,
    /// The `--topo` override all fragments ran with, if any.
    pub topo: Option<String>,
    /// The `--traffic` override all fragments ran with, if any.
    pub traffic: Option<String>,
    /// The dataset, identical to an unsharded [`Experiment::run`].
    pub data: Dataset,
}

/// The valid experiment-name choices as one comma-separated string (`all`
/// first, then the registry in canonical order) — the list every
/// unknown-name error cites, in the CLI and here.
pub fn experiment_names() -> String {
    let mut names = vec!["all"];
    names.extend(experiment::names());
    names.join(", ")
}

/// Validates and merges a set of fragments (from any number of experiments),
/// returning one [`MergedRun`] per experiment in canonical registry order —
/// the order `figures run all` evaluates in.
pub fn merge_fragments(fragments: &[ShardFragment]) -> Result<Vec<MergedRun>, String> {
    for f in fragments {
        if experiment::find(&f.experiment).is_none() {
            return Err(format!(
                "unknown experiment '{}' in fragment: valid experiments are {}",
                f.experiment,
                experiment_names()
            ));
        }
    }
    let mut merged = Vec::new();
    for exp in experiment::registry() {
        let group: Vec<&ShardFragment> =
            fragments.iter().filter(|f| f.experiment == exp.name()).collect();
        if group.is_empty() {
            continue;
        }
        merged.push(merge_group(*exp, &group)?);
    }
    Ok(merged)
}

/// All fragments of one `(experiment, scale, seed, topo)` group, with the
/// merge validation `figures merge` applies: full, duplicate-free item
/// coverage under a consistent run configuration, and per-item timings that
/// pair up with the items wherever they are present.
fn merge_group(exp: &dyn Experiment, fragments: &[&ShardFragment]) -> Result<MergedRun, String> {
    let name = exp.name();
    let (scale, seed) = (fragments[0].scale, fragments[0].seed);
    let topo = fragments[0].topo.clone();
    let traffic = fragments[0].traffic.clone();
    for f in fragments {
        if f.scale != scale || f.seed != seed {
            return Err(format!(
                "{name}: fragments disagree on scale/seed \
                 ({scale}/{seed} vs {}/{}); shards of one sweep must share both",
                f.scale, f.seed
            ));
        }
        if f.topo != topo {
            return Err(format!(
                "{name}: fragments disagree on --topo ({} vs {}); \
                 shards of one sweep must share the topology override",
                topo.as_deref().unwrap_or("<none>"),
                f.topo.as_deref().unwrap_or("<none>")
            ));
        }
        if f.traffic != traffic {
            return Err(format!(
                "{name}: fragments disagree on --traffic ({} vs {}); \
                 shards of one sweep must share the workload override",
                traffic.as_deref().unwrap_or("<none>"),
                f.traffic.as_deref().unwrap_or("<none>")
            ));
        }
        if !f.timings_us.is_empty() && f.timings_us.len() != f.items.len() {
            return Err(format!(
                "{name}: fragment {} carries {} timings for {} items; \
                 the file is corrupt or truncated",
                f.shard,
                f.timings_us.len(),
                f.items.len()
            ));
        }
    }
    let mut ctx = RunCtx::new(scale, seed);
    if let Some(raw) = &topo {
        let spec: TopoSpec = raw
            .parse()
            .map_err(|e| format!("{name}: fragment has an unparsable topo spec '{raw}': {e}"))?;
        if !exp.supports_topo_override() {
            return Err(format!("{name}: fragment carries --topo but the experiment is fixed"));
        }
        ctx = ctx.with_topo(spec);
    }
    if let Some(raw) = &traffic {
        let spec: TrafficSpec = raw
            .parse()
            .map_err(|e| format!("{name}: fragment has an unparsable traffic spec '{raw}': {e}"))?;
        if !exp.supports_traffic_override() {
            return Err(format!(
                "{name}: fragment carries --traffic but the experiment's workload is fixed"
            ));
        }
        ctx = ctx.with_traffic(spec);
    }
    let work_items = exp.work_items(&ctx);
    let expected = work_items.len();
    let mut seen = vec![false; expected];
    let mut items = Vec::new();
    let mut columns: Option<&[String]> = None;
    let mut meta: Vec<(&str, &str)> = Vec::new();
    for f in fragments {
        for item in &f.items {
            // Pre-validate what Dataset::concat asserts, so corrupted or
            // version-skewed fragment files fail cleanly instead of panicking.
            for (k, v) in &item.data.meta {
                match meta.iter().find(|(ek, _)| ek == k) {
                    Some((_, ev)) if ev != v => {
                        return Err(format!(
                            "{name}: fragments disagree on metadata '{k}' ('{ev}' vs '{v}'); \
                             were they produced by different builds?"
                        ));
                    }
                    Some(_) => {}
                    None => meta.push((k, v)),
                }
            }
            if !item.data.columns.is_empty() {
                match columns {
                    None => columns = Some(&item.data.columns),
                    Some(cols) if cols != item.data.columns.as_slice() => {
                        return Err(format!(
                            "{name}: fragments disagree on table columns \
                             ({cols:?} vs {:?}); were they produced by different builds?",
                            item.data.columns
                        ));
                    }
                    Some(_) => {}
                }
            }
            if item.index >= expected {
                return Err(format!(
                    "{name}: fragment {} has item {} but the experiment only has {expected} \
                     work items at scale {scale}",
                    f.shard, item.index
                ));
            }
            if seen[item.index] {
                return Err(format!(
                    "{name}: item {} ('{}') appears in more than one fragment (same shard \
                     file passed twice?)",
                    item.index, work_items[item.index].label
                ));
            }
            seen[item.index] = true;
            items.push(item.clone());
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(format!(
            "{name}: incomplete shard set: item {missing} ('{}') of {expected} is missing \
             (pass the fragment files of all N shards)",
            work_items[missing].label
        ));
    }
    Ok(MergedRun { name, scale, seed, topo, traffic, data: exp.merge(items) })
}

/// Renders merged runs exactly as `figures run` prints them (TSV blocks, or
/// one JSON line each with `json`).
pub fn render_merged(runs: &[MergedRun], json: bool) -> String {
    let mut out = String::new();
    for run in runs {
        let rendered = if json {
            crate::render_run_json(
                run.name,
                run.scale,
                run.seed,
                run.topo.as_deref(),
                run.traffic.as_deref(),
                &run.data,
            )
        } else {
            crate::render_run(
                run.name,
                run.scale,
                run.seed,
                run.topo.as_deref(),
                run.traffic.as_deref(),
                &run.data,
            )
        };
        out.push_str(&rendered);
    }
    out
}
