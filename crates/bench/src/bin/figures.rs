//! `figures` — regenerate the data behind every figure and table of the
//! Jellyfish paper through the experiment registry, and build arbitrary
//! topologies through the `TopoSpec` generator registry.
//!
//! Usage:
//!
//! ```text
//! figures list
//! figures run <experiment|all> [--scale tiny|laptop|paper] [--seed N]
//!                              [--topo <spec>] [--json]
//! figures run <experiment|all> --shard K/N [--scale ...] [--seed N] [--topo <spec>]
//! figures merge <file...> [--json]
//! figures topo list
//! figures topo show <spec>
//! figures topo build <spec> [--seed N]
//! figures <experiment|all> [...]      # shorthand for `figures run`
//! ```
//!
//! `figures list` prints every registered experiment (see EXPERIMENTS.md for
//! the per-experiment schema). `figures run` evaluates experiments and
//! prints one TSV block per experiment (or one JSON line with `--json`);
//! `run all` evaluates every experiment except `fig12`, which duplicates
//! `fig11`'s sweep byte-for-byte.
//! With `--shard K/N` it evaluates only the K-th of N slices of each
//! experiment's work items and prints one shard-fragment JSON line per
//! experiment; `figures merge` recombines fragment files from all N shards
//! and prints byte-for-byte what the unsharded `figures run` would have.
//!
//! `--topo <spec>` redirects the topology-generic experiments
//! (`throughput_vs_size`, `path_length`, `bisection`, `failure_sweep`) at
//! any registered topology spec; `figures topo list` names the generators
//! and transforms and TOPOLOGIES.md documents the grammar.
//!
//! Unknown experiment names, scales, seeds, specs and shard specs are hard
//! errors (exit code 2) listing the valid choices — never silent fallbacks.

use jellyfish::experiment::{self, Experiment, RunCtx, Shard, ShardFragment};
use jellyfish::figures::Scale;
use jellyfish_bench::{render_run, render_run_json};
use jellyfish_topology::properties::path_length_stats;
use jellyfish_topology::spec::{self, TopoSpec};
use std::process::ExitCode;

const USAGE: &str = "usage: figures <command> [options]

commands:
  list                      list the registered experiments
  run <experiment|all>      evaluate experiments and print their datasets
  merge <file...>           merge `run --shard` fragment files
  topo list                 list the registered topology generators/transforms
  topo show <spec>          parse a topology spec and print its structure
  topo build <spec>         build a topology spec and print its properties

run options:
  --scale tiny|laptop|paper   instance-size preset (default: laptop)
  --seed N                    base seed (default: 2012)
  --topo <spec>               topology override for the generic experiments
                              (throughput_vs_size, path_length, bisection,
                              failure_sweep); see TOPOLOGIES.md
  --shard K/N                 run only the K-th of N slices of the work
                              items and print mergeable JSON fragments
  --json                      print JSON instead of TSV (non-shard runs)

merge options:
  --json                      print JSON instead of TSV

topo build options:
  --seed N                    build seed (default: 2012)";

fn fail(message: &str) -> ExitCode {
    eprintln!("figures: {message}");
    ExitCode::from(2)
}

fn experiment_names() -> String {
    let mut names = vec!["all"];
    names.extend(experiment::names());
    names.join(", ")
}

/// Parsed `run` options, every flag validated (no silent fallbacks).
struct RunOptions {
    scale: Scale,
    seed: u64,
    topo: Option<TopoSpec>,
    shard: Option<Shard>,
    json: bool,
}

impl RunOptions {
    fn ctx(&self) -> RunCtx {
        let ctx = RunCtx::new(self.scale, self.seed);
        match &self.topo {
            Some(spec) => ctx.with_topo(spec.clone()),
            None => ctx,
        }
    }

    fn topo_string(&self) -> Option<String> {
        self.topo.as_ref().map(|s| s.to_string())
    }
}

fn flag_value<'a>(args: &'a [String], i: usize, name: &str) -> Result<&'a str, String> {
    args.get(i + 1).map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, String> {
    let mut opts =
        RunOptions { scale: Scale::Laptop, seed: 2012, topo: None, shard: None, json: false };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = flag_value(args, i, "--scale")?.parse().map_err(|e| format!("{e}"))?;
                i += 2;
            }
            "--seed" => {
                let raw = flag_value(args, i, "--seed")?;
                opts.seed = raw.parse().map_err(|_| {
                    format!("unparsable --seed '{raw}': expected an unsigned integer")
                })?;
                i += 2;
            }
            "--topo" => {
                let raw = flag_value(args, i, "--topo")?;
                opts.topo = Some(raw.parse().map_err(|e| format!("unparsable --topo: {e}"))?);
                i += 2;
            }
            "--shard" => {
                opts.shard = Some(flag_value(args, i, "--shard")?.parse()?);
                i += 2;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    if opts.shard.is_some() && opts.json {
        return Err("--shard output is always JSON; drop --json".to_string());
    }
    Ok(opts)
}

fn resolve_experiments(name: &str) -> Result<Vec<&'static dyn Experiment>, String> {
    if name == "all" {
        // fig12 reruns fig11's sweep byte-for-byte (the paper presents the
        // same data twice), so `all` evaluates it once under the fig11 name;
        // `figures run fig12` still works on its own.
        return Ok(experiment::registry()
            .iter()
            .copied()
            .filter(|e| e.name() != "fig12")
            .collect());
    }
    experiment::find(name).map(|e| vec![e]).ok_or_else(|| {
        format!("unknown experiment '{name}': valid experiments are {}", experiment_names())
    })
}

fn cmd_list(args: &[String]) -> ExitCode {
    if let Some(extra) = args.first() {
        return fail(&format!("list takes no arguments (got '{extra}')\n\n{USAGE}"));
    }
    for exp in experiment::registry() {
        let topo = if exp.supports_topo_override() { " [--topo]" } else { "" };
        println!("{}\t{}{topo}", exp.name(), exp.describe());
    }
    ExitCode::SUCCESS
}

fn cmd_run(name: &str, args: &[String]) -> ExitCode {
    let opts = match parse_run_options(args) {
        Ok(opts) => opts,
        Err(e) => return fail(&e),
    };
    let experiments = match resolve_experiments(name) {
        Ok(exps) => exps,
        Err(e) => return fail(&e),
    };
    if opts.topo.is_some() {
        if let Some(fixed) = experiments.iter().find(|e| !e.supports_topo_override()) {
            let generic: Vec<&str> = experiment::registry()
                .iter()
                .filter(|e| e.supports_topo_override())
                .map(|e| e.name())
                .collect();
            return fail(&format!(
                "'{}' does not take --topo (its topology pairing is the experiment); \
                 --topo works with {}",
                fixed.name(),
                generic.join(", ")
            ));
        }
    }
    // A spec can parse but still be unbuildable (odd fat-tree k, infeasible
    // degree, config index out of range). Probe-build it once here so the
    // user gets a clean exit-2 error instead of a panic from a worker.
    if let Some(spec) = &opts.topo {
        if let Err(e) = spec.build(opts.seed) {
            return fail(&format!("--topo '{spec}' does not build: {e}"));
        }
    }
    for exp in experiments {
        let ctx = opts.ctx();
        match opts.shard {
            Some(shard) => {
                let fragment = ShardFragment {
                    experiment: exp.name().to_string(),
                    scale: opts.scale,
                    seed: opts.seed,
                    topo: opts.topo_string(),
                    shard,
                    items: exp.run_shard(&ctx, shard),
                };
                println!("{}", fragment.to_json());
            }
            None => {
                let data = exp.run(&ctx);
                let topo = opts.topo_string();
                let rendered = if opts.json {
                    render_run_json(exp.name(), opts.scale, opts.seed, topo.as_deref(), &data)
                } else {
                    render_run(exp.name(), opts.scale, opts.seed, topo.as_deref(), &data)
                };
                print!("{rendered}");
            }
        }
    }
    ExitCode::SUCCESS
}

/// All fragments of one `(experiment, scale, seed, topo)` group, with the
/// merge validation `figures merge` applies: full, duplicate-free item
/// coverage under a consistent run configuration.
fn merge_group(
    exp: &dyn Experiment,
    fragments: &[&ShardFragment],
) -> Result<(Scale, u64, Option<String>, jellyfish::experiment::Dataset), String> {
    let name = exp.name();
    let (scale, seed) = (fragments[0].scale, fragments[0].seed);
    let topo = fragments[0].topo.clone();
    for f in fragments {
        if f.scale != scale || f.seed != seed {
            return Err(format!(
                "{name}: fragments disagree on scale/seed \
                 ({scale}/{seed} vs {}/{}); shards of one sweep must share both",
                f.scale, f.seed
            ));
        }
        if f.topo != topo {
            return Err(format!(
                "{name}: fragments disagree on --topo ({} vs {}); \
                 shards of one sweep must share the topology override",
                topo.as_deref().unwrap_or("<none>"),
                f.topo.as_deref().unwrap_or("<none>")
            ));
        }
    }
    let mut ctx = RunCtx::new(scale, seed);
    if let Some(raw) = &topo {
        let spec: TopoSpec = raw
            .parse()
            .map_err(|e| format!("{name}: fragment has an unparsable topo spec '{raw}': {e}"))?;
        if !exp.supports_topo_override() {
            return Err(format!("{name}: fragment carries --topo but the experiment is fixed"));
        }
        ctx = ctx.with_topo(spec);
    }
    let expected = exp.work_items(&ctx).len();
    let mut seen = vec![false; expected];
    let mut items = Vec::new();
    let mut columns: Option<&[String]> = None;
    let mut meta: Vec<(&str, &str)> = Vec::new();
    for f in fragments {
        for item in &f.items {
            // Pre-validate what Dataset::concat asserts, so corrupted or
            // version-skewed fragment files fail cleanly instead of panicking.
            for (k, v) in &item.data.meta {
                match meta.iter().find(|(ek, _)| ek == k) {
                    Some((_, ev)) if ev != v => {
                        return Err(format!(
                            "{name}: fragments disagree on metadata '{k}' ('{ev}' vs '{v}'); \
                             were they produced by different builds?"
                        ));
                    }
                    Some(_) => {}
                    None => meta.push((k, v)),
                }
            }
            if !item.data.columns.is_empty() {
                match columns {
                    None => columns = Some(&item.data.columns),
                    Some(cols) if cols != item.data.columns.as_slice() => {
                        return Err(format!(
                            "{name}: fragments disagree on table columns \
                             ({cols:?} vs {:?}); were they produced by different builds?",
                            item.data.columns
                        ));
                    }
                    Some(_) => {}
                }
            }
            if item.index >= expected {
                return Err(format!(
                    "{name}: fragment {} has item {} but the experiment only has {expected} \
                     work items at scale {scale}",
                    f.shard, item.index
                ));
            }
            if seen[item.index] {
                return Err(format!(
                    "{name}: item {} appears in more than one fragment (same shard file \
                     passed twice?)",
                    item.index
                ));
            }
            seen[item.index] = true;
            items.push(item.clone());
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(format!(
            "{name}: incomplete shard set: item {missing} of {expected} is missing \
             (pass the fragment files of all N shards)"
        ));
    }
    Ok((scale, seed, topo, exp.merge(items)))
}

fn cmd_merge(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown option '{flag}'\n\n{USAGE}"))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return fail("merge needs at least one fragment file");
    }
    let mut fragments: Vec<ShardFragment> = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => return fail(&format!("cannot read '{file}': {e}")),
        };
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match ShardFragment::from_json(line) {
                Ok(frag) => fragments.push(frag),
                Err(e) => return fail(&format!("{file}:{}: {e}", lineno + 1)),
            }
        }
    }
    for f in &fragments {
        if experiment::find(&f.experiment).is_none() {
            return fail(&format!(
                "unknown experiment '{}' in fragment: valid experiments are {}",
                f.experiment,
                experiment_names()
            ));
        }
    }
    // Validate every group before printing anything, then print per
    // experiment in canonical registry order — the same order `figures run
    // all` evaluates in.
    let mut merged = Vec::new();
    for exp in experiment::registry() {
        let group: Vec<&ShardFragment> =
            fragments.iter().filter(|f| f.experiment == exp.name()).collect();
        if group.is_empty() {
            continue;
        }
        match merge_group(*exp, &group) {
            Ok((scale, seed, topo, data)) => merged.push((exp.name(), scale, seed, topo, data)),
            Err(e) => return fail(&e),
        }
    }
    for (name, scale, seed, topo, data) in &merged {
        let rendered = if json {
            render_run_json(name, *scale, *seed, topo.as_deref(), data)
        } else {
            render_run(name, *scale, *seed, topo.as_deref(), data)
        };
        print!("{rendered}");
    }
    ExitCode::SUCCESS
}

// ------------------------------------------------------------------ topo

fn cmd_topo_list(args: &[String]) -> ExitCode {
    if let Some(extra) = args.first() {
        return fail(&format!("topo list takes no arguments (got '{extra}')\n\n{USAGE}"));
    }
    println!("generators:");
    for g in spec::generators() {
        println!("  {}\t{}\te.g. {}", g.name(), g.describe(), g.example());
    }
    println!("transforms (chain with '+'):");
    println!("  {}", spec::transform_grammar());
    ExitCode::SUCCESS
}

fn parse_spec_arg(args: &[String]) -> Result<(TopoSpec, u64), String> {
    let Some(raw) = args.first() else {
        return Err("expected a topology spec (try `figures topo list`)".to_string());
    };
    let spec: TopoSpec = raw.parse().map_err(|e| format!("{e}"))?;
    let mut seed = 2012u64;
    let rest = &args[1..];
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed" => {
                let raw = flag_value(rest, i, "--seed")?;
                seed = raw.parse().map_err(|_| {
                    format!("unparsable --seed '{raw}': expected an unsigned integer")
                })?;
                i += 2;
            }
            other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    Ok((spec, seed))
}

fn cmd_topo_show(args: &[String]) -> ExitCode {
    let (spec, _) = match parse_spec_arg(args) {
        Ok(parsed) => parsed,
        Err(e) => return fail(&e),
    };
    let generator = match spec.resolve() {
        Ok(g) => g,
        Err(e) => return fail(&format!("{e}")),
    };
    println!("spec\t{spec}");
    println!("generator\t{}\t{}", generator.name(), generator.describe());
    for (k, v) in spec.params().pairs() {
        println!("param\t{k}\t{v}");
    }
    for t in spec.transforms() {
        println!("transform\t{t}");
    }
    ExitCode::SUCCESS
}

fn cmd_topo_build(args: &[String]) -> ExitCode {
    let (spec, seed) = match parse_spec_arg(args) {
        Ok(parsed) => parsed,
        Err(e) => return fail(&e),
    };
    let topo = match spec.build(seed) {
        Ok(topo) => topo,
        Err(e) => return fail(&format!("{e}")),
    };
    let stats = path_length_stats(topo.graph());
    println!("spec\t{spec}");
    println!("seed\t{seed}");
    println!("name\t{}", topo.name());
    println!("switches\t{}", topo.num_switches());
    println!("links\t{}", topo.num_links());
    println!("servers\t{}", topo.total_servers());
    println!("total_ports\t{}", topo.total_ports());
    println!("connected\t{}", topo.graph().is_connected());
    println!("mean_path_length\t{}", stats.mean);
    println!("diameter\t{}", stats.diameter);
    ExitCode::SUCCESS
}

fn cmd_topo(args: &[String]) -> ExitCode {
    let Some(sub) = args.first() else {
        return fail(&format!("topo needs a subcommand: list, show, build\n\n{USAGE}"));
    };
    match sub.as_str() {
        "list" => cmd_topo_list(&args[1..]),
        "show" => cmd_topo_show(&args[1..]),
        "build" => cmd_topo_build(&args[1..]),
        other => fail(&format!("unknown topo subcommand '{other}': valid are list, show, build")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return fail(USAGE);
    };
    match command.as_str() {
        "list" => cmd_list(&args[1..]),
        "run" => {
            let Some(name) = args.get(1) else {
                return fail(&format!(
                    "run needs an experiment name: valid experiments are {}",
                    experiment_names()
                ));
            };
            cmd_run(name, &args[2..])
        }
        "merge" => cmd_merge(&args[1..]),
        "topo" => cmd_topo(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        // Shorthand: `figures fig3 --scale tiny` == `figures run fig3 ...`.
        name => cmd_run(name, &args[1..]),
    }
}
