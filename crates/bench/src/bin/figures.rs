//! `figures` — regenerate the data behind every figure and table of the
//! Jellyfish paper.
//!
//! Usage:
//!
//! ```text
//! figures <experiment> [--scale paper|laptop|tiny] [--seed N]
//! figures all          [--scale laptop]
//! ```
//!
//! Experiments: `fig1c`, `fig2a`, `fig2b`, `fig2c`, `fig3`, `fig4`, `fig5`,
//! `fig6`, `fig7`, `fig8`, `fig9`, `table1`, `fig10`, `fig11`, `fig12`,
//! `fig13`, `fig14`. Output is a tab-separated table on stdout; see
//! EXPERIMENTS.md for how each maps onto the paper's plots.

use jellyfish::figures::{self, Scale};
use jellyfish_bench::{render_rows, render_series_table};

fn parse_scale(args: &[String]) -> Scale {
    match args.iter().position(|a| a == "--scale").and_then(|i| args.get(i + 1)).map(String::as_str)
    {
        Some("paper") => Scale::Paper,
        Some("tiny") => Scale::Tiny,
        _ => Scale::Laptop,
    }
}

fn parse_seed(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2012)
}

fn run_experiment(name: &str, scale: Scale, seed: u64) {
    println!("== {name} (scale: {scale:?}, seed: {seed}) ==");
    match name {
        "fig1c" => print!("{}", render_series_table(&figures::fig1c_path_length_cdf(scale, seed))),
        "fig2a" => print!("{}", render_series_table(&figures::fig2a_bisection_vs_servers())),
        "fig2b" => print!("{}", render_series_table(&figures::fig2b_equipment_cost())),
        "fig2c" => {
            print!("{}", render_series_table(&figures::fig2c_servers_at_full_capacity(scale, seed)))
        }
        "fig3" => print!("{}", render_series_table(&figures::fig3_degree_diameter(scale, seed))),
        "fig4" => print!("{}", render_rows(&figures::fig4_swdc_comparison(scale, seed))),
        "fig5" => {
            print!("{}", render_series_table(&figures::fig5_path_length_vs_size(scale, seed)))
        }
        "fig6" => {
            print!("{}", render_series_table(&figures::fig6_incremental_vs_scratch(scale, seed)))
        }
        "fig7" => {
            println!("budget\tjellyfish_bisection\tclos_bisection\tservers");
            for s in figures::fig7_legup_comparison(scale, seed) {
                println!(
                    "{:.0}\t{:.4}\t{:.4}\t{}",
                    s.cumulative_budget, s.jellyfish_bisection, s.clos_bisection, s.servers
                );
            }
        }
        "fig8" => print!("{}", render_series_table(&figures::fig8_failure_resilience(scale, seed))),
        "fig9" => print!("{}", render_series_table(&figures::fig9_path_diversity(scale, seed))),
        "table1" => {
            println!("congestion_control\tfat-tree ECMP\tjellyfish ECMP\tjellyfish 8-KSP");
            for (label, ft, jf_ecmp, jf_ksp) in figures::table1(scale, seed) {
                println!(
                    "{label}\t{:.1}%\t{:.1}%\t{:.1}%",
                    ft * 100.0,
                    jf_ecmp * 100.0,
                    jf_ksp * 100.0
                );
            }
        }
        "fig10" => {
            println!("servers\toptimal\tpacket_level");
            for (servers, optimal, packet) in figures::fig10_packet_vs_optimal(scale, seed) {
                println!("{servers}\t{optimal:.4}\t{packet:.4}");
            }
        }
        "fig11" | "fig12" => {
            println!("equipment_ports\tfattree_servers\tfattree_throughput\tjellyfish_servers\tjellyfish_throughput");
            for (ports, fts, fttp, jfs, jftp) in figures::fig11_12_packet_capacity(scale, seed) {
                println!("{ports}\t{fts}\t{fttp:.4}\t{jfs}\t{jftp:.4}");
            }
        }
        "fig13" => {
            for (label, tputs, jain) in figures::fig13_fairness(scale, seed) {
                println!("{label}: {} flows, Jain index {:.4}", tputs.len(), jain);
                let preview: Vec<String> =
                    tputs.iter().take(10).map(|t| format!("{t:.3}")).collect();
                println!("  lowest flows: {}", preview.join(", "));
            }
        }
        "fig14" => {
            print!("{}", render_series_table(&figures::fig14_cable_localization(scale, seed)))
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: figures <experiment|all> [--scale paper|laptop|tiny] [--seed N]");
        std::process::exit(2);
    };
    let scale = parse_scale(&args);
    let seed = parse_seed(&args);
    let all = [
        "fig1c", "fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "table1", "fig10", "fig11", "fig13", "fig14",
    ];
    if name == "all" {
        for n in all {
            run_experiment(n, scale, seed);
        }
    } else {
        run_experiment(name, scale, seed);
    }
}
