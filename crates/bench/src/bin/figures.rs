//! `figures` — regenerate the data behind every figure and table of the
//! Jellyfish paper through the experiment registry.
//!
//! Usage:
//!
//! ```text
//! figures list
//! figures run <experiment|all> [--scale tiny|laptop|paper] [--seed N] [--json]
//! figures run <experiment|all> --shard K/N [--scale ...] [--seed N]
//! figures merge <file...> [--json]
//! figures <experiment|all> [...]      # shorthand for `figures run`
//! ```
//!
//! `figures list` prints every registered experiment (see EXPERIMENTS.md for
//! the per-experiment schema). `figures run` evaluates experiments and
//! prints one TSV block per experiment (or one JSON line with `--json`);
//! `run all` evaluates every experiment except `fig12`, which duplicates
//! `fig11`'s sweep byte-for-byte.
//! With `--shard K/N` it evaluates only the K-th of N slices of each
//! experiment's work items and prints one shard-fragment JSON line per
//! experiment; `figures merge` recombines fragment files from all N shards
//! and prints byte-for-byte what the unsharded `figures run` would have.
//!
//! Unknown experiment names, scales, seeds and shard specs are hard errors
//! (exit code 2) listing the valid choices — never silent fallbacks.

use jellyfish::experiment::{self, Experiment, Shard, ShardFragment};
use jellyfish::figures::Scale;
use jellyfish_bench::{render_run, render_run_json};
use std::process::ExitCode;

const USAGE: &str = "usage: figures <command> [options]

commands:
  list                      list the registered experiments
  run <experiment|all>      evaluate experiments and print their datasets
  merge <file...>           merge `run --shard` fragment files

run options:
  --scale tiny|laptop|paper   instance-size preset (default: laptop)
  --seed N                    base seed (default: 2012)
  --shard K/N                 run only the K-th of N slices of the work
                              items and print mergeable JSON fragments
  --json                      print JSON instead of TSV (non-shard runs)

merge options:
  --json                      print JSON instead of TSV";

fn fail(message: &str) -> ExitCode {
    eprintln!("figures: {message}");
    ExitCode::from(2)
}

fn experiment_names() -> String {
    let mut names = vec!["all"];
    names.extend(experiment::names());
    names.join(", ")
}

/// Parsed `run` options, every flag validated (no silent fallbacks).
struct RunOptions {
    scale: Scale,
    seed: u64,
    shard: Option<Shard>,
    json: bool,
}

fn flag_value<'a>(args: &'a [String], i: usize, name: &str) -> Result<&'a str, String> {
    args.get(i + 1).map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions { scale: Scale::Laptop, seed: 2012, shard: None, json: false };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = flag_value(args, i, "--scale")?.parse().map_err(|e| format!("{e}"))?;
                i += 2;
            }
            "--seed" => {
                let raw = flag_value(args, i, "--seed")?;
                opts.seed = raw.parse().map_err(|_| {
                    format!("unparsable --seed '{raw}': expected an unsigned integer")
                })?;
                i += 2;
            }
            "--shard" => {
                opts.shard = Some(flag_value(args, i, "--shard")?.parse()?);
                i += 2;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    if opts.shard.is_some() && opts.json {
        return Err("--shard output is always JSON; drop --json".to_string());
    }
    Ok(opts)
}

fn resolve_experiments(name: &str) -> Result<Vec<&'static dyn Experiment>, String> {
    if name == "all" {
        // fig12 reruns fig11's sweep byte-for-byte (the paper presents the
        // same data twice), so `all` evaluates it once under the fig11 name;
        // `figures run fig12` still works on its own.
        return Ok(experiment::registry()
            .iter()
            .copied()
            .filter(|e| e.name() != "fig12")
            .collect());
    }
    experiment::find(name).map(|e| vec![e]).ok_or_else(|| {
        format!("unknown experiment '{name}': valid experiments are {}", experiment_names())
    })
}

fn cmd_list(args: &[String]) -> ExitCode {
    if let Some(extra) = args.first() {
        return fail(&format!("list takes no arguments (got '{extra}')\n\n{USAGE}"));
    }
    for exp in experiment::registry() {
        println!("{}\t{}", exp.name(), exp.describe());
    }
    ExitCode::SUCCESS
}

fn cmd_run(name: &str, args: &[String]) -> ExitCode {
    let opts = match parse_run_options(args) {
        Ok(opts) => opts,
        Err(e) => return fail(&e),
    };
    let experiments = match resolve_experiments(name) {
        Ok(exps) => exps,
        Err(e) => return fail(&e),
    };
    for exp in experiments {
        match opts.shard {
            Some(shard) => {
                let fragment = ShardFragment {
                    experiment: exp.name().to_string(),
                    scale: opts.scale,
                    seed: opts.seed,
                    shard,
                    items: exp.run_shard(opts.scale, opts.seed, shard),
                };
                println!("{}", fragment.to_json());
            }
            None => {
                let data = exp.run(opts.scale, opts.seed);
                let rendered = if opts.json {
                    render_run_json(exp.name(), opts.scale, opts.seed, &data)
                } else {
                    render_run(exp.name(), opts.scale, opts.seed, &data)
                };
                print!("{rendered}");
            }
        }
    }
    ExitCode::SUCCESS
}

/// All fragments of one `(experiment, scale, seed)` group, with the merge
/// validation `figures merge` applies: full, duplicate-free item coverage.
fn merge_group(
    exp: &dyn Experiment,
    fragments: &[&ShardFragment],
) -> Result<(Scale, u64, jellyfish::experiment::Dataset), String> {
    let name = exp.name();
    let (scale, seed) = (fragments[0].scale, fragments[0].seed);
    for f in fragments {
        if f.scale != scale || f.seed != seed {
            return Err(format!(
                "{name}: fragments disagree on scale/seed \
                 ({scale}/{seed} vs {}/{}); shards of one sweep must share both",
                f.scale, f.seed
            ));
        }
    }
    let expected = exp.work_items(scale, seed).len();
    let mut seen = vec![false; expected];
    let mut items = Vec::new();
    let mut columns: Option<&[String]> = None;
    for f in fragments {
        for item in &f.items {
            // Pre-validate what Dataset::concat asserts, so corrupted or
            // version-skewed fragment files fail cleanly instead of panicking.
            if !item.data.columns.is_empty() {
                match columns {
                    None => columns = Some(&item.data.columns),
                    Some(cols) if cols != item.data.columns.as_slice() => {
                        return Err(format!(
                            "{name}: fragments disagree on table columns \
                             ({cols:?} vs {:?}); were they produced by different builds?",
                            item.data.columns
                        ));
                    }
                    Some(_) => {}
                }
            }
            if item.index >= expected {
                return Err(format!(
                    "{name}: fragment {} has item {} but the experiment only has {expected} \
                     work items at scale {scale}",
                    f.shard, item.index
                ));
            }
            if seen[item.index] {
                return Err(format!(
                    "{name}: item {} appears in more than one fragment (same shard file \
                     passed twice?)",
                    item.index
                ));
            }
            seen[item.index] = true;
            items.push(item.clone());
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(format!(
            "{name}: incomplete shard set: item {missing} of {expected} is missing \
             (pass the fragment files of all N shards)"
        ));
    }
    Ok((scale, seed, exp.merge(items)))
}

fn cmd_merge(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown option '{flag}'\n\n{USAGE}"))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return fail("merge needs at least one fragment file");
    }
    let mut fragments: Vec<ShardFragment> = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => return fail(&format!("cannot read '{file}': {e}")),
        };
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match ShardFragment::from_json(line) {
                Ok(frag) => fragments.push(frag),
                Err(e) => return fail(&format!("{file}:{}: {e}", lineno + 1)),
            }
        }
    }
    for f in &fragments {
        if experiment::find(&f.experiment).is_none() {
            return fail(&format!(
                "unknown experiment '{}' in fragment: valid experiments are {}",
                f.experiment,
                experiment_names()
            ));
        }
    }
    // Validate every group before printing anything, then print per
    // experiment in canonical registry order — the same order `figures run
    // all` evaluates in.
    let mut merged = Vec::new();
    for exp in experiment::registry() {
        let group: Vec<&ShardFragment> =
            fragments.iter().filter(|f| f.experiment == exp.name()).collect();
        if group.is_empty() {
            continue;
        }
        match merge_group(*exp, &group) {
            Ok((scale, seed, data)) => merged.push((exp.name(), scale, seed, data)),
            Err(e) => return fail(&e),
        }
    }
    for (name, scale, seed, data) in &merged {
        let rendered = if json {
            render_run_json(name, *scale, *seed, data)
        } else {
            render_run(name, *scale, *seed, data)
        };
        print!("{rendered}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return fail(USAGE);
    };
    match command.as_str() {
        "list" => cmd_list(&args[1..]),
        "run" => {
            let Some(name) = args.get(1) else {
                return fail(&format!(
                    "run needs an experiment name: valid experiments are {}",
                    experiment_names()
                ));
            };
            cmd_run(name, &args[2..])
        }
        "merge" => cmd_merge(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        // Shorthand: `figures fig3 --scale tiny` == `figures run fig3 ...`.
        name => cmd_run(name, &args[1..]),
    }
}
