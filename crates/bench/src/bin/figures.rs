//! `figures` — regenerate the data behind every figure and table of the
//! Jellyfish paper through the experiment registry, and build arbitrary
//! topologies through the `TopoSpec` generator registry.
//!
//! Usage:
//!
//! ```text
//! figures list
//! figures run <experiment|all> [--scale tiny|laptop|paper] [--seed N]
//!                              [--topo <spec>] [--traffic <spec>] [--json]
//! figures run <experiment|all> --shard K/N [--plan <timings.json>]
//!                              [--scale ...] [--seed N] [--topo <spec>]
//!                              [--traffic <spec>]
//! figures launch <experiment|all> --jobs N [--plan <timings.json>]
//!                              [--hosts <file>] [--run-dir <dir>]
//!                              [--timeout-secs N] [--scale ...] [--seed N]
//!                              [--topo <spec>] [--traffic <spec>] [--json]
//! figures merge <file...> [--json]
//! figures bench [--scale tiny|laptop|paper] [--seed N] [--out <file>]
//! figures lint [--json] [paths...]
//! figures topo list
//! figures topo show <spec>
//! figures topo build <spec> [--seed N]
//! figures traffic list
//! figures traffic show <spec>
//! figures <experiment|all> [...]      # shorthand for `figures run`
//! ```
//!
//! `figures list` prints every registered experiment (see EXPERIMENTS.md for
//! the per-experiment schema). `figures run` evaluates experiments and
//! prints one TSV block per experiment (or one JSON line with `--json`);
//! `run all` evaluates every experiment except `fig12`, which duplicates
//! `fig11`'s sweep byte-for-byte.
//! With `--shard K/N` it evaluates only the K-th of N slices of each
//! experiment's work items and prints one shard-fragment JSON line per
//! experiment (with per-item wall-clock timings); `figures merge` recombines
//! fragment files from all N shards and prints byte-for-byte what the
//! unsharded `figures run` would have. By default shards stripe the work
//! items; with `--plan <timings.json>` (a prior launch's timing file) they
//! LPT-bin-pack by measured cost instead, falling back to striping when the
//! file has no matching timings.
//!
//! `figures launch` is the one-command distributed driver: it spawns the N
//! shard workers itself (locally, or through `--hosts` command templates),
//! streams their fragments into `--run-dir`, retries each failed worker
//! once (after an exponential backoff; with `--timeout-secs N` a worker
//! still running after N seconds is killed and counts as failed), merges,
//! and writes the run's own `timings.json` — see the "Distributed runs"
//! section of EXPERIMENTS.md.
//!
//! `figures lint` runs the workspace determinism linter (the `detlint`
//! crate — see LINTS.md) over the given paths (default `crates/`): static
//! enforcement of the byte-identical-output contract behind every
//! shard/launch/merge equality above. Exit 1 on findings, with exact
//! `file:line:col` diagnostics.
//!
//! `--topo <spec>` redirects the topology-generic experiments
//! (`throughput_vs_size`, `path_length`, `bisection`, `failure_sweep`) at
//! any registered topology spec; `figures topo list` names the generators
//! and transforms and TOPOLOGIES.md documents the grammar. `--traffic <spec>`
//! does the same for the workload axis of the traffic-capable experiments
//! (`throughput_vs_size`, `failure_sweep`, `throughput_vs_workload`,
//! `fairness_under_skew`, `incast_degradation`); `figures traffic list`
//! names the workload generators and TRAFFIC.md documents the grammar.
//!
//! Unknown experiment names, scales, seeds, specs and shard specs are hard
//! errors (exit code 2) listing the valid choices — never silent fallbacks.

use jellyfish::experiment::{self, Experiment, RunCtx, Shard, ShardFragment, TimingFile, WorkPlan};
use jellyfish::figures::Scale;
use jellyfish_bench::bench_report;
use jellyfish_bench::launch::{self, LaunchConfig};
use jellyfish_bench::merge::{experiment_names, merge_fragments, render_merged};
use jellyfish_bench::{render_run, render_run_json};
use jellyfish_sim::net::LinkParams;
use jellyfish_topology::properties::path_length_stats;
use jellyfish_topology::spec::{self, TopoSpec};
use jellyfish_traffic::{ServerMap, TrafficSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: figures <command> [options]

commands:
  list                      list the registered experiments
  run <experiment|all>      evaluate experiments and print their datasets
  launch <experiment|all>   spawn N shard workers, merge their fragments
  merge <file...>           merge `run --shard` fragment files
  bench                     time the hot kernels against their scalar
                            baselines and write a BENCH_*.json report
                            (see PERF.md)
  lint [paths...]           run the determinism linter (detlint) over the
                            given files/directories (default: crates/);
                            see LINTS.md for the rules and pragma grammar
  topo list                 list the registered topology generators/transforms
  topo show <spec>          parse a topology spec and print its structure
  topo build <spec>         build a topology spec and print its properties
  traffic list              list the registered workload generators/transforms
  traffic show <spec>       parse a traffic spec and print its structure

run options:
  --scale tiny|laptop|paper   instance-size preset (default: laptop)
  --seed N                    base seed (default: 2012)
  --topo <spec>               topology override for the generic experiments
                              (throughput_vs_size, path_length, bisection,
                              failure_sweep); see TOPOLOGIES.md
  --traffic <spec>            workload override for the traffic-capable
                              experiments (throughput_vs_size, failure_sweep,
                              throughput_vs_workload, fairness_under_skew,
                              incast_degradation); see TRAFFIC.md
  --shard K/N                 run only the K-th of N slices of the work
                              items and print mergeable JSON fragments
  --plan <timings.json>       with --shard: partition by a prior run's
                              per-item timings (LPT bin-packing) instead of
                              striping; falls back to striping when the file
                              has no matching timings
  --json                      print JSON instead of TSV (non-shard runs)

launch options (plus --scale, --seed, --topo, --traffic, --plan, --json as
above):
  --jobs N                    number of worker processes / shards (required)
  --hosts <file>              worker command templates, one per line
                              ('{}' is replaced by the quoted worker
                              command, e.g. 'ssh build-01 {}'); default is
                              local re-exec of this binary
  --run-dir <dir>             where fragments, worker logs, timings.json and
                              the merged output land
                              (default: figures-runs/<name>-<scale>-<seed>)
  --timeout-secs N            per-worker wall-clock deadline: an attempt
                              still running after N seconds is killed and
                              counts as failed (then retried once, like any
                              other failure); default is no deadline

merge options:
  --json                      print JSON instead of TSV

lint options:
  --json                      print one machine-readable JSON object
  --list-rules                print the rule registry and exit

bench options:
  --scale tiny|laptop|paper   instance-size preset (default: laptop; the
                              laptop sizes are the tracked targets)
  --seed N                    topology seed (default: 2012)
  --out <file>                report path (default: BENCH_9.json)

topo build options:
  --seed N                    build seed (default: 2012)";

fn fail(message: &str) -> ExitCode {
    eprintln!("figures: {message}");
    ExitCode::from(2)
}

/// Parsed `run` options, every flag validated (no silent fallbacks).
struct RunOptions {
    scale: Scale,
    seed: u64,
    topo: Option<TopoSpec>,
    traffic: Option<TrafficSpec>,
    shard: Option<Shard>,
    plan: Option<String>,
    json: bool,
}

impl RunOptions {
    fn ctx(&self) -> RunCtx {
        let mut ctx = RunCtx::new(self.scale, self.seed);
        if let Some(spec) = &self.topo {
            ctx = ctx.with_topo(spec.clone());
        }
        if let Some(spec) = &self.traffic {
            ctx = ctx.with_traffic(spec.clone());
        }
        ctx
    }

    fn topo_string(&self) -> Option<String> {
        self.topo.as_ref().map(std::string::ToString::to_string)
    }

    fn traffic_string(&self) -> Option<String> {
        self.traffic.as_ref().map(std::string::ToString::to_string)
    }
}

fn flag_value<'a>(args: &'a [String], i: usize, name: &str) -> Result<&'a str, String> {
    args.get(i + 1).map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions {
        scale: Scale::Laptop,
        seed: 2012,
        topo: None,
        traffic: None,
        shard: None,
        plan: None,
        json: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = flag_value(args, i, "--scale")?.parse().map_err(|e| format!("{e}"))?;
                i += 2;
            }
            "--seed" => {
                let raw = flag_value(args, i, "--seed")?;
                opts.seed = raw.parse().map_err(|_| {
                    format!("unparsable --seed '{raw}': expected an unsigned integer")
                })?;
                i += 2;
            }
            "--topo" => {
                let raw = flag_value(args, i, "--topo")?;
                opts.topo = Some(raw.parse().map_err(|e| format!("unparsable --topo: {e}"))?);
                i += 2;
            }
            "--traffic" => {
                let raw = flag_value(args, i, "--traffic")?;
                opts.traffic = Some(raw.parse().map_err(|e| format!("unparsable --traffic: {e}"))?);
                i += 2;
            }
            "--shard" => {
                opts.shard = Some(flag_value(args, i, "--shard")?.parse()?);
                i += 2;
            }
            "--plan" => {
                opts.plan = Some(flag_value(args, i, "--plan")?.to_string());
                i += 2;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    if opts.shard.is_some() && opts.json {
        return Err("--shard output is always JSON; drop --json".to_string());
    }
    Ok(opts)
}

/// Loads a `--plan` timing file and checks it measured the same run
/// configuration. An unreadable or unparsable file is a hard error (the flag
/// was explicit); a file from a different `(scale, topo)` run is merely
/// useless for balancing this one, so workers note it and stripe instead.
fn load_plan(opts: &RunOptions) -> Result<Option<TimingFile>, String> {
    let Some(path) = &opts.plan else { return Ok(None) };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read --plan '{path}': {e}"))?;
    let tf = TimingFile::from_json(&text)
        .map_err(|e| format!("--plan '{path}' is not a timing file: {e}"))?;
    if tf.scale != opts.scale
        || tf.topo != opts.topo_string()
        || tf.traffic != opts.traffic_string()
    {
        eprintln!(
            "figures: note: --plan '{path}' measured scale {} topo {} traffic {}; this run is \
             scale {} topo {} traffic {}, so shards fall back to striping",
            tf.scale,
            tf.topo.as_deref().unwrap_or("<none>"),
            tf.traffic.as_deref().unwrap_or("<none>"),
            opts.scale,
            opts.topo_string().as_deref().unwrap_or("<none>"),
            opts.traffic_string().as_deref().unwrap_or("<none>")
        );
        return Ok(None);
    }
    Ok(Some(tf))
}

fn resolve_experiments(name: &str) -> Result<Vec<&'static dyn Experiment>, String> {
    if name == "all" {
        // fig12 reruns fig11's sweep byte-for-byte (the paper presents the
        // same data twice), so `all` evaluates it once under the fig11 name;
        // `figures run fig12` still works on its own.
        return Ok(experiment::registry()
            .iter()
            .copied()
            .filter(|e| e.name() != "fig12")
            .collect());
    }
    experiment::find(name).map(|e| vec![e]).ok_or_else(|| {
        format!("unknown experiment '{name}': valid experiments are {}", experiment_names())
    })
}

fn cmd_list(args: &[String]) -> ExitCode {
    if let Some(extra) = args.first() {
        return fail(&format!("list takes no arguments (got '{extra}')\n\n{USAGE}"));
    }
    for exp in experiment::registry() {
        let topo = if exp.supports_topo_override() { " [--topo]" } else { "" };
        let traffic = if exp.supports_traffic_override() { " [--traffic]" } else { "" };
        println!("{}\t{}{topo}{traffic}", exp.name(), exp.describe());
    }
    ExitCode::SUCCESS
}

/// The names of the experiments that take `--traffic`, for error messages.
fn traffic_capable_names() -> String {
    let names: Vec<&str> = experiment::registry()
        .iter()
        .filter(|e| e.supports_traffic_override())
        .map(|e| e.name())
        .collect();
    names.join(", ")
}

/// Checks a `--traffic` override against the selected experiments: every one
/// must take the override, and the spec must actually generate on the first
/// work item's topology (a parse-clean spec can still fail on a given server
/// count — incast fanin bounds, zipf needing two racks). Probing here turns
/// worker panics into a clean exit-2 error, matching the `--topo` probe.
fn check_traffic_override(
    tspec: &TrafficSpec,
    experiments: &[&'static dyn Experiment],
    opts: &RunOptions,
) -> Result<(), String> {
    if let Some(fixed) = experiments.iter().find(|e| !e.supports_traffic_override()) {
        return Err(format!(
            "'{}' does not take --traffic (its workload is the experiment); \
             --traffic works with {}",
            fixed.name(),
            traffic_capable_names()
        ));
    }
    let ctx = opts.ctx();
    if let Some(exp) = experiments.first() {
        if let Some(item) = exp.work_items(&ctx).first() {
            let snap = ctx
                .spec_snapshot(item.spec(), opts.seed)
                .map_err(|e| format!("cannot build '{}': {e}", item.spec()))?;
            let servers = ServerMap::new(&snap.topology);
            tspec
                .stream(&servers, opts.seed)
                .map_err(|e| format!("--traffic '{tspec}' does not build: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_run(name: &str, args: &[String]) -> ExitCode {
    let opts = match parse_run_options(args) {
        Ok(opts) => opts,
        Err(e) => return fail(&e),
    };
    if opts.plan.is_some() && opts.shard.is_none() {
        return fail("--plan only affects sharded runs; add --shard K/N (or use launch)");
    }
    let experiments = match resolve_experiments(name) {
        Ok(exps) => exps,
        Err(e) => return fail(&e),
    };
    if opts.topo.is_some() {
        if let Some(fixed) = experiments.iter().find(|e| !e.supports_topo_override()) {
            let generic: Vec<&str> = experiment::registry()
                .iter()
                .filter(|e| e.supports_topo_override())
                .map(|e| e.name())
                .collect();
            return fail(&format!(
                "'{}' does not take --topo (its topology pairing is the experiment); \
                 --topo works with {}",
                fixed.name(),
                generic.join(", ")
            ));
        }
    }
    // A spec can parse but still be unbuildable (odd fat-tree k, infeasible
    // degree, config index out of range). Probe-build it once here so the
    // user gets a clean exit-2 error instead of a panic from a worker.
    if let Some(spec) = &opts.topo {
        if let Err(e) = spec.build(opts.seed) {
            return fail(&format!("--topo '{spec}' does not build: {e}"));
        }
    }
    if let Some(tspec) = &opts.traffic {
        if let Err(e) = check_traffic_override(tspec, &experiments, &opts) {
            return fail(&e);
        }
    }
    let plan = match load_plan(&opts) {
        Ok(plan) => plan,
        Err(e) => return fail(&e),
    };
    for exp in experiments {
        let ctx = opts.ctx();
        match opts.shard {
            Some(shard) => {
                let num_items = exp.work_items(&ctx).len();
                let timings = plan.as_ref().and_then(|tf| tf.get(exp.name()));
                let work_plan = WorkPlan::plan(num_items, shard.count, timings);
                let timed = exp.run_selected_timed(&ctx, &|i| work_plan.owns(shard, i));
                let fragment = ShardFragment {
                    experiment: exp.name().to_string(),
                    scale: opts.scale,
                    seed: opts.seed,
                    topo: opts.topo_string(),
                    traffic: opts.traffic_string(),
                    shard,
                    timings_us: timed.timings_us,
                    items: timed.items,
                };
                println!("{}", fragment.to_json());
            }
            None => {
                let data = exp.run(&ctx);
                let topo = opts.topo_string();
                let traffic = opts.traffic_string();
                let rendered = if opts.json {
                    render_run_json(
                        exp.name(),
                        opts.scale,
                        opts.seed,
                        topo.as_deref(),
                        traffic.as_deref(),
                        &data,
                    )
                } else {
                    render_run(
                        exp.name(),
                        opts.scale,
                        opts.seed,
                        topo.as_deref(),
                        traffic.as_deref(),
                        &data,
                    )
                };
                print!("{rendered}");
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_merge(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown option '{flag}'\n\n{USAGE}"))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return fail("merge needs at least one fragment file");
    }
    let mut fragments: Vec<ShardFragment> = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => return fail(&format!("cannot read '{file}': {e}")),
        };
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match ShardFragment::from_json(line) {
                Ok(frag) => fragments.push(frag),
                Err(e) => return fail(&format!("{file}:{}: {e}", lineno + 1)),
            }
        }
    }
    // Validate every group before printing anything, then print per
    // experiment in canonical registry order — the same order `figures run
    // all` evaluates in (jellyfish_bench::merge shares this path with the
    // launcher).
    match merge_fragments(&fragments) {
        Ok(merged) => {
            print!("{}", render_merged(&merged, json));
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

// ----------------------------------------------------------------- bench

fn cmd_bench(args: &[String]) -> ExitCode {
    let mut scale = Scale::Laptop;
    let mut seed = 2012u64;
    let mut out = PathBuf::from("BENCH_9.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = match flag_value(args, i, "--scale")
                    .and_then(|raw| raw.parse().map_err(|e| format!("{e}")))
                {
                    Ok(scale) => scale,
                    Err(e) => return fail(&e),
                };
                i += 2;
            }
            "--seed" => {
                let raw = match flag_value(args, i, "--seed") {
                    Ok(raw) => raw,
                    Err(e) => return fail(&e),
                };
                seed = match raw.parse() {
                    Ok(seed) => seed,
                    Err(_) => {
                        return fail(&format!(
                            "unparsable --seed '{raw}': expected an unsigned integer"
                        ))
                    }
                };
                i += 2;
            }
            "--out" => {
                out = match flag_value(args, i, "--out") {
                    Ok(path) => PathBuf::from(path),
                    Err(e) => return fail(&e),
                };
                i += 2;
            }
            other => return fail(&format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    eprintln!("figures: benching hot kernels at scale {scale} (seed {seed})...");
    let records = bench_report::run_suite(scale, seed);
    let report = bench_report::render_report(scale, seed, &records);
    if let Err(e) = std::fs::write(&out, &report) {
        return fail(&format!("cannot write '{}': {e}", out.display()));
    }
    print!("{report}");
    eprintln!("figures: wrote {}", out.display());
    ExitCode::SUCCESS
}

// ------------------------------------------------------------------ lint

/// `figures lint [--json] [--list-rules] [paths...]` — the determinism
/// linter, wired through the same `detlint` library the standalone binary
/// uses (`cargo run -p detlint`). Exit 0 clean, 1 findings, 2 errors.
fn cmd_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for rule in detlint::rules::registry() {
                    println!("{}\t{}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown option '{flag}'\n\n{USAGE}"))
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }
    match detlint::lint_paths(&paths) {
        Ok(report) => {
            if json {
                print!("{}", detlint::render_json(&report));
            } else {
                print!("{}", detlint::render_text(&report));
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(&e),
    }
}

// ---------------------------------------------------------------- launch

fn cmd_launch(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return fail(&format!(
            "launch needs an experiment name: valid experiments are {}",
            experiment_names()
        ));
    };
    let experiments = match resolve_experiments(name) {
        Ok(exps) => exps,
        Err(e) => return fail(&e),
    };
    let parsed = parse_launch_options(&args[1..]);
    let (jobs, opts, hosts_file, run_dir, timeout) = match parsed {
        Ok(parsed) => parsed,
        Err(e) => return fail(&e),
    };
    if opts.topo.is_some() {
        if let Some(fixed) = experiments.iter().find(|e| !e.supports_topo_override()) {
            return fail(&format!(
                "'{}' does not take --topo (its topology pairing is the experiment)",
                fixed.name()
            ));
        }
    }
    if let Some(spec) = &opts.topo {
        if let Err(e) = spec.build(opts.seed) {
            return fail(&format!("--topo '{spec}' does not build: {e}"));
        }
    }
    if let Some(tspec) = &opts.traffic {
        if let Err(e) = check_traffic_override(tspec, &experiments, &opts) {
            return fail(&e);
        }
    }
    // Surface an unreadable/unparsable --plan here, before any worker spawns
    // (the workers re-validate it themselves).
    if let Err(e) = load_plan(&opts) {
        return fail(&e);
    }
    let hosts = match &hosts_file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let hosts = launch::parse_hosts_file(&text);
                if hosts.is_empty() {
                    return fail(&format!("--hosts '{path}' has no command templates"));
                }
                hosts
            }
            Err(e) => return fail(&format!("cannot read --hosts '{path}': {e}")),
        },
        None => Vec::new(),
    };
    let run_dir = run_dir.unwrap_or_else(|| {
        PathBuf::from(format!("figures-runs/{name}-{}-{}", opts.scale, opts.seed))
    });
    let cfg = LaunchConfig {
        name: name.clone(),
        jobs,
        scale: opts.scale,
        seed: opts.seed,
        topo: opts.topo_string(),
        traffic: opts.traffic_string(),
        plan: opts.plan.as_ref().map(PathBuf::from),
        hosts,
        run_dir,
        timeout,
        json: opts.json,
    };
    match launch::launch(&cfg) {
        Ok(rendered) => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

/// Parses `launch` flags: the shared run flags plus `--jobs`, `--hosts`,
/// `--run-dir`, `--timeout-secs`. `--jobs` is required; `--shard` is the
/// launcher's to assign.
#[allow(clippy::type_complexity)]
fn parse_launch_options(
    args: &[String],
) -> Result<(usize, RunOptions, Option<String>, Option<PathBuf>, Option<Duration>), String> {
    let mut jobs: Option<usize> = None;
    let mut hosts_file: Option<String> = None;
    let mut run_dir: Option<PathBuf> = None;
    let mut timeout: Option<Duration> = None;
    let mut run_flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let raw = flag_value(args, i, "--jobs")?;
                let n: usize = raw.parse().map_err(|_| {
                    format!("unparsable --jobs '{raw}': expected a positive integer")
                })?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                jobs = Some(n);
                i += 2;
            }
            "--timeout-secs" => {
                let raw = flag_value(args, i, "--timeout-secs")?;
                let n: u64 = raw.parse().map_err(|_| {
                    format!("unparsable --timeout-secs '{raw}': expected a positive integer")
                })?;
                if n == 0 {
                    return Err("--timeout-secs must be at least 1".to_string());
                }
                timeout = Some(Duration::from_secs(n));
                i += 2;
            }
            "--hosts" => {
                hosts_file = Some(flag_value(args, i, "--hosts")?.to_string());
                i += 2;
            }
            "--run-dir" => {
                run_dir = Some(PathBuf::from(flag_value(args, i, "--run-dir")?));
                i += 2;
            }
            "--shard" => {
                return Err(
                    "launch assigns the shards itself; use --jobs N instead of --shard".to_string()
                );
            }
            "--scale" | "--seed" | "--topo" | "--traffic" | "--plan" => {
                run_flags.push(args[i].clone());
                run_flags.push(flag_value(args, i, &args[i])?.to_string());
                i += 2;
            }
            "--json" => {
                run_flags.push(args[i].clone());
                i += 1;
            }
            other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    let Some(jobs) = jobs else {
        return Err("launch needs --jobs N (the number of worker processes)".to_string());
    };
    let opts = parse_run_options(&run_flags)?;
    Ok((jobs, opts, hosts_file, run_dir, timeout))
}

// ------------------------------------------------------------------ topo

fn cmd_topo_list(args: &[String]) -> ExitCode {
    if let Some(extra) = args.first() {
        return fail(&format!("topo list takes no arguments (got '{extra}')\n\n{USAGE}"));
    }
    println!("generators:");
    for g in spec::generators() {
        println!("  {}\t{}\te.g. {}", g.name(), g.describe(), g.example());
    }
    println!("transforms (chain with '+'):");
    println!("  {}", spec::transform_grammar());
    ExitCode::SUCCESS
}

fn parse_spec_arg(args: &[String]) -> Result<(TopoSpec, u64), String> {
    let Some(raw) = args.first() else {
        return Err("expected a topology spec (try `figures topo list`)".to_string());
    };
    let spec: TopoSpec = raw.parse().map_err(|e| format!("{e}"))?;
    let mut seed = 2012u64;
    let rest = &args[1..];
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed" => {
                let raw = flag_value(rest, i, "--seed")?;
                seed = raw.parse().map_err(|_| {
                    format!("unparsable --seed '{raw}': expected an unsigned integer")
                })?;
                i += 2;
            }
            other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    Ok((spec, seed))
}

fn cmd_topo_show(args: &[String]) -> ExitCode {
    let (spec, _) = match parse_spec_arg(args) {
        Ok(parsed) => parsed,
        Err(e) => return fail(&e),
    };
    let generator = match spec.resolve() {
        Ok(g) => g,
        Err(e) => return fail(&format!("{e}")),
    };
    println!("spec\t{spec}");
    println!("generator\t{}\t{}", generator.name(), generator.describe());
    for (k, v) in spec.params().pairs() {
        println!("param\t{k}\t{v}");
    }
    for t in spec.transforms() {
        println!("transform\t{t}");
    }
    // The simulator's per-link baseline, so a run's provenance is readable
    // off the spec alone: every link starts from these defaults, and the
    // `impair` line (the field-wise merge of the spec's `+impair=` chain)
    // shows what the wire layer does on top — including any `queue:` buffer
    // override.
    let link = LinkParams::default();
    println!("link\trate\t{}", link.rate);
    println!("link\tdelay\t{}", link.delay);
    println!("link\tbuffer\t{}", link.buffer);
    if let Some(cfg) = spec.impairment() {
        println!("impair\t{cfg}");
    }
    ExitCode::SUCCESS
}

fn cmd_topo_build(args: &[String]) -> ExitCode {
    let (spec, seed) = match parse_spec_arg(args) {
        Ok(parsed) => parsed,
        Err(e) => return fail(&e),
    };
    let topo = match spec.build(seed) {
        Ok(topo) => topo,
        Err(e) => return fail(&format!("{e}")),
    };
    let stats = path_length_stats(topo.graph());
    println!("spec\t{spec}");
    println!("seed\t{seed}");
    println!("name\t{}", topo.name());
    println!("switches\t{}", topo.num_switches());
    println!("links\t{}", topo.num_links());
    println!("servers\t{}", topo.total_servers());
    println!("total_ports\t{}", topo.total_ports());
    println!("connected\t{}", topo.graph().is_connected());
    println!("mean_path_length\t{}", stats.mean);
    println!("diameter\t{}", stats.diameter);
    ExitCode::SUCCESS
}

// --------------------------------------------------------------- traffic

fn cmd_traffic_list(args: &[String]) -> ExitCode {
    if let Some(extra) = args.first() {
        return fail(&format!("traffic list takes no arguments (got '{extra}')\n\n{USAGE}"));
    }
    println!("generators:");
    for g in jellyfish_traffic::generators() {
        println!("  {}\t{}\te.g. {}", g.name(), g.describe(), g.example());
    }
    println!("transforms (chain with '+'):");
    println!("  {}", jellyfish_traffic::transform_grammar());
    ExitCode::SUCCESS
}

fn cmd_traffic_show(args: &[String]) -> ExitCode {
    let Some(raw) = args.first() else {
        return fail("expected a traffic spec (try `figures traffic list`)");
    };
    if let Some(extra) = args.get(1) {
        return fail(&format!("traffic show takes one spec (got '{extra}')\n\n{USAGE}"));
    }
    let spec: TrafficSpec = match raw.parse() {
        Ok(spec) => spec,
        Err(e) => return fail(&format!("{e}")),
    };
    if let Err(e) = spec.validate() {
        return fail(&format!("{e}"));
    }
    let generator = jellyfish_traffic::find_generator(spec.generator())
        .expect("a parsed spec names a registered generator");
    println!("spec\t{spec}");
    println!("generator\t{}\t{}", generator.name(), generator.describe());
    for (k, v) in spec.params().pairs() {
        println!("param\t{k}\t{v}");
    }
    for t in spec.transforms() {
        println!("transform\t{t}");
    }
    println!("epochs\t{}", spec.epochs());
    println!("demand_scale\t{}", spec.demand_scale());
    ExitCode::SUCCESS
}

fn cmd_traffic(args: &[String]) -> ExitCode {
    let Some(sub) = args.first() else {
        return fail(&format!("traffic needs a subcommand: list, show\n\n{USAGE}"));
    };
    match sub.as_str() {
        "list" => cmd_traffic_list(&args[1..]),
        "show" => cmd_traffic_show(&args[1..]),
        other => fail(&format!("unknown traffic subcommand '{other}': valid are list, show")),
    }
}

fn cmd_topo(args: &[String]) -> ExitCode {
    let Some(sub) = args.first() else {
        return fail(&format!("topo needs a subcommand: list, show, build\n\n{USAGE}"));
    };
    match sub.as_str() {
        "list" => cmd_topo_list(&args[1..]),
        "show" => cmd_topo_show(&args[1..]),
        "build" => cmd_topo_build(&args[1..]),
        other => fail(&format!("unknown topo subcommand '{other}': valid are list, show, build")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return fail(USAGE);
    };
    match command.as_str() {
        "list" => cmd_list(&args[1..]),
        "run" => {
            let Some(name) = args.get(1) else {
                return fail(&format!(
                    "run needs an experiment name: valid experiments are {}",
                    experiment_names()
                ));
            };
            cmd_run(name, &args[2..])
        }
        "launch" => cmd_launch(&args[1..]),
        "merge" => cmd_merge(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "topo" => cmd_topo(&args[1..]),
        "traffic" => cmd_traffic(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        // Shorthand: `figures fig3 --scale tiny` == `figures run fig3 ...`.
        name => cmd_run(name, &args[1..]),
    }
}
