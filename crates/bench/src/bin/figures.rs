//! `figures` — regenerate the data behind every figure and table of the
//! Jellyfish paper through the experiment registry, and build arbitrary
//! topologies through the `TopoSpec` generator registry.
//!
//! Usage:
//!
//! ```text
//! figures list
//! figures run <experiment|all> [--scale tiny|laptop|paper] [--seed N]
//!                              [--topo <spec>] [--traffic <spec>] [--json]
//! figures run <experiment|all> --shard K/N [--plan <timings.json>]
//!                              [--scale ...] [--seed N] [--topo <spec>]
//!                              [--traffic <spec>]
//! figures launch <experiment|all> --jobs N [--plan <timings.json>]
//!                              [--hosts <file>] [--run-dir <dir>]
//!                              [--timeout-secs N] [--scale ...] [--seed N]
//!                              [--topo <spec>] [--traffic <spec>] [--json]
//! figures merge <file...> [--json]
//! figures bench [--scale tiny|laptop|paper] [--seed N] [--out <file>]
//! figures serve [--topo <spec>] [--seed N] [--traffic <spec>] [--oracle]
//!               [--tcp ADDR]
//! figures lint [--json] [paths...]
//! figures topo list
//! figures topo show <spec>
//! figures topo build <spec> [--seed N]
//! figures traffic list
//! figures traffic show <spec>
//! figures <experiment|all> [...]      # shorthand for `figures run`
//! ```
//!
//! `figures list` prints every registered experiment (see EXPERIMENTS.md for
//! the per-experiment schema). `figures run` evaluates experiments and
//! prints one TSV block per experiment (or one JSON line with `--json`);
//! `run all` evaluates every experiment except `fig12`, which duplicates
//! `fig11`'s sweep byte-for-byte.
//! With `--shard K/N` it evaluates only the K-th of N slices of each
//! experiment's work items and prints one shard-fragment JSON line per
//! experiment (with per-item wall-clock timings); `figures merge` recombines
//! fragment files from all N shards and prints byte-for-byte what the
//! unsharded `figures run` would have. By default shards stripe the work
//! items; with `--plan <timings.json>` (a prior launch's timing file) they
//! LPT-bin-pack by measured cost instead, falling back to striping when the
//! file has no matching timings.
//!
//! `figures launch` is the one-command distributed driver: it spawns the N
//! shard workers itself (locally, or through `--hosts` command templates),
//! streams their fragments into `--run-dir`, retries each failed worker
//! once (after an exponential backoff; with `--timeout-secs N` a worker
//! still running after N seconds is killed and counts as failed), merges,
//! and writes the run's own `timings.json` — see the "Distributed runs"
//! section of EXPERIMENTS.md.
//!
//! `figures serve` is the live-topology daemon (see SERVE.md): it holds a
//! resident topology, applies churn events and answers dist/path/
//! throughput/bisection queries over line-delimited JSON on stdin/stdout
//! (or a TCP socket with `--tcp`), repairing routing state incrementally;
//! `--oracle` forces the full-rebuild reference mode, whose replies are
//! byte-identical.
//!
//! `figures lint` runs the workspace determinism linter (the `detlint`
//! crate — see LINTS.md) over the given paths (default `crates/`): static
//! enforcement of the byte-identical-output contract behind every
//! shard/launch/merge equality above. Exit 1 on findings, with exact
//! `file:line:col` diagnostics.
//!
//! `--topo <spec>` redirects the topology-generic experiments
//! (`throughput_vs_size`, `path_length`, `bisection`, `failure_sweep`) at
//! any registered topology spec; `figures topo list` names the generators
//! and transforms and TOPOLOGIES.md documents the grammar. `--traffic <spec>`
//! does the same for the workload axis of the traffic-capable experiments
//! (`throughput_vs_size`, `failure_sweep`, `throughput_vs_workload`,
//! `fairness_under_skew`, `incast_degradation`); `figures traffic list`
//! names the workload generators and TRAFFIC.md documents the grammar.
//!
//! Unknown experiment names, scales, seeds, specs and shard specs are hard
//! errors (exit code 2) listing the valid choices — never silent fallbacks.
//! Every failure is a typed [`CliError`] so all subcommands report them
//! identically.

use jellyfish::experiment::{self, Experiment, RunCtx, Shard, ShardFragment, TimingFile, WorkPlan};
use jellyfish::figures::Scale;
use jellyfish::service::wire::{self, LineOutcome};
use jellyfish::service::Session;
use jellyfish_bench::bench_report;
use jellyfish_bench::cli::CliError;
use jellyfish_bench::launch::{self, LaunchConfig};
use jellyfish_bench::merge::{experiment_names, merge_fragments, render_merged};
use jellyfish_bench::{render_run, render_run_json};
use jellyfish_sim::net::LinkParams;
use jellyfish_topology::properties::path_length_stats;
use jellyfish_topology::spec::{self, TopoSpec};
use jellyfish_traffic::{ServerMap, TrafficSpec};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: figures <command> [options]

commands:
  list                      list the registered experiments
  run <experiment|all>      evaluate experiments and print their datasets
  launch <experiment|all>   spawn N shard workers, merge their fragments
  merge <file...>           merge `run --shard` fragment files
  bench                     time the hot kernels against their scalar
                            baselines and write a BENCH_*.json report
                            (see PERF.md)
  serve                     hold a resident topology, apply churn events and
                            answer dist/path/throughput/bisection queries
                            over line-delimited JSON (see SERVE.md)
  lint [paths...]           run the determinism linter (detlint) over the
                            given files/directories (default: crates/);
                            see LINTS.md for the rules and pragma grammar
  topo list                 list the registered topology generators/transforms
  topo show <spec>          parse a topology spec and print its structure
  topo build <spec>         build a topology spec and print its properties
  traffic list              list the registered workload generators/transforms
  traffic show <spec>       parse a traffic spec and print its structure

run options:
  --scale tiny|laptop|paper   instance-size preset (default: laptop)
  --seed N                    base seed (default: 2012)
  --topo <spec>               topology override for the generic experiments
                              (throughput_vs_size, path_length, bisection,
                              failure_sweep); see TOPOLOGIES.md
  --traffic <spec>            workload override for the traffic-capable
                              experiments (throughput_vs_size, failure_sweep,
                              throughput_vs_workload, fairness_under_skew,
                              incast_degradation); see TRAFFIC.md
  --shard K/N                 run only the K-th of N slices of the work
                              items and print mergeable JSON fragments
  --plan <timings.json>       with --shard: partition by a prior run's
                              per-item timings (LPT bin-packing) instead of
                              striping; falls back to striping when the file
                              has no matching timings
  --json                      print JSON instead of TSV (non-shard runs)

launch options (plus --scale, --seed, --topo, --traffic, --plan, --json as
above):
  --jobs N                    number of worker processes / shards (required)
  --hosts <file>              worker command templates, one per line
                              ('{}' is replaced by the quoted worker
                              command, e.g. 'ssh build-01 {}'); default is
                              local re-exec of this binary
  --run-dir <dir>             where fragments, worker logs, timings.json and
                              the merged output land
                              (default: figures-runs/<name>-<scale>-<seed>)
  --timeout-secs N            per-worker wall-clock deadline: an attempt
                              still running after N seconds is killed and
                              counts as failed (then retried once, like any
                              other failure); default is no deadline

merge options:
  --json                      print JSON instead of TSV

lint options:
  --json                      print one machine-readable JSON object
  --list-rules                print the rule registry and exit

bench options:
  --scale tiny|laptop|paper   instance-size preset (default: laptop; the
                              laptop sizes are the tracked targets)
  --seed N                    topology seed (default: 2012)
  --out <file>                report path (default: BENCH_10.json)

serve options:
  --topo <spec>               resident topology (default:
                              jellyfish:switches=20,ports=8,degree=5)
  --seed N                    session seed for churn sampling and the
                              default traffic matrix (default: 2012)
  --traffic <spec>            workload for throughput queries (default: a
                              seeded random permutation)
  --oracle                    full-rebuild reference mode (byte-identical
                              replies, no incremental repair)
  --tcp ADDR                  listen on a TCP address (e.g. 127.0.0.1:9090)
                              instead of stdin/stdout

topo build options:
  --seed N                    build seed (default: 2012)";

/// Parsed `run` options, every flag validated (no silent fallbacks).
struct RunOptions {
    scale: Scale,
    seed: u64,
    topo: Option<TopoSpec>,
    traffic: Option<TrafficSpec>,
    shard: Option<Shard>,
    plan: Option<String>,
    json: bool,
}

impl RunOptions {
    fn ctx(&self) -> RunCtx {
        let mut ctx = RunCtx::new(self.scale, self.seed);
        if let Some(spec) = &self.topo {
            ctx = ctx.with_topo(spec.clone());
        }
        if let Some(spec) = &self.traffic {
            ctx = ctx.with_traffic(spec.clone());
        }
        ctx
    }

    fn topo_string(&self) -> Option<String> {
        self.topo.as_ref().map(std::string::ToString::to_string)
    }

    fn traffic_string(&self) -> Option<String> {
        self.traffic.as_ref().map(std::string::ToString::to_string)
    }
}

fn flag_value<'a>(args: &'a [String], i: usize, name: &str) -> Result<&'a str, CliError> {
    args.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| CliError::Invalid(format!("{name} needs a value")))
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, CliError> {
    let mut opts = RunOptions {
        scale: Scale::Laptop,
        seed: 2012,
        topo: None,
        traffic: None,
        shard: None,
        plan: None,
        json: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                opts.scale = flag_value(args, i, "--scale")?
                    .parse()
                    .map_err(|e| CliError::Invalid(format!("{e}")))?;
                i += 2;
            }
            "--seed" => {
                let raw = flag_value(args, i, "--seed")?;
                opts.seed = parse_seed(raw)?;
                i += 2;
            }
            "--topo" => {
                let raw = flag_value(args, i, "--topo")?;
                opts.topo = Some(
                    raw.parse()
                        .map_err(|e| CliError::Invalid(format!("unparsable --topo: {e}")))?,
                );
                i += 2;
            }
            "--traffic" => {
                let raw = flag_value(args, i, "--traffic")?;
                opts.traffic = Some(
                    raw.parse()
                        .map_err(|e| CliError::Invalid(format!("unparsable --traffic: {e}")))?,
                );
                i += 2;
            }
            "--shard" => {
                opts.shard = Some(flag_value(args, i, "--shard")?.parse()?);
                i += 2;
            }
            "--plan" => {
                opts.plan = Some(flag_value(args, i, "--plan")?.to_string());
                i += 2;
            }
            "--json" => {
                opts.json = true;
                i += 1;
            }
            other => return Err(CliError::Usage(format!("unknown option '{other}'"))),
        }
    }
    if opts.shard.is_some() && opts.json {
        return Err(CliError::Invalid("--shard output is always JSON; drop --json".to_string()));
    }
    Ok(opts)
}

fn parse_seed(raw: &str) -> Result<u64, CliError> {
    raw.parse().map_err(|_| {
        CliError::Invalid(format!("unparsable --seed '{raw}': expected an unsigned integer"))
    })
}

/// Loads a `--plan` timing file and checks it measured the same run
/// configuration. An unreadable or unparsable file is a hard error (the flag
/// was explicit); a file from a different `(scale, topo)` run is merely
/// useless for balancing this one, so workers note it and stripe instead.
fn load_plan(opts: &RunOptions) -> Result<Option<TimingFile>, CliError> {
    let Some(path) = &opts.plan else { return Ok(None) };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Invalid(format!("cannot read --plan '{path}': {e}")))?;
    let tf = TimingFile::from_json(&text)
        .map_err(|e| CliError::Invalid(format!("--plan '{path}' is not a timing file: {e}")))?;
    if tf.scale != opts.scale
        || tf.topo != opts.topo_string()
        || tf.traffic != opts.traffic_string()
    {
        eprintln!(
            "figures: note: --plan '{path}' measured scale {} topo {} traffic {}; this run is \
             scale {} topo {} traffic {}, so shards fall back to striping",
            tf.scale,
            tf.topo.as_deref().unwrap_or("<none>"),
            tf.traffic.as_deref().unwrap_or("<none>"),
            opts.scale,
            opts.topo_string().as_deref().unwrap_or("<none>"),
            opts.traffic_string().as_deref().unwrap_or("<none>")
        );
        return Ok(None);
    }
    Ok(Some(tf))
}

fn resolve_experiments(name: &str) -> Result<Vec<&'static dyn Experiment>, CliError> {
    if name == "all" {
        // fig12 reruns fig11's sweep byte-for-byte (the paper presents the
        // same data twice), so `all` evaluates it once under the fig11 name;
        // `figures run fig12` still works on its own.
        return Ok(experiment::registry()
            .iter()
            .copied()
            .filter(|e| e.name() != "fig12")
            .collect());
    }
    experiment::find(name)
        .map(|e| vec![e])
        .ok_or_else(|| CliError::unknown("experiment", name, experiment_names()))
}

fn cmd_list(args: &[String]) -> Result<(), CliError> {
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(format!("list takes no arguments (got '{extra}')")));
    }
    for exp in experiment::registry() {
        let topo = if exp.supports_topo_override() { " [--topo]" } else { "" };
        let traffic = if exp.supports_traffic_override() { " [--traffic]" } else { "" };
        println!("{}\t{}{topo}{traffic}", exp.name(), exp.describe());
    }
    Ok(())
}

/// The names of the experiments that take `--traffic`, for error messages.
fn traffic_capable_names() -> String {
    let names: Vec<&str> = experiment::registry()
        .iter()
        .filter(|e| e.supports_traffic_override())
        .map(|e| e.name())
        .collect();
    names.join(", ")
}

/// Checks a `--traffic` override against the selected experiments: every one
/// must take the override, and the spec must actually generate on the first
/// work item's topology (a parse-clean spec can still fail on a given server
/// count — incast fanin bounds, zipf needing two racks). Probing here turns
/// worker panics into a clean exit-2 error, matching the `--topo` probe.
fn check_traffic_override(
    tspec: &TrafficSpec,
    experiments: &[&'static dyn Experiment],
    opts: &RunOptions,
) -> Result<(), CliError> {
    if let Some(fixed) = experiments.iter().find(|e| !e.supports_traffic_override()) {
        return Err(CliError::Invalid(format!(
            "'{}' does not take --traffic (its workload is the experiment); \
             --traffic works with {}",
            fixed.name(),
            traffic_capable_names()
        )));
    }
    let ctx = opts.ctx();
    if let Some(exp) = experiments.first() {
        if let Some(item) = exp.work_items(&ctx).first() {
            let snap = ctx
                .spec_snapshot(item.spec(), opts.seed)
                .map_err(|e| CliError::Invalid(format!("cannot build '{}': {e}", item.spec())))?;
            let servers = ServerMap::new(&snap.topology);
            tspec.stream(&servers, opts.seed).map_err(|e| {
                CliError::Invalid(format!("--traffic '{tspec}' does not build: {e}"))
            })?;
        }
    }
    Ok(())
}

fn cmd_run(name: &str, args: &[String]) -> Result<(), CliError> {
    let opts = parse_run_options(args)?;
    if opts.plan.is_some() && opts.shard.is_none() {
        return Err(CliError::Invalid(
            "--plan only affects sharded runs; add --shard K/N (or use launch)".to_string(),
        ));
    }
    let experiments = resolve_experiments(name)?;
    if opts.topo.is_some() {
        if let Some(fixed) = experiments.iter().find(|e| !e.supports_topo_override()) {
            let generic: Vec<&str> = experiment::registry()
                .iter()
                .filter(|e| e.supports_topo_override())
                .map(|e| e.name())
                .collect();
            return Err(CliError::Invalid(format!(
                "'{}' does not take --topo (its topology pairing is the experiment); \
                 --topo works with {}",
                fixed.name(),
                generic.join(", ")
            )));
        }
    }
    // A spec can parse but still be unbuildable (odd fat-tree k, infeasible
    // degree, config index out of range). Probe-build it once here so the
    // user gets a clean exit-2 error instead of a panic from a worker.
    if let Some(spec) = &opts.topo {
        spec.build(opts.seed)
            .map_err(|e| CliError::Invalid(format!("--topo '{spec}' does not build: {e}")))?;
    }
    if let Some(tspec) = &opts.traffic {
        check_traffic_override(tspec, &experiments, &opts)?;
    }
    let plan = load_plan(&opts)?;
    for exp in experiments {
        let ctx = opts.ctx();
        match opts.shard {
            Some(shard) => {
                let num_items = exp.work_items(&ctx).len();
                let timings = plan.as_ref().and_then(|tf| tf.get(exp.name()));
                let work_plan = WorkPlan::plan(num_items, shard.count, timings);
                let timed = exp.run_selected_timed(&ctx, &|i| work_plan.owns(shard, i));
                let fragment = ShardFragment {
                    experiment: exp.name().to_string(),
                    scale: opts.scale,
                    seed: opts.seed,
                    topo: opts.topo_string(),
                    traffic: opts.traffic_string(),
                    shard,
                    timings_us: timed.timings_us,
                    items: timed.items,
                };
                println!("{}", fragment.to_json());
            }
            None => {
                let data = exp.run(&ctx);
                let topo = opts.topo_string();
                let traffic = opts.traffic_string();
                let rendered = if opts.json {
                    render_run_json(
                        exp.name(),
                        opts.scale,
                        opts.seed,
                        topo.as_deref(),
                        traffic.as_deref(),
                        &data,
                    )
                } else {
                    render_run(
                        exp.name(),
                        opts.scale,
                        opts.seed,
                        topo.as_deref(),
                        traffic.as_deref(),
                        &data,
                    )
                };
                print!("{rendered}");
            }
        }
    }
    Ok(())
}

fn cmd_merge(args: &[String]) -> Result<(), CliError> {
    let mut json = false;
    let mut files = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return Err(CliError::Invalid("merge needs at least one fragment file".to_string()));
    }
    let mut fragments: Vec<ShardFragment> = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| CliError::Invalid(format!("cannot read '{file}': {e}")))?;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let frag = ShardFragment::from_json(line)
                .map_err(|e| CliError::Invalid(format!("{file}:{}: {e}", lineno + 1)))?;
            fragments.push(frag);
        }
    }
    // Validate every group before printing anything, then print per
    // experiment in canonical registry order — the same order `figures run
    // all` evaluates in (jellyfish_bench::merge shares this path with the
    // launcher).
    let merged = merge_fragments(&fragments)?;
    print!("{}", render_merged(&merged, json));
    Ok(())
}

// ----------------------------------------------------------------- bench

fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let mut scale = Scale::Laptop;
    let mut seed = 2012u64;
    let mut out = PathBuf::from("BENCH_10.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = flag_value(args, i, "--scale")?
                    .parse()
                    .map_err(|e| CliError::Invalid(format!("{e}")))?;
                i += 2;
            }
            "--seed" => {
                seed = parse_seed(flag_value(args, i, "--seed")?)?;
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(flag_value(args, i, "--out")?);
                i += 2;
            }
            other => return Err(CliError::Usage(format!("unknown option '{other}'"))),
        }
    }
    eprintln!("figures: benching hot kernels at scale {scale} (seed {seed})...");
    let records = bench_report::run_suite(scale, seed);
    let report = bench_report::render_report(scale, seed, &records);
    std::fs::write(&out, &report)
        .map_err(|e| CliError::Invalid(format!("cannot write '{}': {e}", out.display())))?;
    print!("{report}");
    eprintln!("figures: wrote {}", out.display());
    Ok(())
}

// ------------------------------------------------------------------ serve

/// Parsed `serve` options.
struct ServeOptions {
    topo: TopoSpec,
    seed: u64,
    traffic: Option<TrafficSpec>,
    oracle: bool,
    tcp: Option<String>,
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, CliError> {
    let mut opts = ServeOptions {
        topo: "jellyfish:switches=20,ports=8,degree=5"
            .parse()
            .expect("the default serve spec parses"),
        seed: 2012,
        traffic: None,
        oracle: false,
        tcp: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--topo" => {
                let raw = flag_value(args, i, "--topo")?;
                opts.topo = raw
                    .parse()
                    .map_err(|e| CliError::Invalid(format!("unparsable --topo: {e}")))?;
                i += 2;
            }
            "--seed" => {
                opts.seed = parse_seed(flag_value(args, i, "--seed")?)?;
                i += 2;
            }
            "--traffic" => {
                let raw = flag_value(args, i, "--traffic")?;
                opts.traffic = Some(
                    raw.parse()
                        .map_err(|e| CliError::Invalid(format!("unparsable --traffic: {e}")))?,
                );
                i += 2;
            }
            "--oracle" => {
                opts.oracle = true;
                i += 1;
            }
            "--tcp" => {
                opts.tcp = Some(flag_value(args, i, "--tcp")?.to_string());
                i += 2;
            }
            other => return Err(CliError::Usage(format!("unknown option '{other}'"))),
        }
    }
    Ok(opts)
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let opts = parse_serve_options(args)?;
    let topo = opts
        .topo
        .build(opts.seed)
        .map_err(|e| CliError::Invalid(format!("--topo '{}' does not build: {e}", opts.topo)))?;
    if let Some(tspec) = &opts.traffic {
        // Probe the workload once so a spec that cannot generate on this
        // topology is an exit-2 error, not a panic mid-session.
        tspec
            .stream(&ServerMap::new(&topo), opts.seed)
            .map_err(|e| CliError::Invalid(format!("--traffic '{tspec}' does not build: {e}")))?;
    }
    let mut session =
        if opts.oracle { Session::oracle(topo, opts.seed) } else { Session::new(topo, opts.seed) }
            .with_traffic(opts.traffic.clone());
    eprintln!(
        "figures: serving {} (seed {}, {} switches, {} links{})",
        opts.topo,
        opts.seed,
        session.topology().num_switches(),
        session.topology().num_links(),
        if opts.oracle { ", oracle mode" } else { "" }
    );
    match &opts.tcp {
        None => serve_stdio(&mut session),
        Some(addr) => serve_tcp(&mut session, addr),
    }
}

fn io_err(what: &str, e: std::io::Error) -> CliError {
    CliError::Invalid(format!("{what}: {e}"))
}

/// Serves one session over stdin/stdout until EOF or a `shutdown` op.
fn serve_stdio(session: &mut Session) -> Result<(), CliError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| io_err("cannot read request", e))?;
        if line.trim().is_empty() {
            continue;
        }
        let outcome = wire::handle_line(session, &line);
        writeln!(out, "{}", outcome.text()).map_err(|e| io_err("cannot write reply", e))?;
        out.flush().map_err(|e| io_err("cannot write reply", e))?;
        if matches!(outcome, LineOutcome::Shutdown(_)) {
            break;
        }
    }
    Ok(())
}

/// Serves connections one at a time on `addr`; the resident session (and
/// its incremental routing state) persists across connections. A client
/// `shutdown` op stops the whole daemon.
fn serve_tcp(session: &mut Session, addr: &str) -> Result<(), CliError> {
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| CliError::Invalid(format!("cannot listen on '{addr}': {e}")))?;
    let local = listener.local_addr().map_err(|e| io_err("cannot resolve listen address", e))?;
    eprintln!("figures: listening on {local}");
    for conn in listener.incoming() {
        let stream = conn.map_err(|e| io_err("accept failed", e))?;
        let mut writer = stream.try_clone().map_err(|e| io_err("cannot clone connection", e))?;
        let reader = std::io::BufReader::new(stream);
        let mut shutdown = false;
        for line in reader.lines() {
            // A dropped client is normal churn for a daemon, not an error.
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let outcome = wire::handle_line(session, &line);
            if writeln!(writer, "{}", outcome.text()).and_then(|()| writer.flush()).is_err() {
                break;
            }
            if matches!(outcome, LineOutcome::Shutdown(_)) {
                shutdown = true;
                break;
            }
        }
        if shutdown {
            break;
        }
    }
    Ok(())
}

// ------------------------------------------------------------------ lint

/// `figures lint [--json] [--list-rules] [paths...]` — the determinism
/// linter, wired through the same `detlint` library the standalone binary
/// uses (`cargo run -p detlint`). Exit 0 clean, 1 findings, 2 errors.
fn cmd_lint(args: &[String]) -> Result<(), CliError> {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for rule in detlint::rules::registry() {
                    println!("{}\t{}", rule.id, rule.summary);
                }
                return Ok(());
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")))
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }
    let report = detlint::lint_paths(&paths)?;
    if json {
        print!("{}", detlint::render_json(&report));
    } else {
        print!("{}", detlint::render_text(&report));
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(CliError::Findings)
    }
}

// ---------------------------------------------------------------- launch

fn cmd_launch(args: &[String]) -> Result<(), CliError> {
    let Some(name) = args.first() else {
        return Err(CliError::Invalid(format!(
            "launch needs an experiment name: valid experiments are {}",
            experiment_names()
        )));
    };
    let experiments = resolve_experiments(name)?;
    let (jobs, opts, hosts_file, run_dir, timeout) = parse_launch_options(&args[1..])?;
    if opts.topo.is_some() {
        if let Some(fixed) = experiments.iter().find(|e| !e.supports_topo_override()) {
            return Err(CliError::Invalid(format!(
                "'{}' does not take --topo (its topology pairing is the experiment)",
                fixed.name()
            )));
        }
    }
    if let Some(spec) = &opts.topo {
        spec.build(opts.seed)
            .map_err(|e| CliError::Invalid(format!("--topo '{spec}' does not build: {e}")))?;
    }
    if let Some(tspec) = &opts.traffic {
        check_traffic_override(tspec, &experiments, &opts)?;
    }
    // Surface an unreadable/unparsable --plan here, before any worker spawns
    // (the workers re-validate it themselves).
    load_plan(&opts)?;
    let hosts = match &hosts_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Invalid(format!("cannot read --hosts '{path}': {e}")))?;
            let hosts = launch::parse_hosts_file(&text);
            if hosts.is_empty() {
                return Err(CliError::Invalid(format!(
                    "--hosts '{path}' has no command templates"
                )));
            }
            hosts
        }
        None => Vec::new(),
    };
    let run_dir = run_dir.unwrap_or_else(|| {
        PathBuf::from(format!("figures-runs/{name}-{}-{}", opts.scale, opts.seed))
    });
    let cfg = LaunchConfig {
        name: name.clone(),
        jobs,
        scale: opts.scale,
        seed: opts.seed,
        topo: opts.topo_string(),
        traffic: opts.traffic_string(),
        plan: opts.plan.as_ref().map(PathBuf::from),
        hosts,
        run_dir,
        timeout,
        json: opts.json,
    };
    let rendered = launch::launch(&cfg)?;
    print!("{rendered}");
    Ok(())
}

/// Parses `launch` flags: the shared run flags plus `--jobs`, `--hosts`,
/// `--run-dir`, `--timeout-secs`. `--jobs` is required; `--shard` is the
/// launcher's to assign.
#[allow(clippy::type_complexity)]
fn parse_launch_options(
    args: &[String],
) -> Result<(usize, RunOptions, Option<String>, Option<PathBuf>, Option<Duration>), CliError> {
    let mut jobs: Option<usize> = None;
    let mut hosts_file: Option<String> = None;
    let mut run_dir: Option<PathBuf> = None;
    let mut timeout: Option<Duration> = None;
    let mut run_flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                let raw = flag_value(args, i, "--jobs")?;
                let n: usize = raw.parse().map_err(|_| {
                    CliError::Invalid(format!(
                        "unparsable --jobs '{raw}': expected a positive integer"
                    ))
                })?;
                if n == 0 {
                    return Err(CliError::Invalid("--jobs must be at least 1".to_string()));
                }
                jobs = Some(n);
                i += 2;
            }
            "--timeout-secs" => {
                let raw = flag_value(args, i, "--timeout-secs")?;
                let n: u64 = raw.parse().map_err(|_| {
                    CliError::Invalid(format!(
                        "unparsable --timeout-secs '{raw}': expected a positive integer"
                    ))
                })?;
                if n == 0 {
                    return Err(CliError::Invalid("--timeout-secs must be at least 1".to_string()));
                }
                timeout = Some(Duration::from_secs(n));
                i += 2;
            }
            "--hosts" => {
                hosts_file = Some(flag_value(args, i, "--hosts")?.to_string());
                i += 2;
            }
            "--run-dir" => {
                run_dir = Some(PathBuf::from(flag_value(args, i, "--run-dir")?));
                i += 2;
            }
            "--shard" => {
                return Err(CliError::Invalid(
                    "launch assigns the shards itself; use --jobs N instead of --shard".to_string(),
                ));
            }
            "--scale" | "--seed" | "--topo" | "--traffic" | "--plan" => {
                run_flags.push(args[i].clone());
                run_flags.push(flag_value(args, i, &args[i])?.to_string());
                i += 2;
            }
            "--json" => {
                run_flags.push(args[i].clone());
                i += 1;
            }
            other => return Err(CliError::Usage(format!("unknown option '{other}'"))),
        }
    }
    let Some(jobs) = jobs else {
        return Err(CliError::Invalid(
            "launch needs --jobs N (the number of worker processes)".to_string(),
        ));
    };
    let opts = parse_run_options(&run_flags)?;
    Ok((jobs, opts, hosts_file, run_dir, timeout))
}

// ------------------------------------------------------------------ topo

fn cmd_topo_list(args: &[String]) -> Result<(), CliError> {
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(format!("topo list takes no arguments (got '{extra}')")));
    }
    println!("generators:");
    for g in spec::generators() {
        println!("  {}\t{}\te.g. {}", g.name(), g.describe(), g.example());
    }
    println!("transforms (chain with '+'):");
    println!("  {}", spec::transform_grammar());
    Ok(())
}

fn parse_spec_arg(args: &[String]) -> Result<(TopoSpec, u64), CliError> {
    let Some(raw) = args.first() else {
        return Err(CliError::Invalid(
            "expected a topology spec (try `figures topo list`)".to_string(),
        ));
    };
    let spec: TopoSpec = raw.parse().map_err(|e| CliError::Invalid(format!("{e}")))?;
    let mut seed = 2012u64;
    let rest = &args[1..];
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed" => {
                seed = parse_seed(flag_value(rest, i, "--seed")?)?;
                i += 2;
            }
            other => return Err(CliError::Usage(format!("unknown option '{other}'"))),
        }
    }
    Ok((spec, seed))
}

fn cmd_topo_show(args: &[String]) -> Result<(), CliError> {
    let (spec, _) = parse_spec_arg(args)?;
    let generator = spec.resolve().map_err(|e| CliError::Invalid(format!("{e}")))?;
    println!("spec\t{spec}");
    println!("generator\t{}\t{}", generator.name(), generator.describe());
    for (k, v) in spec.params().pairs() {
        println!("param\t{k}\t{v}");
    }
    for t in spec.transforms() {
        println!("transform\t{t}");
    }
    // The simulator's per-link baseline, so a run's provenance is readable
    // off the spec alone: every link starts from these defaults, and the
    // `impair` line (the field-wise merge of the spec's `+impair=` chain)
    // shows what the wire layer does on top — including any `queue:` buffer
    // override.
    let link = LinkParams::default();
    println!("link\trate\t{}", link.rate);
    println!("link\tdelay\t{}", link.delay);
    println!("link\tbuffer\t{}", link.buffer);
    if let Some(cfg) = spec.impairment() {
        println!("impair\t{cfg}");
    }
    Ok(())
}

fn cmd_topo_build(args: &[String]) -> Result<(), CliError> {
    let (spec, seed) = parse_spec_arg(args)?;
    let topo = spec.build(seed).map_err(|e| CliError::Invalid(format!("{e}")))?;
    let stats = path_length_stats(topo.graph());
    println!("spec\t{spec}");
    println!("seed\t{seed}");
    println!("name\t{}", topo.name());
    println!("switches\t{}", topo.num_switches());
    println!("links\t{}", topo.num_links());
    println!("servers\t{}", topo.total_servers());
    println!("total_ports\t{}", topo.total_ports());
    println!("connected\t{}", topo.graph().is_connected());
    println!("mean_path_length\t{}", stats.mean);
    println!("diameter\t{}", stats.diameter);
    Ok(())
}

// --------------------------------------------------------------- traffic

fn cmd_traffic_list(args: &[String]) -> Result<(), CliError> {
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(format!("traffic list takes no arguments (got '{extra}')")));
    }
    println!("generators:");
    for g in jellyfish_traffic::generators() {
        println!("  {}\t{}\te.g. {}", g.name(), g.describe(), g.example());
    }
    println!("transforms (chain with '+'):");
    println!("  {}", jellyfish_traffic::transform_grammar());
    Ok(())
}

fn cmd_traffic_show(args: &[String]) -> Result<(), CliError> {
    let Some(raw) = args.first() else {
        return Err(CliError::Invalid(
            "expected a traffic spec (try `figures traffic list`)".to_string(),
        ));
    };
    if let Some(extra) = args.get(1) {
        return Err(CliError::Usage(format!("traffic show takes one spec (got '{extra}')")));
    }
    let spec: TrafficSpec = raw.parse().map_err(|e| CliError::Invalid(format!("{e}")))?;
    spec.validate().map_err(|e| CliError::Invalid(format!("{e}")))?;
    let generator = jellyfish_traffic::find_generator(spec.generator())
        .expect("a parsed spec names a registered generator");
    println!("spec\t{spec}");
    println!("generator\t{}\t{}", generator.name(), generator.describe());
    for (k, v) in spec.params().pairs() {
        println!("param\t{k}\t{v}");
    }
    for t in spec.transforms() {
        println!("transform\t{t}");
    }
    println!("epochs\t{}", spec.epochs());
    println!("demand_scale\t{}", spec.demand_scale());
    Ok(())
}

fn cmd_traffic(args: &[String]) -> Result<(), CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::Usage("traffic needs a subcommand: list, show".to_string()));
    };
    match sub.as_str() {
        "list" => cmd_traffic_list(&args[1..]),
        "show" => cmd_traffic_show(&args[1..]),
        other => Err(CliError::unknown("traffic subcommand", other, "list, show")),
    }
}

fn cmd_topo(args: &[String]) -> Result<(), CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::Usage("topo needs a subcommand: list, show, build".to_string()));
    };
    match sub.as_str() {
        "list" => cmd_topo_list(&args[1..]),
        "show" => cmd_topo_show(&args[1..]),
        "build" => cmd_topo_build(&args[1..]),
        other => Err(CliError::unknown("topo subcommand", other, "list, show, build")),
    }
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".to_string()));
    };
    match command.as_str() {
        "list" => cmd_list(&args[1..]),
        "run" => {
            let Some(name) = args.get(1) else {
                return Err(CliError::Invalid(format!(
                    "run needs an experiment name: valid experiments are {}",
                    experiment_names()
                )));
            };
            cmd_run(name, &args[2..])
        }
        "launch" => cmd_launch(&args[1..]),
        "merge" => cmd_merge(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "topo" => cmd_topo(&args[1..]),
        "traffic" => cmd_traffic(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        // Shorthand: `figures fig3 --scale tiny` == `figures run fig3 ...`.
        name => cmd_run(name, &args[1..]),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if !e.is_silent() {
                eprintln!("figures: {e}");
                if e.wants_usage() {
                    eprintln!("\n{USAGE}");
                }
            }
            ExitCode::from(e.exit_code())
        }
    }
}
