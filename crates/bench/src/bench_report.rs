//! `figures bench` — the tracked hot-kernel benchmark trajectory.
//!
//! Runs each rewritten kernel next to its pre-rewrite scalar baseline at a
//! fixed per-scale instance size and writes one JSON report (`BENCH_10.json`
//! by default) with a record per kernel:
//! `{"kernel", "n", "ns_per_iter", "speedup_vs_scalar"}`. `ns_per_iter` is
//! the optimized path's wall-clock per iteration; `speedup_vs_scalar` is the
//! baseline's time divided by it, so values above 1 mean the rewrite pays
//! off. PERF.md documents the kernel inventory and how to read the report;
//! CI runs `figures bench --scale tiny` as a smoke check and archives the
//! report as an artifact.

use jellyfish::figures::Scale;
use jellyfish::service::{ChurnEvent, Session};
use jellyfish_flow::bisection::{min_bisection_heuristic, min_bisection_heuristic_reference};
use jellyfish_flow::kernels as flow_kernels;
use jellyfish_routing::path_table::RoutingScheme;
use jellyfish_routing::shortest::{all_pairs_distances_reference, all_pairs_distances_serial};
use jellyfish_topology::kernels as topo_kernels;
use jellyfish_topology::spec::ScenarioTransform;
use jellyfish_topology::{CsrGraph, JellyfishBuilder, Topology};
use jellyfish_traffic::{ServerMap, TrafficSpec};
use std::time::{Duration, Instant};

/// One measured kernel: the optimized path's per-iteration time and its
/// speedup over the pre-rewrite scalar baseline.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Kernel name (see PERF.md for the inventory).
    pub kernel: String,
    /// Problem size the kernel ran at (switches, arcs or edges — per kernel).
    pub n: usize,
    /// Optimized path, nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Baseline time divided by optimized time (> 1 means faster).
    pub speedup_vs_scalar: f64,
}

/// Per-scale instance sizes: `(bfs_topo, kl_topo, kl_restarts)` as
/// `JellyfishBuilder::new` argument triples. The laptop sizes are the
/// acceptance targets: all-pairs BFS at the paper's jellyfish 245×14 and
/// Kernighan–Lin at n = 500.
fn sizes(scale: Scale) -> ((usize, usize, usize), (usize, usize, usize), usize) {
    match scale {
        Scale::Tiny => ((60, 10, 6), (60, 10, 6), 2),
        Scale::Laptop => ((245, 14, 11), (500, 24, 12), 2),
        Scale::Paper => ((686, 24, 19), (1000, 24, 12), 2),
    }
}

/// Server-map size for the `traffic_stream_*` kernels, as a
/// `ServerMap::uniform` argument pair (racks × servers-per-rack).
fn traffic_sizes(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Tiny => (16, 8),    // 128 servers
        Scale::Laptop => (64, 16), // 1024 servers
        Scale::Paper => (128, 32), // 4096 servers
    }
}

/// Times `f` with one warmup call, then iterates until `min_total` elapses
/// or `max_iters` is reached, returning mean nanoseconds per iteration.
fn time_ns<F: FnMut()>(mut f: F, min_total: Duration, max_iters: u32) -> f64 {
    f();
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        f();
        iters += 1;
        if start.elapsed() >= min_total || iters >= max_iters {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn record<F, G>(kernel: &str, n: usize, optimized: F, scalar: G) -> BenchRecord
where
    F: FnMut(),
    G: FnMut(),
{
    let budget = Duration::from_millis(150);
    let ns_opt = time_ns(optimized, budget, 1000);
    let ns_scalar = time_ns(scalar, budget, 1000);
    BenchRecord {
        kernel: kernel.to_string(),
        n,
        ns_per_iter: ns_opt,
        speedup_vs_scalar: ns_scalar / ns_opt,
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Runs the full suite at `scale` and returns the records in a fixed order.
pub fn run_suite(scale: Scale, seed: u64) -> Vec<BenchRecord> {
    let ((bn, bp, bd), (kn, kp, kd), restarts) = sizes(scale);
    let bfs_topo: Topology =
        JellyfishBuilder::new(bn, bp, bd).seed(seed).build().expect("bench topology builds");
    let bfs_csr: CsrGraph = bfs_topo.csr();
    let kl_topo: Topology =
        JellyfishBuilder::new(kn, kp, kd).seed(seed ^ 1).build().expect("bench topology builds");

    let mut records = Vec::new();

    // 1. All-pairs BFS: direction-optimizing flat-matrix sweep vs the
    //    pre-rewrite per-source queue BFS building Vec<Vec<usize>>.
    records.push(record(
        "all_pairs_bfs",
        bn,
        || {
            std::hint::black_box(all_pairs_distances_serial(&bfs_csr));
        },
        || {
            std::hint::black_box(all_pairs_distances_reference(&bfs_csr));
        },
    ));

    // 2. Kernighan–Lin bisection: sorted-partner selection with incremental
    //    D-values vs the all-pairs scan. Both run the identical restart
    //    schedule and produce the identical cut.
    records.push(record(
        "kl_bisection",
        kn,
        || {
            std::hint::black_box(min_bisection_heuristic(&kl_topo, restarts, seed));
        },
        || {
            std::hint::black_box(min_bisection_heuristic_reference(&kl_topo, restarts, seed));
        },
    ));

    // 3. Garg–Könemann arc update: chunked vs scalar on this topology's arc
    //    arrays with a synthetic 16-hop path (both variants always compiled,
    //    so one binary measures both).
    let num_arcs = bfs_csr.num_arcs();
    let mut state = seed | 1;
    let arcs: Vec<usize> = (0..16).map(|_| (xorshift(&mut state) as usize) % num_arcs).collect();
    // Each variant mutates its own copy of the arc state so the two timed
    // closures don't alias (and neither drifts the other's inputs).
    let mut opt_state = (vec![1.0f64; num_arcs], vec![0.0f64; num_arcs], 0.0f64);
    let mut ref_state = opt_state.clone();
    records.push(record(
        "gk_apply",
        num_arcs,
        || {
            let (length, flow, tw) = &mut opt_state;
            for _ in 0..64 {
                flow_kernels::gk_apply_chunked(length, flow, &arcs, 0.5, 1.000_01, 1.0, tw);
            }
            std::hint::black_box(length);
        },
        || {
            let (length, flow, tw) = &mut ref_state;
            for _ in 0..64 {
                flow_kernels::gk_apply_scalar(length, flow, &arcs, 0.5, 1.000_01, 1.0, tw);
            }
            std::hint::black_box(length);
        },
    ));

    // 4. Cut-size scan: chunked vs scalar over the full edge list.
    let num_edges = bfs_csr.num_edges();
    let in_set: Vec<bool> = (0..bfs_csr.num_nodes()).map(|v| v % 2 == 0).collect();
    let edges: Vec<(u32, u32)> = bfs_csr.edges().map(|(u, v)| (u as u32, v as u32)).collect();
    records.push(record(
        "cut_size",
        num_edges,
        || {
            for _ in 0..16 {
                std::hint::black_box(topo_kernels::cut_size_chunked(&edges, &in_set));
            }
        },
        || {
            for _ in 0..16 {
                std::hint::black_box(topo_kernels::cut_size_scalar(&edges, &in_set));
            }
        },
    ));

    // 5–7. Traffic streaming: the lazy spec-built FlowStream aggregated to
    //    switch demands on the fly, against the eager baseline that first
    //    materializes the full TrafficMatrix and then aggregates. Same flows,
    //    same demands — the streamed path just never holds the flow Vec.
    let (racks, per_rack) = traffic_sizes(scale);
    let servers = ServerMap::uniform(racks, per_rack);
    let n_servers = racks * per_rack;
    for name in ["permutation", "zipf:s=1.2,hot_racks=4", "all2all"] {
        let spec: TrafficSpec = name.parse().expect("bench traffic spec parses");
        let kernel = format!("traffic_stream_{}", spec.generator());
        let streamed_spec = spec.clone();
        let eager_spec = spec;
        records.push(record(
            &kernel,
            n_servers,
            || {
                let stream = streamed_spec
                    .stream(&servers, seed)
                    .expect("bench workload builds on the uniform map");
                std::hint::black_box(stream.switch_demands(&servers));
            },
            || {
                let tm = eager_spec
                    .matrix(&servers, seed)
                    .expect("bench workload builds on the uniform map");
                std::hint::black_box(tm.switch_demands(&servers));
            },
        ));
    }

    // 8. Live-session distance maintenance: one fail-link + restore churn
    //    round-trip on a resident session. Optimized = incremental
    //    all-pairs repair limited to affected sources; scalar = the oracle
    //    session's full BFS rebuild after every event. Identical matrices
    //    either way (the churn-equivalence proptest holds them to it).
    let (fa, fb) = bfs_csr.edges().next().expect("bench topology has links");
    let mut dist_inc = Session::new(bfs_topo.clone(), seed);
    let mut dist_full = Session::oracle(bfs_topo.clone(), seed);
    dist_inc.distances();
    dist_full.distances();
    records.push(record(
        "serve_dist_repair",
        bn,
        || {
            dist_inc.apply(&ChurnEvent::FailLink { a: fa, b: fb }).expect("link churn applies");
            dist_inc.apply(&ChurnEvent::Restore).expect("restore applies");
        },
        || {
            dist_full.apply(&ChurnEvent::FailLink { a: fa, b: fb }).expect("link churn applies");
            dist_full.apply(&ChurnEvent::Restore).expect("restore applies");
        },
    ));

    // 9. Live-session path maintenance: the same churn round-trip followed
    //    by ECMP path queries for a fixed pair set. Optimized = the exact
    //    invalidation keeps provably-unaffected cache entries; scalar = the
    //    oracle session drops the cache on every event and re-enumerates.
    let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i % bn, (i + bn / 2) % bn)).collect();
    let mut path_inc = Session::new(bfs_topo.clone(), seed);
    let mut path_full = Session::oracle(bfs_topo.clone(), seed);
    for &(s, d) in &pairs {
        path_inc.paths_for(RoutingScheme::ecmp8(), s, d);
        path_full.paths_for(RoutingScheme::ecmp8(), s, d);
    }
    records.push(record(
        "serve_path_repair",
        bn,
        || {
            path_inc.apply(&ChurnEvent::FailLink { a: fa, b: fb }).expect("link churn applies");
            path_inc.apply(&ChurnEvent::Restore).expect("restore applies");
            for &(s, d) in &pairs {
                std::hint::black_box(path_inc.paths_for(RoutingScheme::ecmp8(), s, d));
            }
        },
        || {
            path_full.apply(&ChurnEvent::FailLink { a: fa, b: fb }).expect("link churn applies");
            path_full.apply(&ChurnEvent::Restore).expect("restore applies");
            for &(s, d) in &pairs {
                std::hint::black_box(path_full.paths_for(RoutingScheme::ecmp8(), s, d));
            }
        },
    ));

    // 10. The failure_sweep inner loop in service mode: a resident session
    //    replays the fraction axis as restore + fail_links churn on the
    //    topology it already holds, against the pre-port shape that rebuilt
    //    each item's topology from its spec (the cost every cold shard
    //    paid). The flow solve downstream is identical in both, so only the
    //    topology-preparation loop is timed.
    let sweep_fractions = [0.0, 0.10, 0.20];
    let mut sweep_session = Session::new(bfs_topo.clone(), seed);
    records.push(record(
        "serve_failure_sweep",
        bn,
        || {
            for &f in &sweep_fractions {
                sweep_session.apply(&ChurnEvent::Restore).expect("restore applies");
                sweep_session
                    .apply(&ChurnEvent::FailLinks { fraction: f })
                    .expect("fraction churn applies");
                std::hint::black_box(sweep_session.csr());
            }
        },
        || {
            for &f in &sweep_fractions {
                let mut topo: Topology = JellyfishBuilder::new(bn, bp, bd)
                    .seed(seed)
                    .build()
                    .expect("bench topology builds");
                ScenarioTransform::FailLinks(f)
                    .apply(&mut topo, seed)
                    .expect("fraction transform applies");
                std::hint::black_box(topo.csr());
            }
        },
    ));

    records
}

/// Serializes a suite run as the `BENCH_*.json` report.
pub fn render_report(scale: Scale, seed: u64, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"simd\": {},\n", topo_kernels::simd_enabled()));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"ns_per_iter\": {:.1}, \
             \"speedup_vs_scalar\": {:.3}}}{comma}\n",
            r.kernel, r.n, r.ns_per_iter, r.speedup_vs_scalar
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_is_valid_json_with_required_fields() {
        let records = vec![
            BenchRecord {
                kernel: "all_pairs_bfs".into(),
                n: 60,
                ns_per_iter: 1234.5,
                speedup_vs_scalar: 2.5,
            },
            BenchRecord {
                kernel: "kl_bisection".into(),
                n: 60,
                ns_per_iter: 99.0,
                speedup_vs_scalar: 3.0,
            },
        ];
        let report = render_report(Scale::Tiny, 7, &records);
        assert!(report.contains("\"scale\": \"tiny\""));
        assert!(report.contains("\"kernel\": \"all_pairs_bfs\""));
        assert!(report.contains("\"speedup_vs_scalar\": 2.500"));
        assert!(report.contains("\"ns_per_iter\": 99.0"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(report.matches('{').count(), report.matches('}').count());
        assert_eq!(report.matches('[').count(), report.matches(']').count());
    }

    #[test]
    fn time_ns_returns_positive() {
        let ns = time_ns(
            || {
                std::hint::black_box(42);
            },
            Duration::from_millis(1),
            100,
        );
        assert!(ns > 0.0);
    }
}
