//! Shared helpers for the figure-regeneration CLI and the Criterion benches.
//!
//! The actual experiment logic lives in [`jellyfish::experiment`] (with the
//! shared vocabulary — scales and series — in [`jellyfish::figures`]); this
//! crate
//! formats its output, wires it into `cargo bench` targets, and hosts the
//! process-level sweep drivers: [`merge`] (shard-fragment validation and
//! recombination shared by `figures merge` and the launcher) and [`launch`]
//! (the distributed shard launcher behind `figures launch`). See
//! EXPERIMENTS.md at the repository root for the index of experiments and
//! the distributed-run workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_report;
pub mod cli;
pub mod launch;
pub mod merge;

use jellyfish::experiment::Dataset;
use jellyfish::figures::{Scale, Series};

/// Renders one experiment result exactly as `figures run` prints it: a
/// header naming the experiment, scale, seed and (when overridden) the
/// `--topo` and `--traffic` specs, the dataset's TSV, and a trailing blank
/// line. `figures merge` uses the same function, which is what makes a
/// merged sharded run byte-identical to a single-process run.
pub fn render_run(
    name: &str,
    scale: Scale,
    seed: u64,
    topo: Option<&str>,
    traffic: Option<&str>,
    data: &Dataset,
) -> String {
    let mut header = format!("== {name} (scale: {scale}, seed: {seed}");
    if let Some(spec) = topo {
        header.push_str(&format!(", topo: {spec}"));
    }
    if let Some(spec) = traffic {
        header.push_str(&format!(", traffic: {spec}"));
    }
    format!("{header}) ==\n{}\n", data.to_tsv())
}

/// Renders one experiment result as a single JSON line with the same
/// metadata as [`render_run`].
pub fn render_run_json(
    name: &str,
    scale: Scale,
    seed: u64,
    topo: Option<&str>,
    traffic: Option<&str>,
    data: &Dataset,
) -> String {
    let topo = match topo {
        Some(spec) => escape_json(spec),
        None => "null".to_string(),
    };
    let traffic = match traffic {
        Some(spec) => escape_json(spec),
        None => "null".to_string(),
    };
    format!(
        "{{\"experiment\":\"{name}\",\"scale\":\"{scale}\",\"seed\":{seed},\"topo\":{topo},\"traffic\":{traffic},\"data\":{}}}\n",
        data.to_json()
    )
}

/// Renders a string as a quoted JSON literal (the same escape set the
/// dataset writer in `jellyfish::experiment` uses: quotes, backslashes, and
/// all control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a collection of series as an aligned text table:
/// one `x` column and one column per series.
pub fn render_series_table(series: &[Series]) -> String {
    use std::collections::BTreeMap;
    let mut xs: Vec<f64> = Vec::new();
    for s in series {
        for &(x, _) in &s.points {
            if !xs.iter().any(|&e| (e - x).abs() < 1e-9) {
                xs.push(x);
            }
        }
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut out = String::new();
    out.push('x');
    for s in series {
        out.push('\t');
        out.push_str(&s.label);
    }
    out.push('\n');
    let maps: Vec<BTreeMap<u64, f64>> = series
        .iter()
        .map(|s| s.points.iter().map(|&(x, y)| ((x * 1e6) as u64, y)).collect())
        .collect();
    for &x in &xs {
        out.push_str(&format!("{x:.3}"));
        let key = (x * 1e6) as u64;
        for m in &maps {
            match m.get(&key) {
                Some(y) => out.push_str(&format!("\t{y:.4}")),
                None => out.push_str("\t-"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders simple `(label, value)` rows.
pub fn render_rows(rows: &[(String, f64)]) -> String {
    let mut out = String::new();
    for (label, value) in rows {
        out.push_str(&format!("{label}\t{value:.4}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_series_on_x() {
        let s = vec![
            Series::new("a", vec![(1.0, 0.5), (2.0, 0.6)]),
            Series::new("b", vec![(2.0, 0.7)]),
        ];
        let table = render_series_table(&s);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("a") && lines[0].contains("b"));
        assert!(lines[1].contains("0.5") && lines[1].ends_with("-"));
        assert!(lines[2].contains("0.6") && lines[2].contains("0.7"));
    }

    #[test]
    fn run_rendering_is_header_plus_tsv() {
        let mut ds = Dataset::new();
        ds.push_point("a", 1.0, 0.5);
        let text = render_run("fig9", Scale::Tiny, 7, None, None, &ds);
        assert!(text.starts_with("== fig9 (scale: tiny, seed: 7) ==\n"));
        assert!(text.contains("x\ta\n1\t0.5\n"));
        assert!(text.ends_with('\n'));
        let json = render_run_json("fig9", Scale::Tiny, 7, None, None, &ds);
        assert!(json.starts_with(
            "{\"experiment\":\"fig9\",\"scale\":\"tiny\",\"seed\":7,\
             \"topo\":null,\"traffic\":null,"
        ));
        let with_topo = render_run("fig9", Scale::Tiny, 7, Some("fattree:k=4"), None, &ds);
        assert!(with_topo.starts_with("== fig9 (scale: tiny, seed: 7, topo: fattree:k=4) ==\n"));
        let json_topo = render_run_json("fig9", Scale::Tiny, 7, Some("fattree:k=4"), None, &ds);
        assert!(json_topo.contains("\"topo\":\"fattree:k=4\",\"traffic\":null,"));
        let with_traffic =
            render_run("fig9", Scale::Tiny, 7, Some("fattree:k=4"), Some("zipf:s=1.2"), &ds);
        assert!(with_traffic.starts_with(
            "== fig9 (scale: tiny, seed: 7, topo: fattree:k=4, traffic: zipf:s=1.2) ==\n"
        ));
        let json_traffic = render_run_json("fig9", Scale::Tiny, 7, None, Some("zipf:s=1.2"), &ds);
        assert!(json_traffic.contains("\"topo\":null,\"traffic\":\"zipf:s=1.2\","));
    }

    #[test]
    fn rows_render_labels_and_values() {
        let rows = vec![("Jellyfish".to_string(), 0.95), ("Fat-tree".to_string(), 0.9)];
        let text = render_rows(&rows);
        assert!(text.contains("Jellyfish\t0.9500"));
        assert!(text.contains("Fat-tree\t0.9000"));
    }
}
