//! Typed CLI failure for the `figures` binary.
//!
//! Every subcommand returns `Result<(), CliError>`; `main` is the single
//! place that prints the error and picks the process exit code. The
//! historical contract is kept: exit 2 for invalid invocations (unknown
//! names listing the valid choices, bad flags, unbuildable specs), exit 1
//! for lint findings, and usage text only when the invocation shape itself
//! was wrong.

/// Why a `figures` invocation failed, carrying the exit code and (for
/// unknown names) the valid-choices listing every subcommand reports the
/// same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An unknown name where a registry defines the choices: experiment,
    /// subcommand, scale, scheme... Exit 2.
    UnknownChoice {
        /// What kind of name was expected (`experiment`, `topo subcommand`).
        what: String,
        /// What the user typed.
        got: String,
        /// Comma-separated valid choices.
        valid: String,
    },
    /// Any other invalid invocation (bad flag value, unbuildable spec,
    /// unreadable file). Exit 2.
    Invalid(String),
    /// An invocation whose shape is wrong enough to reprint the usage text
    /// (unknown flag, missing subcommand). Exit 2.
    Usage(String),
    /// The command ran and found problems it already reported on stdout
    /// (lint findings). Exit 1, nothing further to print.
    Findings,
}

impl CliError {
    /// Unknown-name constructor; every "valid choices" message goes through
    /// here so they all read identically.
    pub fn unknown(what: &str, got: &str, valid: impl Into<String>) -> Self {
        CliError::UnknownChoice {
            what: what.to_string(),
            got: got.to_string(),
            valid: valid.into(),
        }
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Findings => 1,
            _ => 2,
        }
    }

    /// Whether `main` should append the usage text after the message.
    pub fn wants_usage(&self) -> bool {
        matches!(self, CliError::Usage(_))
    }

    /// Whether there is a message to print (lint findings already printed
    /// their report).
    pub fn is_silent(&self) -> bool {
        matches!(self, CliError::Findings)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownChoice { what, got, valid } => {
                write!(f, "unknown {what} '{got}' (valid choices: {valid})")
            }
            CliError::Invalid(msg) | CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Findings => Ok(()),
        }
    }
}

impl std::error::Error for CliError {}

/// Existing helpers return `Result<_, String>`; fold those into the
/// catch-all invalid-invocation case.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Invalid(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_match_the_historical_contract() {
        assert_eq!(CliError::unknown("experiment", "x", "a, b").exit_code(), 2);
        assert_eq!(CliError::Invalid("bad".into()).exit_code(), 2);
        assert_eq!(CliError::Usage("bad".into()).exit_code(), 2);
        assert_eq!(CliError::Findings.exit_code(), 1);
    }

    #[test]
    fn unknown_choices_render_uniformly() {
        let e = CliError::unknown("topo subcommand", "mk", "list, show, build");
        assert_eq!(
            format!("{e}"),
            "unknown topo subcommand 'mk' (valid choices: list, show, build)"
        );
    }

    #[test]
    fn only_usage_errors_reprint_usage() {
        assert!(CliError::Usage("x".into()).wants_usage());
        assert!(!CliError::Invalid("x".into()).wants_usage());
        assert!(!CliError::Findings.wants_usage());
        assert!(CliError::Findings.is_silent());
    }
}
