//! The distributed shard launcher behind `figures launch`.
//!
//! `figures run --shard K/N` made every experiment a shardable work-item
//! stream, but launching the N shards used to be a by-hand affair: start N
//! processes, collect N fragment files, run `figures merge`. This module is
//! the one-command driver for that loop:
//!
//! 1. partition — each worker re-runs this very binary (`figures run <name>
//!    --shard K/N`), by default striping the work items; with `--plan` the
//!    workers LPT-bin-pack by a prior run's measured per-item timings
//!    ([`jellyfish::experiment::WorkPlan`]).
//! 2. spawn — N local worker processes ([`std::process::Command`] re-exec of
//!    the current executable), or remote ones through the command templates
//!    of a hosts file (see [`parse_hosts_file`]); each worker's stdout
//!    streams into `<run-dir>/shard-K.jsonl`, its stderr into
//!    `<run-dir>/shard-K.log`.
//! 3. retry — a worker that exits non-zero, overruns the `--timeout-secs`
//!    deadline (it is killed and counts as failed), or leaves its fragment
//!    file missing/empty/unparsable, is retried exactly once, after an
//!    exponentially growing backoff; a second failure is a hard error naming
//!    the shard (and pointing at its log). Workers are polled, never
//!    blocking-waited, so one hung worker cannot stall the whole launch.
//! 4. merge — the collected fragments go through the same validation and
//!    recombination as `figures merge` ([`crate::merge`]), so the launcher's
//!    stdout is byte-identical to a single-process `figures run`. The
//!    per-item wall-clock measurements are aggregated into
//!    `<run-dir>/timings.json`, ready to be fed back as the next launch's
//!    `--plan`.

use crate::merge::{self, MergedRun};
use jellyfish::experiment::{self, RunCtx, Shard, ShardFragment, TimingFile};
use jellyfish::figures::Scale;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A worker is retried this many times in total (one retry after the first
/// failure) before the launch fails hard.
const MAX_ATTEMPTS: usize = 2;

/// Base of the exponential backoff slept before re-spawning a failed worker.
const RETRY_BACKOFF_MS: u64 = 250;

/// How often the launcher polls its workers (`try_wait`, deadline checks,
/// due retries).
const POLL_INTERVAL: Duration = Duration::from_millis(15);

/// Backoff before spawning attempt number `attempt` of a worker:
/// `RETRY_BACKOFF_MS << (attempt - 1)`, i.e. 500ms before the (single)
/// second attempt, doubling from there should `MAX_ATTEMPTS` ever grow.
fn retry_backoff(attempt: usize) -> Duration {
    Duration::from_millis(RETRY_BACKOFF_MS << (attempt - 1).min(6))
}

/// Everything `figures launch` needs for one distributed run.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Experiment name (or `all`), exactly as `figures run` takes it.
    pub name: String,
    /// Number of worker processes; each owns one shard `K/jobs`.
    pub jobs: usize,
    /// Instance-size preset forwarded to the workers.
    pub scale: Scale,
    /// Base seed forwarded to the workers.
    pub seed: u64,
    /// `--topo` override spec string forwarded to the workers, if any.
    pub topo: Option<String>,
    /// `--traffic` override spec string forwarded to the workers, if any.
    pub traffic: Option<String>,
    /// A prior run's `timings.json`, forwarded to the workers as `--plan`
    /// for timing-aware LPT partitioning.
    pub plan: Option<PathBuf>,
    /// Worker command templates from `--hosts` (empty: spawn locally).
    pub hosts: Vec<String>,
    /// Directory the fragment files, worker logs, `timings.json` and merged
    /// output are written into (created if missing).
    pub run_dir: PathBuf,
    /// Per-worker wall-clock deadline (`--timeout-secs`): an attempt still
    /// running this long after its spawn is killed and counts as failed
    /// (going through the normal retry path). `None`: wait indefinitely.
    pub timeout: Option<Duration>,
    /// Render the merged output as JSON lines instead of TSV blocks.
    pub json: bool,
}

/// One worker process the launcher spawns: the shard it evaluates plus the
/// program and arguments to exec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCmd {
    /// The `K/N` slice this worker evaluates.
    pub shard: Shard,
    /// Program to exec (`figures` itself locally, `sh` for host templates).
    pub program: String,
    /// Arguments to `program`.
    pub args: Vec<String>,
}

impl WorkerCmd {
    /// The command as one human-readable shell-ish line (for logs/errors).
    pub fn display(&self) -> String {
        let mut out = self.program.clone();
        for a in &self.args {
            out.push(' ');
            if a.contains(' ') || a.is_empty() {
                out.push_str(&shell_quote(a));
            } else {
                out.push_str(a);
            }
        }
        out
    }
}

/// Parses a `--hosts` file: one worker command template per line, blank
/// lines and `#` comments skipped. A template's `{}` placeholder is replaced
/// by the (shell-quoted) worker command — e.g. `ssh build-01 {}`; a template
/// without `{}` has the command appended. Workers are assigned to templates
/// round-robin, and each resulting line runs under `sh -c`, so the `figures`
/// binary (at its local path) and any `--plan` file must be reachable on
/// every host — the usual shared-filesystem cluster setup.
pub fn parse_hosts_file(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Quotes `s` for POSIX `sh`: single quotes around the whole string, with
/// embedded single quotes spliced as `'\''`.
fn shell_quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "'\\''"))
}

/// The `figures run` argument vector of shard `K/N` under `cfg`.
fn worker_args(cfg: &LaunchConfig, shard: Shard) -> Vec<String> {
    let mut args = vec![
        "run".to_string(),
        cfg.name.clone(),
        "--scale".to_string(),
        cfg.scale.to_string(),
        "--seed".to_string(),
        cfg.seed.to_string(),
    ];
    if let Some(topo) = &cfg.topo {
        args.push("--topo".to_string());
        args.push(topo.clone());
    }
    if let Some(traffic) = &cfg.traffic {
        args.push("--traffic".to_string());
        args.push(traffic.clone());
    }
    args.push("--shard".to_string());
    args.push(shard.to_string());
    if let Some(plan) = &cfg.plan {
        // Absolute so remote/`sh -c` workers resolve it regardless of cwd.
        let plan = std::fs::canonicalize(plan).unwrap_or_else(|_| plan.clone());
        args.push("--plan".to_string());
        args.push(plan.display().to_string());
    }
    args
}

/// Builds the N worker commands for `cfg`: local re-execs of the current
/// `figures` binary, or `sh -c` instantiations of the host templates.
pub fn worker_commands(cfg: &LaunchConfig) -> Result<Vec<WorkerCmd>, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the figures binary to re-exec: {e}"))?;
    let mut cmds = Vec::with_capacity(cfg.jobs);
    for k in 1..=cfg.jobs {
        let shard = Shard::new(k, cfg.jobs)?;
        let args = worker_args(cfg, shard);
        let cmd = if cfg.hosts.is_empty() {
            WorkerCmd { shard, program: exe.display().to_string(), args }
        } else {
            let template = &cfg.hosts[(k - 1) % cfg.hosts.len()];
            let quoted: Vec<String> = std::iter::once(exe.display().to_string())
                .chain(args)
                .map(|a| shell_quote(&a))
                .collect();
            let inner = quoted.join(" ");
            let line = if template.contains("{}") {
                template.replace("{}", &inner)
            } else {
                format!("{template} {inner}")
            };
            WorkerCmd { shard, program: "sh".to_string(), args: vec!["-c".to_string(), line] }
        };
        cmds.push(cmd);
    }
    Ok(cmds)
}

/// The fragment file shard `K` streams into.
fn fragment_path(run_dir: &Path, shard: Shard) -> PathBuf {
    run_dir.join(format!("shard-{}.jsonl", shard.index))
}

/// The stderr log of shard `K` (appended across attempts).
fn log_path(run_dir: &Path, shard: Shard) -> PathBuf {
    run_dir.join(format!("shard-{}.log", shard.index))
}

/// Spawns one attempt of `cmd`: stdout truncates the shard's fragment file,
/// stderr appends to its log behind an attempt header.
fn spawn_worker(cmd: &WorkerCmd, run_dir: &Path, attempt: usize) -> Result<Child, String> {
    let shard = cmd.shard;
    let fail = |what: &str, e: std::io::Error| format!("shard {shard}: {what}: {e}");
    let stdout =
        File::create(fragment_path(run_dir, shard)).map_err(|e| fail("fragment file", e))?;
    let mut log = OpenOptions::new()
        .create(true)
        .append(true)
        .open(log_path(run_dir, shard))
        .map_err(|e| fail("log file", e))?;
    writeln!(log, "--- attempt {attempt}: {}", cmd.display()).map_err(|e| fail("log file", e))?;
    Command::new(&cmd.program)
        .args(&cmd.args)
        .stdin(Stdio::null())
        .stdout(stdout)
        .stderr(log)
        .spawn()
        .map_err(|e| fail(&format!("cannot spawn '{}'", cmd.display()), e))
}

/// Checks one finished attempt: the worker must have exited zero and its
/// fragment file must hold at least one parsable fragment line.
fn collect_worker(
    cmd: &WorkerCmd,
    status: std::process::ExitStatus,
    run_dir: &Path,
) -> Result<Vec<ShardFragment>, String> {
    if !status.success() {
        return Err(format!("worker exited with {status}"));
    }
    let path = fragment_path(run_dir, cmd.shard);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("fragment file {} unreadable: {e}", path.display()))?;
    let mut fragments = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        fragments.push(
            ShardFragment::from_json(line)
                .map_err(|e| format!("fragment file {}:{}: {e}", path.display(), lineno + 1))?,
        );
    }
    if fragments.is_empty() {
        return Err(format!("fragment file {} is empty", path.display()));
    }
    Ok(fragments)
}

/// Kills and reaps every still-running worker: the hard-error path must not
/// leave orphan processes writing into the run directory (a re-launch would
/// truncate fragment files an orphan still holds open, corrupting them).
fn kill_all(children: Vec<(usize, Child)>) {
    for (_, mut child) in children {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// What the poll loop observed about one running worker.
enum Polled {
    /// Still within its deadline (or has none) and still running.
    Running,
    /// Exited on its own.
    Exited(std::process::ExitStatus),
    /// Overran its deadline; it has been killed and reaped.
    TimedOut,
    /// `try_wait` itself failed — the launch cannot continue.
    WaitErr(std::io::Error),
}

/// Runs every worker to completion, concurrently, retrying each failed
/// worker exactly once (after an exponential backoff). Workers are polled
/// with `try_wait` rather than blocking-waited, so a per-worker `timeout`
/// can kill an attempt that hangs — a timed-out attempt counts as a failure
/// and goes through the same retry path as a non-zero exit. Returns all
/// shards' fragments (in shard order), or a hard error naming the shard
/// that failed twice — after killing and reaping whatever workers were
/// still running.
pub fn run_workers(
    cmds: &[WorkerCmd],
    run_dir: &Path,
    timeout: Option<Duration>,
) -> Result<Vec<ShardFragment>, String> {
    // (worker index, running child, wall-clock deadline of this attempt).
    struct Running {
        idx: usize,
        child: Child,
        deadline: Option<Instant>,
    }
    let abort = |running: Vec<Running>, err: String| {
        kill_all(running.into_iter().map(|r| (r.idx, r.child)).collect());
        Err(err)
    };
    let mut attempts = vec![1usize; cmds.len()];
    let mut fragments: Vec<Vec<ShardFragment>> = vec![Vec::new(); cmds.len()];
    let mut running: Vec<Running> = Vec::with_capacity(cmds.len());
    // Failed workers sitting out their backoff: (worker index, respawn time).
    let mut waiting: Vec<(usize, Instant)> = Vec::new();
    let mut remaining = cmds.len();
    for (i, cmd) in cmds.iter().enumerate() {
        match spawn_worker(cmd, run_dir, 1) {
            Ok(child) => running.push(Running {
                idx: i,
                child,
                deadline: timeout.map(|t| Instant::now() + t),
            }),
            Err(e) => return abort(running, e),
        }
    }
    while remaining > 0 {
        let now = Instant::now();
        // Re-spawn workers whose backoff has elapsed.
        let mut deferred = Vec::new();
        for (i, due) in waiting.drain(..) {
            if now < due {
                deferred.push((i, due));
                continue;
            }
            match spawn_worker(&cmds[i], run_dir, attempts[i]) {
                Ok(child) => running.push(Running {
                    idx: i,
                    child,
                    deadline: timeout.map(|t| Instant::now() + t),
                }),
                Err(e) => return abort(running, e),
            }
        }
        waiting = deferred;
        // Poll every running worker without blocking.
        let mut progressed = false;
        let mut i = 0;
        while i < running.len() {
            let polled = {
                let w = &mut running[i];
                match w.child.try_wait() {
                    Ok(Some(status)) => Polled::Exited(status),
                    Ok(None) => match w.deadline {
                        Some(d) if now >= d => {
                            let _ = w.child.kill();
                            let _ = w.child.wait();
                            Polled::TimedOut
                        }
                        _ => Polled::Running,
                    },
                    Err(e) => Polled::WaitErr(e),
                }
            };
            if matches!(polled, Polled::Running) {
                i += 1;
                continue;
            }
            let w = running.swap_remove(i);
            let cmd = &cmds[w.idx];
            progressed = true;
            let outcome = match polled {
                Polled::Exited(status) => collect_worker(cmd, status, run_dir),
                Polled::TimedOut => Err(format!(
                    "timed out after {}s (killed)",
                    timeout.expect("deadlines only exist with a timeout").as_secs_f64()
                )),
                Polled::WaitErr(e) => {
                    let err = format!("shard {}: wait on worker failed: {e}", cmd.shard);
                    let mut rest = running;
                    rest.push(w);
                    return abort(rest, err);
                }
                Polled::Running => unreachable!("handled above"),
            };
            match outcome {
                Ok(frags) => {
                    fragments[w.idx] = frags;
                    remaining -= 1;
                }
                Err(why) if attempts[w.idx] < MAX_ATTEMPTS => {
                    attempts[w.idx] += 1;
                    let backoff = retry_backoff(attempts[w.idx]);
                    eprintln!(
                        "figures launch: shard {}: {why}; retrying in {}ms \
                         (attempt {}/{MAX_ATTEMPTS})",
                        cmd.shard,
                        backoff.as_millis(),
                        attempts[w.idx]
                    );
                    waiting.push((w.idx, now + backoff));
                }
                Err(why) => {
                    return abort(
                        running,
                        format!(
                            "shard {}: {why} (after {} retry); worker log: {}",
                            cmd.shard,
                            MAX_ATTEMPTS - 1,
                            log_path(run_dir, cmd.shard).display()
                        ),
                    );
                }
            }
        }
        if !progressed && remaining > 0 {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
    Ok(fragments.into_iter().flatten().collect())
}

/// Aggregates the per-item wall-clock of every fragment into one
/// [`TimingFile`] (indexed by the experiments' canonical work-item order).
/// Every fragment the launcher collected must carry one non-zero timing per
/// item — a missing or zero timing means a corrupt fragment or a worker from
/// a build that predates timing support, and fails the launch.
fn assemble_timings(cfg: &LaunchConfig, fragments: &[ShardFragment]) -> Result<TimingFile, String> {
    let mut tf = TimingFile::new(cfg.scale, cfg.seed, cfg.topo.clone(), cfg.traffic.clone());
    for exp in experiment::registry() {
        let group: Vec<&ShardFragment> =
            fragments.iter().filter(|f| f.experiment == exp.name()).collect();
        if group.is_empty() {
            continue;
        }
        let mut ctx = RunCtx::new(cfg.scale, cfg.seed);
        if let Some(raw) = &cfg.topo {
            let spec = raw
                .parse()
                .map_err(|e| format!("{}: unparsable topo spec '{raw}': {e}", exp.name()))?;
            ctx = ctx.with_topo(spec);
        }
        if let Some(raw) = &cfg.traffic {
            let spec = raw
                .parse()
                .map_err(|e| format!("{}: unparsable traffic spec '{raw}': {e}", exp.name()))?;
            ctx = ctx.with_traffic(spec);
        }
        let mut timings = vec![0u64; exp.work_items(&ctx).len()];
        for f in &group {
            if f.timings_us.len() != f.items.len() {
                return Err(format!(
                    "shard {}: {}: fragment carries no per-item timings; \
                     was the worker built before timing support?",
                    f.shard,
                    exp.name()
                ));
            }
            for (item, &t) in f.items.iter().zip(&f.timings_us) {
                if t == 0 {
                    return Err(format!(
                        "shard {}: {}: item {} has a zero timing; the fragment is corrupt",
                        f.shard,
                        exp.name(),
                        item.index
                    ));
                }
                timings[item.index] = t;
            }
        }
        tf.record(exp.name(), timings);
    }
    Ok(tf)
}

/// Runs one distributed launch end to end: spawn the workers, retry
/// failures, validate and merge the fragments, write `timings.json` and the
/// merged output into the run directory, and return the rendered merged
/// output — byte-identical to a single-process `figures run`.
pub fn launch(cfg: &LaunchConfig) -> Result<String, String> {
    if cfg.jobs == 0 {
        return Err("launch needs at least one job (--jobs N, N >= 1)".to_string());
    }
    std::fs::create_dir_all(&cfg.run_dir)
        .map_err(|e| format!("cannot create run directory {}: {e}", cfg.run_dir.display()))?;
    let cmds = worker_commands(cfg)?;
    let mode = if cfg.hosts.is_empty() {
        "local".to_string()
    } else {
        format!("{} host template(s)", cfg.hosts.len())
    };
    eprintln!(
        "figures launch: {} x {} shard(s), {mode}, run dir {}",
        cfg.name,
        cfg.jobs,
        cfg.run_dir.display()
    );
    let fragments = run_workers(&cmds, &cfg.run_dir, cfg.timeout)?;
    let merged: Vec<MergedRun> = merge::merge_fragments(&fragments)?;
    let timings = assemble_timings(cfg, &fragments)?;
    let timings_path = cfg.run_dir.join("timings.json");
    std::fs::write(&timings_path, timings.to_json() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", timings_path.display()))?;
    let rendered = merge::render_merged(&merged, cfg.json);
    let merged_path = cfg.run_dir.join(if cfg.json { "merged.jsonl" } else { "merged.tsv" });
    std::fs::write(&merged_path, &rendered)
        .map_err(|e| format!("cannot write {}: {e}", merged_path.display()))?;
    eprintln!(
        "figures launch: merged {} experiment(s); timings at {}",
        merged.len(),
        timings_path.display()
    );
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory unique to one test.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jf-launch-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sh(shard: Shard, script: String) -> WorkerCmd {
        WorkerCmd { shard, program: "sh".to_string(), args: vec!["-c".to_string(), script] }
    }

    /// A minimal but valid fragment line a fake worker can emit.
    const FRAGMENT: &str = r#"{"experiment":"fig9","scale":"tiny","seed":7,"topo":null,"shard":[1,1],"timings_us":[],"items":[]}"#;

    #[test]
    fn failing_worker_is_retried_exactly_once_then_named() {
        let dir = scratch("retry");
        let marker = dir.join("attempts");
        let shard = Shard::new(2, 3).unwrap();
        let cmd = sh(shard, format!("echo x >> {}; exit 3", marker.display()));
        let start = std::time::Instant::now();
        let err = run_workers(&[cmd], &dir, None).unwrap_err();
        assert!(err.contains("shard 2/3"), "error must name the shard: {err}");
        assert!(err.contains("exit"), "error must say how the worker died: {err}");
        assert!(
            start.elapsed() >= retry_backoff(2),
            "the retry must sit out its backoff ({:?} elapsed)",
            start.elapsed()
        );
        let attempts = std::fs::read_to_string(&marker).unwrap();
        assert_eq!(attempts.lines().count(), 2, "exactly one retry after the first failure");
        let log = std::fs::read_to_string(log_path(&dir, shard)).unwrap();
        assert!(log.contains("--- attempt 1:") && log.contains("--- attempt 2:"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hung_worker_is_timed_out_killed_and_retried() {
        let dir = scratch("timeout");
        let marker = dir.join("ran-once");
        let payload = dir.join("fragment.json");
        std::fs::write(&payload, format!("{FRAGMENT}\n")).unwrap();
        let shard = Shard::new(1, 1).unwrap();
        // First attempt hangs (30s sleep); the 1s deadline must kill it and
        // the retry then succeeds — the launch never waits out the sleep.
        let cmd = sh(
            shard,
            format!(
                "if [ -f {m} ]; then cat {p}; else touch {m}; exec sleep 30; fi",
                m = marker.display(),
                p = payload.display()
            ),
        );
        let start = std::time::Instant::now();
        let fragments = run_workers(&[cmd], &dir, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(fragments.len(), 1);
        assert_eq!(fragments[0].experiment, "fig9");
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "must kill the hung attempt, not wait it out ({:?})",
            start.elapsed()
        );
        let log = std::fs::read_to_string(log_path(&dir, shard)).unwrap();
        assert!(log.contains("--- attempt 2:"), "the timed-out attempt must be retried: {log}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_that_times_out_twice_fails_the_launch_naming_the_shard() {
        let dir = scratch("timeout-twice");
        let shard = Shard::new(1, 2).unwrap();
        let cmd = sh(shard, "exec sleep 30".to_string());
        let start = std::time::Instant::now();
        let err = run_workers(&[cmd], &dir, Some(Duration::from_millis(300))).unwrap_err();
        assert!(err.contains("shard 1/2"), "error must name the shard: {err}");
        assert!(err.contains("timed out"), "error must say the worker hung: {err}");
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "both attempts must be killed at their deadline ({:?})",
            start.elapsed()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flaky_worker_succeeds_on_the_retry() {
        let dir = scratch("flaky");
        let marker = dir.join("ran-once");
        let payload = dir.join("fragment.json");
        std::fs::write(&payload, format!("{FRAGMENT}\n")).unwrap();
        let shard = Shard::new(1, 1).unwrap();
        let cmd = sh(
            shard,
            format!(
                "if [ -f {m} ]; then cat {p}; else touch {m}; exit 9; fi",
                m = marker.display(),
                p = payload.display()
            ),
        );
        let fragments = run_workers(&[cmd], &dir, None).unwrap();
        assert_eq!(fragments.len(), 1);
        assert_eq!(fragments[0].experiment, "fig9");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hard_errors_kill_workers_that_are_still_running() {
        let dir = scratch("orphans");
        let marker = dir.join("ran-once");
        let pid_file = dir.join("pid");
        // Shard 1/2 fails fast on both attempts (slightly delayed so the
        // slow worker below reliably records its pid first). Shard 2/2 fails
        // its first attempt, then turns into a 30s sleeper — when 1/2's
        // second failure aborts the launch, that sleeper must be killed, not
        // orphaned.
        let fail = sh(Shard::new(1, 2).unwrap(), "sleep 0.2; exit 4".to_string());
        let slow = sh(
            Shard::new(2, 2).unwrap(),
            format!(
                "if [ -f {m} ]; then echo $$ > {p}; exec sleep 30; else touch {m}; exit 4; fi",
                m = marker.display(),
                p = pid_file.display()
            ),
        );
        let start = std::time::Instant::now();
        let err = run_workers(&[fail, slow], &dir, None).unwrap_err();
        assert!(err.contains("shard 1/2"), "{err}");
        assert!(start.elapsed().as_secs() < 20, "must not wait out the killed sleeper");
        let pid: u32 = std::fs::read_to_string(&pid_file).unwrap().trim().parse().unwrap();
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "sleeper {pid} must be killed and reaped, not orphaned"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_garbage_fragment_files_count_as_failures() {
        let dir = scratch("garbage");
        let shard = Shard::new(1, 2).unwrap();
        let err = run_workers(&[sh(shard, "true".to_string())], &dir, None).unwrap_err();
        assert!(err.contains("shard 1/2") && err.contains("empty"), "{err}");
        let err = run_workers(&[sh(shard, "echo not json".to_string())], &dir, None).unwrap_err();
        assert!(err.contains("shard 1/2"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hosts_file_parses_templates_and_skips_comments() {
        let hosts = parse_hosts_file("# cluster\n\nssh a {}\n  ssh b {}  \n");
        assert_eq!(hosts, ["ssh a {}", "ssh b {}"]);
    }

    #[test]
    fn worker_commands_stripe_hosts_round_robin_and_quote() {
        let cfg = LaunchConfig {
            name: "all".to_string(),
            jobs: 3,
            scale: Scale::Tiny,
            seed: 7,
            topo: Some("fattree:k=4".to_string()),
            traffic: Some("stride:k=2".to_string()),
            plan: None,
            hosts: vec!["ssh a {}".to_string(), "ssh b {}".to_string()],
            run_dir: PathBuf::from("/tmp/unused"),
            timeout: None,
            json: false,
        };
        let cmds = worker_commands(&cfg).unwrap();
        assert_eq!(cmds.len(), 3);
        for (k, cmd) in cmds.iter().enumerate() {
            assert_eq!(cmd.shard, Shard::new(k + 1, 3).unwrap());
            assert_eq!(cmd.program, "sh");
            let line = &cmd.args[1];
            assert!(line.starts_with(if k % 2 == 0 { "ssh a " } else { "ssh b " }), "{line}");
            assert!(line.contains(&format!("'--shard' '{}/3'", k + 1)), "{line}");
            assert!(line.contains("'--topo' 'fattree:k=4'"), "{line}");
            assert!(line.contains("'--traffic' 'stride:k=2'"), "{line}");
        }
        // Local mode re-execs this binary directly.
        let local = LaunchConfig { hosts: Vec::new(), ..cfg };
        let cmds = worker_commands(&local).unwrap();
        assert_ne!(cmds[0].program, "sh");
        assert_eq!(cmds[2].args.last().unwrap(), "3/3");
    }

    #[test]
    fn shell_quoting_survives_embedded_quotes() {
        assert_eq!(shell_quote("a b"), "'a b'");
        assert_eq!(shell_quote("it's"), "'it'\\''s'");
    }
}
