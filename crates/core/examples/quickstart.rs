//! Quickstart: build a Jellyfish topology, inspect its structure, and measure
//! its capacity under random-permutation traffic.
//!
//! Run with: `cargo run --example quickstart`

use jellyfish::prelude::*;
use jellyfish::topology::properties::path_length_stats;

fn main() {
    // RRG(60, 12, 8): 60 ToR switches with 12 ports, 8 towards the network,
    // 4 servers each — 240 servers total.
    let topo =
        JellyfishBuilder::new(60, 12, 8).seed(2012).build().expect("valid Jellyfish parameters");
    println!("topology       : {}", topo.name());
    println!("switches       : {}", topo.num_switches());
    println!("servers        : {}", topo.total_servers());
    println!("network links  : {}", topo.num_links());

    let stats = path_length_stats(topo.graph());
    println!("mean path len  : {:.3} switch hops", stats.mean);
    println!("diameter       : {} switch hops", stats.diameter);

    // The paper's capacity metric: normalized throughput under a random
    // permutation with ideal (fluid) routing.
    let servers = ServerMap::new(&topo);
    // Workloads are spec strings resolved by the traffic registry (see
    // TRAFFIC.md); "permutation" reproduces the eager constructor exactly.
    let workload: TrafficSpec = "permutation".parse().expect("registered workload spec");
    let tm = workload.matrix(&servers, 7).expect("permutation builds on any server map");
    let result = normalized_throughput(&topo, &servers, &tm, ThroughputOptions::default());
    println!(
        "permutation throughput: {:.3} of NIC rate ({} switch-level commodities)",
        result.normalized, result.commodities
    );

    // Compare against the same-equipment fat-tree baseline.
    let ft = FatTree::new(8).expect("even port count");
    println!(
        "fat-tree(k=8) for reference: {} switches, {} servers, {} links",
        ft.topology().num_switches(),
        ft.topology().total_servers(),
        ft.topology().num_links()
    );
}
