//! The experiment registry API: list experiments, run one by name, redirect
//! a topology-generic sweep at another topology spec, and split a sweep into
//! shards (as separate processes would) before merging the fragments back
//! into the single-process result.
//!
//! ```text
//! cargo run --release --example experiment_registry
//! ```

use jellyfish::experiment::{find, registry, RunCtx, Shard, ShardFragment};
use jellyfish::figures::Scale;
use jellyfish_topology::TopoSpec;

fn main() {
    // Every figure/table of the paper is a named experiment, plus the
    // topology-generic sweeps that accept a --topo override.
    println!("{} registered experiments:", registry().len());
    for exp in registry() {
        let topo = if exp.supports_topo_override() { " [--topo]" } else { "" };
        println!("  {:20} {}{topo}", exp.name(), exp.describe());
    }

    // Run one by name: every experiment yields the same uniform Dataset.
    let exp = find("fig3").expect("fig3 is registered");
    let ctx = RunCtx::new(Scale::Tiny, 7);
    let dataset = exp.run(&ctx);
    println!("\n== {} ==\n{}", exp.name(), dataset.to_tsv());

    // The same sweep, sharded two ways as `figures run --shard K/2` would
    // run it in two separate processes, with the fragments crossing the
    // process boundary as JSON.
    let fragments: Vec<ShardFragment> = (1..=2)
        .map(|k| {
            let shard = Shard::new(k, 2).unwrap();
            let timed = exp.run_selected_timed(&RunCtx::new(Scale::Tiny, 7), &|i| shard.owns(i));
            let fragment = ShardFragment {
                experiment: exp.name().to_string(),
                scale: Scale::Tiny,
                seed: 7,
                topo: None,
                traffic: None,
                shard,
                timings_us: timed.timings_us,
                items: timed.items,
            };
            ShardFragment::from_json(&fragment.to_json()).expect("fragment JSON round-trips")
        })
        .collect();
    let merged = exp.merge(fragments.into_iter().flat_map(|f| f.items).collect());
    assert_eq!(merged, dataset, "sharded merge must equal the unsharded run");
    println!("2-way sharded run merged byte-identically to the unsharded run.");

    // Point a topology-generic experiment at a different topology: one spec
    // string, zero code changes.
    let generic = find("path_length").expect("path_length is registered");
    let spec: TopoSpec = "leafspine:leaf=6,spine=3,servers=4".parse().expect("spec parses");
    let overridden = generic.run(&RunCtx::new(Scale::Tiny, 7).with_topo(spec));
    println!("\n== {} --topo leafspine ==\n{}", generic.name(), overridden.to_tsv());
}
