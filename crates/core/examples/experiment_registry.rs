//! The experiment registry API: list experiments, run one by name, and
//! split a sweep into shards (as separate processes would) before merging
//! the fragments back into the single-process result.
//!
//! ```text
//! cargo run --release --example experiment_registry
//! ```

use jellyfish::experiment::{find, registry, Shard, ShardFragment};
use jellyfish::figures::Scale;

fn main() {
    // Every figure/table of the paper is a named experiment.
    println!("{} registered experiments:", registry().len());
    for exp in registry() {
        println!("  {:8} {}", exp.name(), exp.describe());
    }

    // Run one by name: every experiment yields the same uniform Dataset.
    let exp = find("fig3").expect("fig3 is registered");
    let dataset = exp.run(Scale::Tiny, 7);
    println!("\n== {} ==\n{}", exp.name(), dataset.to_tsv());

    // The same sweep, sharded two ways as `figures run --shard K/2` would
    // run it in two separate processes, with the fragments crossing the
    // process boundary as JSON.
    let fragments: Vec<ShardFragment> = (1..=2)
        .map(|k| {
            let shard = Shard::new(k, 2).unwrap();
            let fragment = ShardFragment {
                experiment: exp.name().to_string(),
                scale: Scale::Tiny,
                seed: 7,
                shard,
                items: exp.run_shard(Scale::Tiny, 7, shard),
            };
            ShardFragment::from_json(&fragment.to_json()).expect("fragment JSON round-trips")
        })
        .collect();
    let merged = exp.merge(fragments.into_iter().flat_map(|f| f.items).collect());
    assert_eq!(merged, dataset, "sharded merge must equal the unsharded run");
    println!("2-way sharded run merged byte-identically to the unsharded run.");
}
