//! Expansion planning: grow a Jellyfish data center rack by rack, tracking
//! how much rewiring each step needs and how capacity and path lengths hold
//! up — the paper's core operational story (§4.2).
//!
//! Run with: `cargo run --example expansion_planning`

use jellyfish::prelude::*;
use jellyfish::topology::expansion::add_switch;
use jellyfish::topology::properties::path_length_stats;

fn main() {
    // Start with a modest cluster: 20 racks of 12-port switches, 4 servers each.
    let mut topo = JellyfishBuilder::new(20, 12, 8).seed(42).build().expect("valid parameters");
    println!("initial: {} racks, {} servers", topo.num_switches(), topo.total_servers());
    println!();
    println!("stage  racks  servers  cables-moved  mean-path  diameter  permutation-throughput");

    for stage in 1..=6 {
        // Add 5 racks (each: one 12-port ToR, 4 servers) per stage.
        let mut cable_ops = 0;
        for i in 0..5 {
            let report = add_switch(&mut topo, 12, 4, stage * 100 + i).expect("expansion succeeds");
            cable_ops += report.cable_operations();
        }
        let stats = path_length_stats(topo.graph());
        let servers = ServerMap::new(&topo);
        let workload: TrafficSpec = "permutation".parse().expect("registered workload spec");
        let tm = workload.matrix(&servers, stage).expect("permutation builds on any server map");
        let tput = normalized_throughput(&topo, &servers, &tm, ThroughputOptions::default());
        println!(
            "{:>5}  {:>5}  {:>7}  {:>12}  {:>9.3}  {:>8}  {:>6.3}",
            stage,
            topo.num_switches(),
            topo.total_servers(),
            cable_ops,
            stats.mean,
            stats.diameter,
            tput.normalized
        );
    }

    println!();
    println!(
        "note: every stage only re-plugs cables proportional to the ports being added,\n\
         and throughput stays at (or near) full — the property that rigid topologies lack."
    );
}
