//! Failure resilience: fail an increasing fraction of links in a Jellyfish
//! topology and a same-equipment fat-tree and compare how capacity degrades
//! (the paper's Figure 8 scenario).
//!
//! Run with: `cargo run --example failure_resilience`

use jellyfish::capacity::jellyfish_with_servers;
use jellyfish::prelude::*;
use jellyfish::topology::failures::{fail_random_links, survivability};

fn main() {
    let k = 8; // fat-tree port count: 80 switches, 128 servers
    let ft = FatTree::new(k).expect("even k").into_topology();
    // Jellyfish on the same switches, carrying 25% more servers.
    let jf = jellyfish_with_servers(
        jellyfish::topology::fattree::FatTree::switches_for_port_count(k),
        k,
        jellyfish::topology::fattree::FatTree::servers_for_port_count(k) * 5 / 4,
        1,
    )
    .expect("same-equipment Jellyfish");

    println!("failed-links  jellyfish-throughput  fat-tree-throughput  jellyfish-connected  fat-tree-connected");
    for percent in [0u32, 5, 10, 15, 20, 25] {
        let frac = percent as f64 / 100.0;
        let mut row = vec![format!("{percent:>11}%")];
        let mut connectivity = Vec::new();
        for topo in [&jf, &ft] {
            let mut failed = topo.clone();
            fail_random_links(&mut failed, frac, 90 + percent as u64);
            let servers = ServerMap::new(&failed);
            let workload: TrafficSpec = "permutation".parse().expect("registered workload spec");
            let tm = workload.matrix(&servers, 7).expect("permutation builds on any server map");
            let opts = ThroughputOptions { stop_at_full: false, ..Default::default() };
            let tput = normalized_throughput(&failed, &servers, &tm, opts);
            row.push(format!("{:>20.3}", tput.normalized));
            connectivity.push(format!("{:>18.2}", survivability(&failed).server_fraction));
        }
        println!("{} {} {} {} {}", row[0], row[1], row[2], connectivity[0], connectivity[1]);
    }
    println!();
    println!(
        "jellyfish carries {} servers vs the fat-tree's {} on identical switches, and still\n\
         degrades gracefully: a random graph with failed links is just a slightly smaller random graph.",
        jf.total_servers(),
        ft.total_servers()
    );
}
