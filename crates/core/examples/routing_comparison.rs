//! Routing comparison: run the packet-level simulator on a Jellyfish
//! topology under the paper's §5 routing and congestion-control
//! combinations (ECMP vs 8-shortest-paths × TCP vs MPTCP), the Table 1
//! scenario at a laptop-friendly size.
//!
//! Run with: `cargo run --release --example routing_comparison`

use jellyfish::capacity::jellyfish_with_servers;
use jellyfish::metrics::jain_fairness_index;
use jellyfish::prelude::*;
use jellyfish::sim::net::{LinkParams, Network};
use jellyfish::sim::workload::build_connections;

fn run(topo: &Topology, path: PathPolicy, transport: TransportPolicy, seed: u64) -> (f64, f64) {
    let csr = topo.csr();
    let servers = ServerMap::new(topo);
    let workload: TrafficSpec = "permutation".parse().expect("registered workload spec");
    let tm = workload.matrix(&servers, seed).expect("permutation builds on any server map");
    let conns = build_connections(&csr, &servers, &tm, path, transport, seed);
    let net = Network::build(&csr, &servers, LinkParams::default());
    let config = SimConfig { duration: 8.0, warmup: 2.0, seed, ..Default::default() };
    let report = Simulator::new(net, conns, config).run();
    let jain = jain_fairness_index(&report.sorted_throughputs());
    (report.mean_throughput(), jain)
}

fn main() {
    // A mildly oversubscribed Jellyfish: 40 switches with 10 ports, ~4.5
    // servers each (180 servers on 40×10 ports).
    let topo = jellyfish_with_servers(40, 10, 180, 3).expect("valid parameters");
    println!(
        "topology: {} switches, {} servers, {} links",
        topo.num_switches(),
        topo.total_servers(),
        topo.num_links()
    );
    println!();
    println!("{:<18} {:<22} {:>12} {:>8}", "routing", "congestion control", "throughput", "Jain");
    let cases = [
        (PathPolicy::ecmp8(), TransportPolicy::Tcp { flows: 1 }),
        (PathPolicy::ecmp8(), TransportPolicy::Tcp { flows: 8 }),
        (PathPolicy::ecmp8(), TransportPolicy::Mptcp { subflows: 8 }),
        (PathPolicy::ksp8(), TransportPolicy::Tcp { flows: 1 }),
        (PathPolicy::ksp8(), TransportPolicy::Tcp { flows: 8 }),
        (PathPolicy::ksp8(), TransportPolicy::Mptcp { subflows: 8 }),
    ];
    for (path, transport) in cases {
        let (mean, jain) = run(&topo, path, transport, 11);
        println!(
            "{:<18} {:<22} {:>11.1}% {:>8.3}",
            path.label(),
            transport.label(),
            mean * 100.0,
            jain
        );
    }
    println!();
    println!("(release mode recommended; the discrete-event engine simulates every packet)");
}
