//! Cross-crate integration tests: every layer of the stack working together
//! on the scenarios the paper's evaluation is built from.

use jellyfish::capacity::{jellyfish_with_servers, supports_full_throughput};
use jellyfish::experiment::catalog::FIG13_JAIN_PREFIX;
use jellyfish::experiment::{find, Dataset, RunCtx};
use jellyfish::figures::Scale;
use jellyfish::metrics::jain_fairness_index;
use jellyfish::prelude::*;
use jellyfish::sim::fluid::max_min_fair_allocation;
use jellyfish::sim::net::{LinkParams, Network};
use jellyfish::sim::workload::build_connections;
use jellyfish::topology::failures::fail_random_links;
use jellyfish::topology::properties::{
    fraction_of_server_pairs_within, path_length_stats, server_pair_histogram,
};

const SEED: u64 = 2012;

/// Runs a registered experiment the way `figures run` does.
fn run_experiment(name: &str, scale: Scale, seed: u64) -> Dataset {
    find(name).unwrap_or_else(|| panic!("{name} is registered")).run(&RunCtx::new(scale, seed))
}

/// Figure 1(c) at a reduced but still meaningful scale: the same-equipment
/// Jellyfish reaches far more server pairs within 5 hops than the fat-tree.
#[test]
fn same_equipment_jellyfish_has_shorter_server_paths() {
    let k = 10; // 125 switches, 250 servers
    let servers = jellyfish::topology::fattree::FatTree::servers_for_port_count(k);
    let (ft, jf) = jellyfish::topology::fattree::same_equipment_pair(k, servers, SEED).unwrap();
    let jf_hist = server_pair_histogram(&jf);
    let ft_hist = server_pair_histogram(ft.topology());
    let jf5 = fraction_of_server_pairs_within(&jf_hist, 5);
    let ft5 = fraction_of_server_pairs_within(&ft_hist, 5);
    assert!(jf5 > 0.9, "jellyfish reaches only {jf5} of pairs within 5 hops");
    assert!(jf5 > ft5 + 0.2, "jellyfish {jf5} vs fat-tree {ft5}");
    // Same diameter or better, as the paper observes.
    let jf_stats = path_length_stats(jf.graph());
    let ft_stats = path_length_stats(ft.topology().graph());
    assert!(jf_stats.diameter <= ft_stats.diameter);
}

/// The §4.1 capacity headline at small scale: with the fat-tree's switching
/// equipment, Jellyfish supports at least as many servers at full throughput.
#[test]
fn jellyfish_matches_fat_tree_server_count_at_full_capacity() {
    let k = 6;
    let switches = jellyfish::topology::fattree::FatTree::switches_for_port_count(k);
    let ft_servers = jellyfish::topology::fattree::FatTree::servers_for_port_count(k);
    // The fat-tree itself supports its servers at full throughput.
    let ft = FatTree::new(k).unwrap().into_topology();
    assert!(supports_full_throughput(&ft, 2, ThroughputOptions::default(), SEED));
    // Jellyfish with the same equipment and the same server count does too.
    let jf = jellyfish_with_servers(switches, k, ft_servers, SEED).unwrap();
    assert!(supports_full_throughput(&jf, 2, ThroughputOptions::default(), SEED));
    // And with ~12% more servers it still does (the paper finds up to 27% at
    // larger sizes). The check uses a slightly coarser solver accuracy: at
    // this tiny scale the Garg–Könemann under-estimate otherwise dominates.
    let jf_more = jellyfish_with_servers(switches, k, ft_servers * 112 / 100, SEED).unwrap();
    let coarse = ThroughputOptions { epsilon: 0.1, ..Default::default() };
    assert!(supports_full_throughput(&jf_more, 2, coarse, SEED));
}

/// Incremental expansion preserves capacity: topologies grown rack-by-rack
/// support the same permutation throughput as from-scratch ones (Figure 6).
#[test]
fn incremental_growth_matches_from_scratch_capacity() {
    let series = run_experiment("fig6", Scale::Tiny, SEED).series;
    let incremental = &series[0];
    let scratch = &series[1];
    for (a, b) in incremental.points.iter().zip(&scratch.points) {
        assert_eq!(a.0, b.0, "sizes should line up");
        assert!(
            (a.1 - b.1).abs() < 0.12,
            "incremental {} vs scratch {} at {} servers",
            a.1,
            b.1,
            a.0
        );
    }
}

/// Failure resilience (Figure 8): failing 15% of links costs Jellyfish less
/// than ~20% of its throughput.
#[test]
fn jellyfish_degrades_gracefully_under_link_failures() {
    // 45 ten-port switches with 3 servers each: the degree-to-server ratio of
    // the paper's Figure 8 configuration (servers ≈ 0.4·r).
    let topo = jellyfish_with_servers(45, 10, 135, SEED).unwrap();
    let baseline = {
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, 3);
        normalized_throughput(
            &topo,
            &servers,
            &tm,
            ThroughputOptions { stop_at_full: false, ..Default::default() },
        )
        .normalized
    };
    let mut failed = topo.clone();
    fail_random_links(&mut failed, 0.15, SEED);
    let degraded = {
        let servers = ServerMap::new(&failed);
        let tm = TrafficMatrix::random_permutation(&servers, 3);
        normalized_throughput(
            &failed,
            &servers,
            &tm,
            ThroughputOptions { stop_at_full: false, ..Default::default() },
        )
        .normalized
    };
    assert!(degraded > 0.0);
    assert!(
        degraded >= baseline * 0.75,
        "throughput fell from {baseline} to {degraded} after 15% link failures"
    );
}

/// The packet-level engine and the fluid engine agree on the big picture for
/// the same workload (DESIGN.md's engine cross-check).
#[test]
fn packet_and_fluid_engines_agree_roughly() {
    let topo = JellyfishBuilder::new(16, 8, 5).seed(SEED).build().unwrap();
    let csr = topo.csr();
    let servers = ServerMap::new(&topo);
    let tm = TrafficMatrix::random_permutation(&servers, 5);
    let conns = build_connections(
        &csr,
        &servers,
        &tm,
        PathPolicy::ksp8(),
        TransportPolicy::Mptcp { subflows: 8 },
        SEED,
    );
    let fluid = max_min_fair_allocation(&conns).mean_throughput();
    let net = Network::build(&csr, &servers, LinkParams::default());
    let cfg = SimConfig { duration: 8.0, warmup: 2.0, seed: SEED, ..Default::default() };
    let packet = Simulator::new(net, conns, cfg).run().mean_throughput();
    assert!(packet > 0.0 && fluid > 0.0);
    assert!(
        packet <= fluid * 1.15 + 0.05,
        "packet engine ({packet}) should not exceed the fluid upper-ish bound ({fluid}) by much"
    );
    assert!(
        packet >= fluid * 0.5,
        "packet engine ({packet}) implausibly far below fluid allocation ({fluid})"
    );
}

/// Fairness (Figure 13): both topologies give flows near-equal shares.
#[test]
fn both_topologies_are_flow_fair() {
    let ds = run_experiment("fig13", Scale::Tiny, SEED);
    assert!(!ds.series.is_empty());
    for s in &ds.series {
        let jain = ds
            .cells
            .iter()
            .find(|c| c.name == format!("{FIG13_JAIN_PREFIX}{}", s.label))
            .expect("fig13 emits one Jain cell per topology")
            .value;
        let tputs: Vec<f64> = s.points.iter().map(|&(_, y)| y).collect();
        assert!(!tputs.is_empty());
        assert!(jain > 0.85, "{}: Jain index {jain} too low", s.label);
        // Also check directly against the metric function.
        assert!((jain - jain_fairness_index(&tputs)).abs() < 1e-12);
    }
}

/// LEGUP comparison (Figure 7): by the final stage Jellyfish's bisection
/// bandwidth exceeds the Clos planner's at the same cumulative budget.
#[test]
fn jellyfish_expansion_beats_clos_planner_on_bisection_per_dollar() {
    // Row values: cumulative budget, jellyfish bisection, clos bisection,
    // servers (the fig7 column order).
    let rows = run_experiment("fig7", Scale::Tiny, SEED).rows;
    assert!(rows.len() >= 3);
    let last = rows.last().unwrap();
    assert!(last.values[1] > last.values[2]);
}

/// The figures CLI's two-layer Jellyfish localization sweep (Figure 14)
/// degrades gracefully: ~50-60% localization costs well under half the
/// capacity.
#[test]
fn cable_localization_costs_little_throughput() {
    let series = run_experiment("fig14", Scale::Tiny, SEED).series;
    for s in &series {
        let at_low = s.points.iter().find(|p| p.0 <= 0.01).map(|p| p.1).unwrap();
        let at_mid = s.points.iter().find(|p| (p.0 - 0.6).abs() < 0.01).map(|p| p.1).unwrap();
        assert!(at_mid >= at_low * 0.55, "60% localization dropped {at_low} -> {at_mid}");
    }
}

/// The rayon-parallel figure pipelines are deterministic: every parallel
/// item derives its seed from (figure seed, item index) exactly as a serial
/// loop would, so two runs — regardless of thread count or scheduling —
/// produce bit-identical results.
#[test]
fn parallel_figures_are_deterministic() {
    for name in ["fig1c", "fig5", "table1"] {
        let a = run_experiment(name, Scale::Tiny, SEED);
        let b = run_experiment(name, Scale::Tiny, SEED);
        assert_eq!(a, b, "{name} differs between runs");
    }
}
