//! Shard determinism: for every registered experiment at `Scale::Tiny`,
//! splitting the work items across N shards and merging the shard outputs
//! reproduces the unsharded [`Dataset`] exactly — same in-memory value, same
//! rendered TSV bytes — including when the fragments cross a process
//! boundary as JSON (the `figures run --shard` / `figures merge` path).

use jellyfish::experiment::{registry, Dataset, Experiment, ItemResult, Shard, ShardFragment};
use jellyfish::figures::Scale;
use proptest::prelude::*;
use std::sync::OnceLock;

const SEED: u64 = 7;

struct Baseline {
    name: &'static str,
    items: Vec<ItemResult>,
    dataset: Dataset,
}

/// Every experiment's full item results and merged dataset at `Scale::Tiny`,
/// computed once per test binary (the sweep is the expensive part; the
/// partition/merge checks against it are cheap).
fn baselines() -> &'static [Baseline] {
    static CELL: OnceLock<Vec<Baseline>> = OnceLock::new();
    CELL.get_or_init(|| {
        registry()
            .iter()
            .map(|exp| {
                let items = exp.run_items(Scale::Tiny, SEED, None);
                let dataset = exp.merge(items.clone());
                Baseline { name: exp.name(), items, dataset }
            })
            .collect()
    })
}

fn find(name: &str) -> &'static dyn Experiment {
    jellyfish::experiment::find(name).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Partitioning the item results of any experiment across N shards (the
    /// exact ownership rule `run_shard` uses) and merging — with the shards
    /// fed to `merge` in arbitrary rotated order — equals the unsharded
    /// dataset, value- and byte-exactly.
    #[test]
    fn merging_n_shards_equals_the_unsharded_dataset(
        n in 1usize..=6,
        rotation in 0usize..6,
    ) {
        for base in baselines() {
            let exp = find(base.name);
            let mut shards: Vec<Vec<ItemResult>> = (1..=n)
                .map(|k| {
                    let shard = Shard::new(k, n).unwrap();
                    base.items
                        .iter()
                        .filter(|it| shard.owns(it.index))
                        .cloned()
                        .collect()
                })
                .collect();
            // Shard outputs can arrive for merging in any order.
            shards.rotate_left(rotation % n.max(1));
            let merged = exp.merge(shards.into_iter().flatten().collect());
            prop_assert_eq!(
                &merged, &base.dataset,
                "{}: {} shards merged != unsharded", base.name, n
            );
            prop_assert_eq!(
                merged.to_tsv(), base.dataset.to_tsv(),
                "{}: rendered TSV differs", base.name
            );
        }
    }
}

/// The full process-boundary path: `run_shard` recomputes each half of every
/// experiment from scratch, the fragments round-trip through their JSON wire
/// format, and the merge of the parsed fragments is byte-identical to the
/// unsharded run.
#[test]
fn sharded_runs_roundtrip_through_fragment_json() {
    const N: usize = 2;
    for base in baselines() {
        let exp = find(base.name);
        let mut parsed_items = Vec::new();
        for k in 1..=N {
            let shard = Shard::new(k, N).unwrap();
            let fragment = ShardFragment {
                experiment: exp.name().to_string(),
                scale: Scale::Tiny,
                seed: SEED,
                shard,
                items: exp.run_shard(Scale::Tiny, SEED, shard),
            };
            let parsed = ShardFragment::from_json(&fragment.to_json())
                .unwrap_or_else(|e| panic!("{}: fragment JSON round-trip failed: {e}", base.name));
            assert_eq!(parsed, fragment, "{}: JSON altered fragment {k}/{N}", base.name);
            parsed_items.extend(parsed.items);
        }
        let merged = exp.merge(parsed_items);
        assert_eq!(merged, base.dataset, "{}: sharded recompute != unsharded", base.name);
        assert_eq!(merged.to_tsv(), base.dataset.to_tsv(), "{}: TSV bytes differ", base.name);
        assert_eq!(merged.to_json(), base.dataset.to_json(), "{}: JSON bytes differ", base.name);
    }
}

/// Work items are stable and complete: indices are `0..len`, in order, and
/// every item is owned by exactly one shard for any N.
#[test]
fn work_items_are_dense_and_uniquely_owned() {
    for exp in registry() {
        let items = exp.work_items(Scale::Tiny, SEED);
        assert!(!items.is_empty(), "{}: no work items", exp.name());
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, i, "{}: non-dense item indices", exp.name());
        }
        for n in 1..=5 {
            for item in &items {
                let owners =
                    (1..=n).filter(|&k| Shard::new(k, n).unwrap().owns(item.index)).count();
                assert_eq!(
                    owners,
                    1,
                    "{}: item {} owned by {} shards",
                    exp.name(),
                    item.index,
                    owners
                );
            }
        }
    }
}
