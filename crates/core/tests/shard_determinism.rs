//! Shard determinism: for every registered experiment at `Scale::Tiny` —
//! and, for the override-capable experiments, additionally under `--topo`
//! and `--traffic` spec overrides — splitting the work items across N shards and merging the
//! shard outputs reproduces the unsharded [`Dataset`] exactly — same
//! in-memory value, same rendered TSV bytes — including when the fragments
//! cross a process boundary as JSON (the `figures run --shard` /
//! `figures merge` path).

use jellyfish::experiment::{
    registry, Dataset, Experiment, ItemResult, RunCtx, Shard, ShardFragment,
};
use jellyfish::figures::Scale;
use jellyfish_topology::TopoSpec;
use jellyfish_traffic::TrafficSpec;
use proptest::prelude::*;
use std::sync::OnceLock;

const SEED: u64 = 7;

/// The spec axis: each topology-generic experiment also runs under an
/// override exercising a different generator (and, for the failure sweep, a
/// transform chain), so sharding is validated across the whole registry.
const TOPO_OVERRIDES: [(&str, &str); 6] = [
    ("throughput_vs_size", "leafspine:leaf=6,spine=3,servers=4"),
    ("path_length", "swdc:lattice=ring,n=16,servers=2"),
    ("bisection", "fattree:k=4"),
    ("failure_sweep", "jellyfish:switches=16,ports=8,degree=5+fail_switches=0.05"),
    // Impaired runs must shard/merge bit-identically too: the impairment
    // RNG streams are pure functions of (spec, seed), never of shard shape.
    ("throughput_vs_loss", "jellyfish:switches=16,ports=8,degree=5+impair=jitter_ms:2,queue:16"),
    ("latency_histogram", "fattree:k=4+impair=ge:0.05/0.5,jdist:exp,jitter_ms:3"),
];

/// The workload axis: traffic-capable experiments also run under a
/// `--traffic` override (one exercising the transform chain), so sharding is
/// validated when the workload — and, for `throughput_vs_workload`, the work
/// item list itself — is redirected by a spec.
const TRAFFIC_OVERRIDES: [(&str, &str); 2] = [
    ("throughput_vs_workload", "zipf:s=1.5,hot_racks=2+scale_demand=0.5"),
    ("failure_sweep", "stride:k=3+epochs=2"),
];

struct Baseline {
    name: &'static str,
    topo: Option<&'static str>,
    traffic: Option<&'static str>,
    items: Vec<ItemResult>,
    dataset: Dataset,
}

fn ctx_for(topo: Option<&str>, traffic: Option<&str>) -> RunCtx {
    let mut ctx = RunCtx::new(Scale::Tiny, SEED);
    if let Some(raw) = topo {
        ctx = ctx.with_topo(raw.parse::<TopoSpec>().expect("override spec parses"));
    }
    if let Some(raw) = traffic {
        ctx = ctx.with_traffic(raw.parse::<TrafficSpec>().expect("override traffic spec parses"));
    }
    ctx
}

/// Every experiment's full item results and merged dataset at `Scale::Tiny`
/// (plus the `--topo` override combinations), computed once per test binary
/// (the sweep is the expensive part; the partition/merge checks against it
/// are cheap).
fn baselines() -> &'static [Baseline] {
    static CELL: OnceLock<Vec<Baseline>> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut cases: Vec<(&'static str, Option<&'static str>, Option<&'static str>)> =
            registry().iter().map(|exp| (exp.name(), None, None)).collect();
        cases.extend(TOPO_OVERRIDES.iter().map(|&(name, spec)| (name, Some(spec), None)));
        cases.extend(TRAFFIC_OVERRIDES.iter().map(|&(name, spec)| (name, None, Some(spec))));
        cases
            .into_iter()
            .map(|(name, topo, traffic)| {
                let exp = find(name);
                let items = exp.run_items(&ctx_for(topo, traffic), None);
                let dataset = exp.merge(items.clone());
                Baseline { name, topo, traffic, items, dataset }
            })
            .collect()
    })
}

fn find(name: &str) -> &'static dyn Experiment {
    jellyfish::experiment::find(name).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Partitioning the item results of any experiment across N shards (the
    /// exact ownership rule `run_shard` uses) and merging — with the shards
    /// fed to `merge` in arbitrary rotated order — equals the unsharded
    /// dataset, value- and byte-exactly.
    #[test]
    fn merging_n_shards_equals_the_unsharded_dataset(
        n in 1usize..=6,
        rotation in 0usize..6,
    ) {
        for base in baselines() {
            let exp = find(base.name);
            let mut shards: Vec<Vec<ItemResult>> = (1..=n)
                .map(|k| {
                    let shard = Shard::new(k, n).unwrap();
                    base.items
                        .iter()
                        .filter(|it| shard.owns(it.index))
                        .cloned()
                        .collect()
                })
                .collect();
            // Shard outputs can arrive for merging in any order.
            shards.rotate_left(rotation % n.max(1));
            let merged = exp.merge(shards.into_iter().flatten().collect());
            prop_assert_eq!(
                &merged, &base.dataset,
                "{} (topo {:?}): {} shards merged != unsharded", base.name, base.topo, n
            );
            prop_assert_eq!(
                merged.to_tsv(), base.dataset.to_tsv(),
                "{} (topo {:?}): rendered TSV differs", base.name, base.topo
            );
        }
    }
}

/// The full process-boundary path: `run_shard` recomputes each half of every
/// experiment (including the `--topo` overridden ones) from scratch, the
/// fragments round-trip through their JSON wire format, and the merge of the
/// parsed fragments is byte-identical to the unsharded run.
#[test]
fn sharded_runs_roundtrip_through_fragment_json() {
    const N: usize = 2;
    for base in baselines() {
        let exp = find(base.name);
        let mut parsed_items = Vec::new();
        for k in 1..=N {
            let shard = Shard::new(k, N).unwrap();
            let timed =
                exp.run_selected_timed(&ctx_for(base.topo, base.traffic), &|i| shard.owns(i));
            assert_eq!(
                timed.items.len(),
                timed.timings_us.len(),
                "{}: timing per item",
                exp.name()
            );
            assert!(timed.timings_us.iter().all(|&t| t > 0), "{}: zero timing", exp.name());
            let fragment = ShardFragment {
                experiment: exp.name().to_string(),
                scale: Scale::Tiny,
                seed: SEED,
                topo: base.topo.map(str::to_string),
                traffic: base.traffic.map(str::to_string),
                shard,
                timings_us: timed.timings_us,
                items: timed.items,
            };
            let parsed = ShardFragment::from_json(&fragment.to_json())
                .unwrap_or_else(|e| panic!("{}: fragment JSON round-trip failed: {e}", base.name));
            assert_eq!(parsed, fragment, "{}: JSON altered fragment {k}/{N}", base.name);
            parsed_items.extend(parsed.items);
        }
        let merged = exp.merge(parsed_items);
        assert_eq!(
            merged, base.dataset,
            "{} (topo {:?}): sharded recompute != unsharded",
            base.name, base.topo
        );
        assert_eq!(merged.to_tsv(), base.dataset.to_tsv(), "{}: TSV bytes differ", base.name);
        assert_eq!(merged.to_json(), base.dataset.to_json(), "{}: JSON bytes differ", base.name);
    }
}

/// Work items are stable and complete: indices are `0..len`, in order, and
/// every item is owned by exactly one shard for any N. Override-capable
/// experiments must also replace their whole axis when a `--topo` spec is
/// set, and carry the spec on every item.
#[test]
fn work_items_are_dense_and_uniquely_owned() {
    let mut cases: Vec<(&str, Option<&str>, Option<&str>)> =
        registry().iter().map(|exp| (exp.name(), None, None)).collect();
    cases.extend(TOPO_OVERRIDES.iter().copied().map(|(n, s)| (n, Some(s), None)));
    cases.extend(TRAFFIC_OVERRIDES.iter().copied().map(|(n, s)| (n, None, Some(s))));
    for (name, topo, traffic) in cases {
        let exp = find(name);
        let items = exp.work_items(&ctx_for(topo, traffic));
        assert!(!items.is_empty(), "{name}: no work items");
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, i, "{name}: non-dense item indices");
        }
        if let Some(raw) = topo {
            let spec: TopoSpec = raw.parse().unwrap();
            for item in &items {
                let item_spec = item.spec.as_ref().unwrap_or_else(|| {
                    panic!("{name}: overridden item '{}' lost its spec", item.label)
                });
                assert_eq!(
                    item_spec.base(),
                    spec.base(),
                    "{name}: item '{}' ignores the --topo override",
                    item.label
                );
            }
        }
        for n in 1..=5 {
            for item in &items {
                let owners =
                    (1..=n).filter(|&k| Shard::new(k, n).unwrap().owns(item.index)).count();
                assert_eq!(owners, 1, "{name}: item {} owned by {} shards", item.index, owners);
            }
        }
    }
}
