//! Spec ↔ legacy-constructor equivalence: building a topology through the
//! `TopoSpec` generator registry is bit-identical to calling the legacy
//! constructor it wraps, for every construction the 17 catalog experiments
//! use — plus determinism of `build(spec, seed)` for every spec any
//! registered experiment's work items carry at `Scale::Tiny`.

use jellyfish::experiment::{registry, RunCtx};
use jellyfish::figures::Scale;
use jellyfish_topology::clos::ClosConfig;
use jellyfish_topology::degree_diameter::figure3_pair;
use jellyfish_topology::fattree::{same_equipment_pair, FatTree};
use jellyfish_topology::swdc::{figure4_swdc, Lattice, SwdcBuilder};
use jellyfish_topology::{JellyfishBuilder, TopoSpec, Topology};

const SEED: u64 = 2012;

/// Structural equality: same links, same per-switch ports and servers.
fn assert_same(context: &str, a: &Topology, b: &Topology) {
    assert_eq!(a.num_switches(), b.num_switches(), "{context}: switch counts differ");
    assert_eq!(
        a.graph().edges().collect::<Vec<_>>(),
        b.graph().edges().collect::<Vec<_>>(),
        "{context}: link sets differ"
    );
    for v in 0..a.num_switches() {
        assert_eq!(a.ports(v), b.ports(v), "{context}: ports differ at switch {v}");
        assert_eq!(a.servers(v), b.servers(v), "{context}: servers differ at switch {v}");
    }
}

fn build(spec: &str, seed: u64) -> Topology {
    spec.parse::<TopoSpec>()
        .unwrap_or_else(|e| panic!("'{spec}' does not parse: {e}"))
        .build(seed)
        .unwrap_or_else(|e| panic!("'{spec}' does not build: {e}"))
}

#[test]
fn jellyfish_spec_equals_jellyfish_builder() {
    // fig5/fig9/fig10/fig14-style homogeneous RRG.
    let legacy = JellyfishBuilder::new(25, 8, 5).seed(SEED).build().unwrap();
    assert_same("rrg", &build("jellyfish:switches=25,ports=8,degree=5", SEED), &legacy);
    // The `servers` key is the complement of `degree`.
    assert_same("rrg/servers", &build("jellyfish:switches=25,ports=8,servers=3", SEED), &legacy);
}

#[test]
fn jellyfish_servers_spec_equals_figure3_pair_jellyfish() {
    // fig3/fig4-style: explicit degree plus a reduced per-switch server count.
    let (bench, jelly) = figure3_pair(20, 6, 4, 1, SEED).unwrap();
    assert_same("fig3/dd", &build("dd:n=20,ports=6,degree=4,servers=1", SEED), &bench);
    assert_same(
        "fig3/jellyfish",
        &build("jellyfish:switches=20,ports=6,degree=4,servers=1", SEED ^ 0xF00D),
        &jelly,
    );
}

#[test]
fn jellyfish_total_spec_equals_same_equipment_pair() {
    // fig1c/fig8/fig13/table1-style: total servers spread evenly over the
    // fat-tree's switching equipment.
    let k = 6;
    let servers = FatTree::servers_for_port_count(k);
    let switches = FatTree::switches_for_port_count(k);
    let (ft, jf) = same_equipment_pair(k, servers, SEED).unwrap();
    assert_same(
        "same-equipment/jellyfish",
        &build(&format!("jellyfish:switches={switches},ports={k},servers_total={servers}"), SEED),
        &jf,
    );
    assert_same("same-equipment/fattree", &build(&format!("fattree:k={k}"), SEED), ft.topology());
}

#[test]
fn swdc_spec_equals_figure4_constructor() {
    for (lattice, token) in
        [(Lattice::Ring, "ring"), (Lattice::Torus2D, "torus2d"), (Lattice::HexTorus3D, "hex3d")]
    {
        // Pin against the underlying builder, not `figure4_swdc` — the
        // latter is itself a wrapper over the spec registry now, which would
        // make the comparison circular. Figure 4's historical setup is
        // degree 6 with 2 servers per switch.
        let legacy =
            SwdcBuilder::new(lattice, 36, 6).servers_per_switch(2).seed(SEED).build().unwrap();
        let via_spec = build(&format!("swdc:lattice={token},n=36,servers=2"), SEED);
        assert_same(token, &via_spec, &legacy);
        // And the wrapper still reproduces the same topology.
        assert_same(token, &figure4_swdc(lattice, 36, 2, SEED).unwrap(), &legacy);
    }
}

#[test]
fn leafspine_spec_equals_clos_config() {
    let legacy =
        ClosConfig { leaves: 6, spines: 3, leaf_ports: 7, spine_ports: 6, servers_per_leaf: 4 }
            .build()
            .unwrap();
    assert_same("leafspine", &build("leafspine:leaf=6,spine=3,servers=4", SEED), &legacy);
}

/// `build(spec, seed)` is deterministic for every spec any registered
/// experiment's Tiny-scale work items carry (the catalog's whole topology
/// axis), and two independently constructed `RunCtx` caches hand back
/// structurally identical snapshots.
#[test]
fn every_catalog_item_spec_builds_deterministically() {
    let mut specs: Vec<TopoSpec> = Vec::new();
    for exp in registry() {
        let ctx = RunCtx::new(Scale::Tiny, SEED);
        for item in exp.work_items(&ctx) {
            if let Some(spec) = item.spec {
                if !specs.contains(&spec) {
                    specs.push(spec);
                }
            }
        }
    }
    assert!(
        specs.len() >= 15,
        "expected a topology axis across the catalog, found only {} specs",
        specs.len()
    );
    for spec in &specs {
        let a = spec.build(SEED).unwrap_or_else(|e| panic!("'{spec}' does not build: {e}"));
        let b = spec.build(SEED).unwrap();
        assert_same(&spec.to_string(), &a, &b);
        // Round-trip through the canonical string keeps identity.
        let reparsed: TopoSpec = spec.to_string().parse().unwrap();
        assert_eq!(&reparsed, spec, "'{spec}' is not parse/display stable");
    }
}
