//! Partitioner properties: for random timing vectors and shard counts, the
//! LPT bin-packing [`WorkPlan`] is an *exact* partition — every item in
//! exactly one bin, exactly the coverage striping gives — so swapping the
//! partitioner can never gain or lose work items, only move them. Plus the
//! classic greedy load bound and build determinism.

use jellyfish::experiment::{Shard, WorkPlan};
use proptest::collection::vec;
use proptest::prelude::*;

/// How many bins own each item under `plan`.
fn owners_per_item(plan: &WorkPlan, num_items: usize) -> Vec<usize> {
    let n = plan.num_shards();
    let mut owners = vec![0usize; num_items];
    for k in 1..=n {
        for &i in plan.items_for(Shard::new(k, n).unwrap()) {
            owners[i] += 1;
        }
    }
    owners
}

/// The heaviest bin's total timing under `plan`.
fn max_load(plan: &WorkPlan, timings: &[u64]) -> u64 {
    let n = plan.num_shards();
    (1..=n)
        .map(|k| plan.items_for(Shard::new(k, n).unwrap()).iter().map(|&i| timings[i]).sum::<u64>())
        .max()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LPT covers every item exactly once, and its per-item coverage vector
    /// is identical to striping's: no item gained, no item lost, regardless
    /// of the timings.
    #[test]
    fn lpt_covers_every_item_exactly_once_and_matches_striping(
        timings in vec(0u64..5_000_000, 0..40),
        shards in 1usize..=8,
    ) {
        let lpt = WorkPlan::lpt(&timings, shards);
        let striped = WorkPlan::striped(timings.len(), shards);
        let lpt_owners = owners_per_item(&lpt, timings.len());
        prop_assert!(
            lpt_owners.iter().all(|&c| c == 1),
            "LPT must place every item in exactly one bin: {lpt_owners:?}"
        );
        prop_assert_eq!(
            lpt_owners,
            owners_per_item(&striped, timings.len()),
            "LPT coverage must equal striping coverage"
        );
        // WorkPlan::plan picks LPT exactly when the timings line up.
        prop_assert_eq!(WorkPlan::plan(timings.len(), shards, Some(&timings)), lpt);
        prop_assert_eq!(WorkPlan::plan(timings.len(), shards, None), striped.clone());
        prop_assert_eq!(
            WorkPlan::plan(timings.len() + 1, shards, Some(&timings)),
            WorkPlan::striped(timings.len() + 1, shards),
            "stale timing vectors must fall back to striping"
        );
    }

    /// The greedy guarantee: the heaviest LPT bin carries at most the ideal
    /// (mean) load plus one item — the bound that makes timing-aware
    /// partitioning worth it for the launcher.
    #[test]
    fn lpt_max_load_is_within_mean_plus_one_item(
        timings in vec(1u64..1_000_000, 1..40),
        shards in 1usize..=8,
    ) {
        let plan = WorkPlan::lpt(&timings, shards);
        let total: u64 = timings.iter().sum();
        let heaviest = *timings.iter().max().unwrap();
        let bound = total as f64 / shards as f64 + heaviest as f64 + 1e-9;
        let load = max_load(&plan, &timings);
        prop_assert!(
            (load as f64) <= bound,
            "LPT max load {load} exceeds mean+max bound {bound} \
             (total {total}, shards {shards}, heaviest {heaviest})"
        );
    }

    /// Plans are pure functions of their inputs: re-building gives the same
    /// bins, and every shard's item list is sorted ascending (the order the
    /// fragment items are emitted in).
    #[test]
    fn plans_are_deterministic_with_sorted_bins(
        timings in vec(0u64..1000, 0..30),
        shards in 1usize..=6,
    ) {
        let plan = WorkPlan::lpt(&timings, shards);
        prop_assert_eq!(&plan, &WorkPlan::lpt(&timings, shards));
        for k in 1..=shards {
            let bin = plan.items_for(Shard::new(k, shards).unwrap());
            prop_assert!(bin.windows(2).all(|w| w[0] < w[1]), "bin {k} not sorted: {bin:?}");
        }
    }
}

/// Striping through `WorkPlan` is bit-compatible with the legacy
/// [`Shard::owns`] rule `figures run --shard` used before plans existed.
#[test]
fn striped_plan_is_the_legacy_shard_rule() {
    for n in 1..=6usize {
        let plan = WorkPlan::striped(23, n);
        for k in 1..=n {
            let shard = Shard::new(k, n).unwrap();
            for item in 0..23 {
                assert_eq!(plan.owns(shard, item), shard.owns(item), "item {item} shard {shard}");
            }
        }
    }
}
