//! Churn equivalence: an incremental [`Session`] and a full-rebuild oracle
//! session, fed the same churn events and queries, must agree *byte for
//! byte* after every single event — for every registered topology
//! generator, under random event sequences (including restores and
//! expansions, the cases that stress cache invalidation and matrix
//! re-keying the hardest).
//!
//! Apply replies are compared at the typed level on the topology-shape
//! fields (repair accounting legitimately differs between the modes);
//! query replies are compared as rendered wire bytes, and the full
//! distance matrices are compared after every event.

use std::sync::OnceLock;

use jellyfish::service::wire::handle_line;
use jellyfish::service::{ChurnEvent, Session};
use jellyfish_topology::{TopoSpec, Topology};
use proptest::prelude::*;

const SEED: u64 = 2012;

/// One tiny instance of every registered topology generator, so the
/// equivalence proof covers random graphs, rigid Clos structures (no free
/// ports for expansion — error paths must match too), lattices and the
/// annealed degree-diameter graphs alike.
const GENERATOR_SPECS: [&str; 5] = [
    "jellyfish:switches=14,ports=6,degree=3",
    "fattree:k=4",
    "swdc:lattice=torus2d,n=16,servers=1",
    "dd:n=18,ports=6,degree=4,servers=1",
    "leafspine:leaf=4,spine=2,servers=2",
];

/// Base topologies, built once per test binary (the annealed `dd` build is
/// the expensive part; every proptest case clones from here).
fn bases() -> &'static [(&'static str, Topology)] {
    static CELL: OnceLock<Vec<(&'static str, Topology)>> = OnceLock::new();
    CELL.get_or_init(|| {
        GENERATOR_SPECS
            .iter()
            .map(|&raw| {
                let spec: TopoSpec = raw.parse().expect("generator spec parses");
                let topo = spec.build(SEED).unwrap_or_else(|e| panic!("building '{raw}': {e}"));
                (raw, topo)
            })
            .collect()
    })
}

/// Fractions the random-fraction events draw from: the no-op boundary plus
/// realistic churn rates.
const FRACTIONS: [f64; 4] = [0.0, 0.05, 0.1, 0.25];

/// An abstract churn op, encoded as `(kind, pick, fraction_index)` drawn by
/// the strategy; node/link picks are indices resolved against the *current*
/// topology at replay time, so every drawn sequence is valid. `FailLink` on
/// a linkless graph degrades to `Restore` (there is nothing left to fail).
fn decode(op: (usize, usize, usize), topo: &Topology) -> ChurnEvent {
    let (kind, pick, fidx) = op;
    match kind {
        0 => {
            let edges: Vec<_> = topo.graph().edges().collect();
            match edges.get(pick % edges.len().max(1)) {
                Some(e) => ChurnEvent::FailLink { a: e.a, b: e.b },
                None => ChurnEvent::Restore,
            }
        }
        1 => ChurnEvent::FailLinks { fraction: FRACTIONS[fidx] },
        2 => ChurnEvent::FailSwitch { node: pick % topo.num_switches() },
        3 => ChurnEvent::FailSwitches { fraction: FRACTIONS[fidx % 3] },
        4 => ChurnEvent::Expand { racks: pick % 2 + 1 },
        _ => ChurnEvent::Restore,
    }
}

/// The query battery run between events: dist + ECMP path (cache-warming,
/// so later events must invalidate *exactly*) + a small KSP set (always
/// dropped on churn — recomputation must still agree) + a one-restart
/// bisection (stateless, so it pins the topologies themselves equal).
fn query_lines(topo: &Topology, p: usize, q: usize) -> Vec<String> {
    let n = topo.num_switches();
    let (src, dst) = (p % n, q % n);
    vec![
        format!("{{\"op\":\"query\",\"q\":\"dist\",\"src\":{src},\"dst\":{dst}}}"),
        format!("{{\"op\":\"query\",\"q\":\"path\",\"src\":{src},\"dst\":{dst}}}"),
        format!(
            "{{\"op\":\"query\",\"q\":\"path\",\"src\":{src},\"dst\":{dst},\
             \"scheme\":\"ksp:2\"}}"
        ),
        "{\"op\":\"query\",\"q\":\"bisection\",\"restarts\":1}".to_string(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For every generator: replay a random churn sequence into an
    /// incremental session and an oracle session, interleaving queries.
    /// Topology-shape deltas, rendered query bytes and the whole distance
    /// matrix must match after every event; errors must match too.
    #[test]
    fn incremental_session_equals_oracle_after_every_event(
        ops in proptest::collection::vec((0usize..6, 0usize..64, 0usize..4), 1..6),
        p in 0usize..64,
        q in 0usize..64,
    ) {
        for (spec, topo) in bases() {
            let mut inc = Session::new(topo.clone(), SEED);
            let mut ora = Session::oracle(topo.clone(), SEED);
            // Warm both caches so churn has entries to invalidate.
            for line in query_lines(inc.topology(), p, q) {
                let a = handle_line(&mut inc, &line);
                let b = handle_line(&mut ora, &line);
                prop_assert_eq!(a.text(), b.text(), "{}: warmup {} diverged", spec, line);
            }
            for (step, &op) in ops.iter().enumerate() {
                let event = decode(op, inc.topology());
                match (inc.apply(&event), ora.apply(&event)) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a.event, b.event, "{}: step {}", spec, step);
                        prop_assert_eq!(
                            (a.removed_links, a.added_links, a.switches, a.links, a.servers,
                             a.generation),
                            (b.removed_links, b.added_links, b.switches, b.links, b.servers,
                             b.generation),
                            "{}: step {} ({:?}) changed different topology state",
                            spec, step, event
                        );
                    }
                    (Err(a), Err(b)) => {
                        prop_assert_eq!(a, b, "{}: step {} error mismatch", spec, step);
                        continue;
                    }
                    (a, b) => {
                        prop_assert!(
                            false,
                            "{spec}: step {step} ({event:?}): incremental {a:?} vs oracle {b:?}"
                        );
                    }
                }
                for line in query_lines(inc.topology(), p + step, q + 3 * step) {
                    let a = handle_line(&mut inc, &line);
                    let b = handle_line(&mut ora, &line);
                    prop_assert_eq!(
                        a.text(), b.text(),
                        "{}: step {} ({:?}): query {} diverged", spec, step, event, line
                    );
                }
                prop_assert_eq!(
                    inc.distances(), ora.distances(),
                    "{}: step {} ({:?}): distance matrices diverged", spec, step, event
                );
            }
        }
    }
}
