//! Fairness and summary statistics used across the evaluation.

/// Jain's fairness index of a set of allocations:
/// `(Σ x)² / (n · Σ x²)`, in `(0, 1]`, 1 meaning perfectly equal shares.
/// Returns 1.0 for an empty input (vacuously fair).
pub fn jain_fairness_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Mean / min / max / percentile summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Standard deviation (population).
    pub stddev: f64,
    /// Sorted copy of the sample, for percentile queries.
    sorted: Vec<f64>,
}

impl SummaryStats {
    /// Computes summary statistics; returns `None` for an empty sample.
    pub fn from(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Some(SummaryStats {
            mean,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            stddev: var.sqrt(),
            sorted,
        })
    }

    /// The `q`-th percentile (0 ≤ q ≤ 100), by the nearest-rank method:
    /// the smallest value such that at least `q` percent of the sample is
    /// less than or equal to it.
    pub fn percentile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfectly_fair() {
        assert!((jain_fairness_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness_index(&[0.3, 0.3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog() {
        // One of n users takes everything: index = 1/n.
        let idx = jain_fairness_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_paper_magnitudes() {
        // The paper reports ~0.99 for both topologies: mild variation around
        // a common value keeps the index very close to 1.
        let values: Vec<f64> = (0..300).map(|i| 0.9 + 0.05 * ((i % 7) as f64 / 7.0)).collect();
        assert!(jain_fairness_index(&values) > 0.99);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_fairness_index(&[]), 1.0);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn summary_statistics() {
        let s = SummaryStats::from(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.percentile(0.0), 2.0);
        assert_eq!(s.percentile(100.0), 9.0);
        assert_eq!(s.percentile(50.0), 4.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(SummaryStats::from(&[]).is_none());
    }
}
