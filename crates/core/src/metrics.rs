//! Fairness and summary statistics used across the evaluation.

/// Jain's fairness index of a set of allocations:
/// `(Σ x)² / (n · Σ x²)`, in `(0, 1]`, 1 meaning perfectly equal shares.
/// Returns 1.0 for an empty input (vacuously fair).
pub fn jain_fairness_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Mean / min / max / percentile summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Standard deviation (population).
    pub stddev: f64,
    /// Sorted copy of the sample, for percentile queries.
    sorted: Vec<f64>,
}

impl SummaryStats {
    /// Computes summary statistics; returns `None` for an empty sample.
    pub fn from(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Some(SummaryStats {
            mean,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            stddev: var.sqrt(),
            sorted,
        })
    }

    /// The `q`-th percentile (0 ≤ q ≤ 100), by the nearest-rank method:
    /// the smallest value such that at least `q` percent of the sample is
    /// less than or equal to it.
    pub fn percentile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }
}

/// A fixed-width latency histogram: the series type behind the
/// `latency_histogram` experiment. Bin `i` counts samples in
/// `[i·bin_width, (i+1)·bin_width)`; samples past the last bin clamp into
/// it (an explicit overflow bin keeps the x-axis bounded for plotting).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    /// Width of each bin, in the samples' time unit.
    pub bin_width: f64,
    /// Per-bin sample counts; the last bin also holds the overflow.
    pub counts: Vec<u64>,
    /// Total number of samples (the sum of `counts`).
    pub total: u64,
}

impl LatencyHistogram {
    /// Bins `samples` into `num_bins` bins of `bin_width`. Negative samples
    /// land in bin 0; the requested shape is honoured even when empty.
    pub fn from_samples(samples: &[f64], bin_width: f64, num_bins: usize) -> Self {
        assert!(bin_width > 0.0, "bin_width must be positive");
        assert!(num_bins > 0, "need at least one bin");
        let mut counts = vec![0u64; num_bins];
        for &s in samples {
            let bin = ((s / bin_width).floor().max(0.0) as usize).min(num_bins - 1);
            counts[bin] += 1;
        }
        LatencyHistogram { bin_width, counts, total: samples.len() as u64 }
    }

    /// Upper edge of bin `i` (the conventional x coordinate when plotting).
    pub fn bin_upper(&self, i: usize) -> f64 {
        (i + 1) as f64 * self.bin_width
    }

    /// Fraction of all samples in bin `i` (0 when the histogram is empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfectly_fair() {
        assert!((jain_fairness_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_fairness_index(&[0.3, 0.3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog() {
        // One of n users takes everything: index = 1/n.
        let idx = jain_fairness_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_paper_magnitudes() {
        // The paper reports ~0.99 for both topologies: mild variation around
        // a common value keeps the index very close to 1.
        let values: Vec<f64> = (0..300).map(|i| 0.9 + 0.05 * ((i % 7) as f64 / 7.0)).collect();
        assert!(jain_fairness_index(&values) > 0.99);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_fairness_index(&[]), 1.0);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn summary_statistics() {
        let s = SummaryStats::from(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.percentile(0.0), 2.0);
        assert_eq!(s.percentile(100.0), 9.0);
        assert_eq!(s.percentile(50.0), 4.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(SummaryStats::from(&[]).is_none());
    }

    #[test]
    fn latency_histogram_bins_and_overflow() {
        let h = LatencyHistogram::from_samples(&[0.0, 0.005, 0.01, 0.025, 99.0], 0.01, 3);
        assert_eq!(h.counts, vec![2, 1, 2], "overflow clamps into the last bin");
        assert_eq!(h.total, 5);
        assert!((h.bin_upper(0) - 0.01).abs() < 1e-12);
        assert!((h.fraction(2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn latency_histogram_empty_keeps_shape() {
        let h = LatencyHistogram::from_samples(&[], 0.5, 4);
        assert_eq!(h.counts, vec![0, 0, 0, 0]);
        assert_eq!(h.fraction(0), 0.0);
        // Negative samples (cannot happen for RTTs, but be total) hit bin 0.
        let n = LatencyHistogram::from_samples(&[-1.0], 0.5, 4);
        assert_eq!(n.counts[0], 1);
    }
}
