//! # Jellyfish: Networking Data Centers Randomly — reproduction library
//!
//! This crate is the top-level API of a full reproduction of
//! *Jellyfish: Networking Data Centers Randomly* (Singla, Hong, Popa,
//! Godfrey — NSDI 2012). It re-exports the substrate crates and adds the
//! experiment harness the paper's evaluation is built from:
//!
//! * [`capacity`] — the "how many servers can this network support at full
//!   throughput?" binary search (paper §4, evaluation methodology).
//! * [`metrics`] — Jain's fairness index and summary statistics.
//! * [`cabling`] — physical layout and cable-length models, switch-cluster
//!   placement, and the two-layer (container-localized) Jellyfish of §6.3.
//! * [`legup`] — the incremental-expansion cost comparison against a
//!   LEGUP-style Clos upgrade planner (Figure 7).
//! * [`experiment`] — the first-class experiment API: every figure/table of
//!   the paper as a named, shardable [`experiment::Experiment`] producing one
//!   uniform [`experiment::Dataset`] (TSV/JSON), with a static registry and
//!   `K/N` sharding whose merged output is byte-identical to a
//!   single-process run.
//! * [`figures`] — the shared experiment vocabulary ([`figures::Scale`],
//!   [`figures::Series`], [`figures::ParseScaleError`]); the
//!   `jellyfish-bench` crate turns the registry into CLI output
//!   (`figures list|run|merge|serve`) and Criterion benchmarks.
//! * [`service`] — the live-topology session: a resident
//!   [`Topology`](jellyfish_topology::Topology) + CSR snapshot that absorbs
//!   typed [`service::ChurnEvent`] deltas with incremental routing repair
//!   and answers [`service::Query`] requests, byte-identical to rebuilding
//!   from scratch (see SERVE.md).
//!
//! ## Quick start
//!
//! ```
//! use jellyfish::prelude::*;
//!
//! // Build RRG(20, 8, 5): 20 ToR switches, 8 ports each, 5 towards the network.
//! let topo = JellyfishBuilder::new(20, 8, 5).seed(42).build().unwrap();
//! let servers = ServerMap::new(&topo);
//! let tm = TrafficMatrix::random_permutation(&servers, 7);
//! let result = normalized_throughput(&topo, &servers, &tm, ThroughputOptions::default());
//! assert!(result.normalized > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cabling;
pub mod capacity;
pub mod experiment;
pub mod figures;
mod json;
pub mod legup;
pub mod metrics;
pub mod service;

pub use jellyfish_flow as flow;
pub use jellyfish_routing as routing;
pub use jellyfish_sim as sim;
pub use jellyfish_topology as topology;
pub use jellyfish_traffic as traffic;

/// Convenience re-exports of the types most experiments need.
pub mod prelude {
    pub use crate::capacity::{servers_at_full_throughput, CapacitySearchOptions};
    pub use crate::metrics::{jain_fairness_index, SummaryStats};
    pub use jellyfish_flow::throughput::{normalized_throughput, ThroughputOptions};
    pub use jellyfish_flow::{Commodity, McfOptions};
    pub use jellyfish_routing::yen::k_shortest_paths;
    pub use jellyfish_sim::{PathPolicy, SimConfig, Simulator, TransportPolicy};
    pub use jellyfish_topology::fattree::FatTree;
    pub use jellyfish_topology::{JellyfishBuilder, Topology};
    pub use jellyfish_traffic::{FlowStream, ServerMap, TrafficMatrix, TrafficSpec};
}
