//! Physical layout and cabling models (paper §6).
//!
//! Three questions from the paper are modeled here:
//!
//! 1. **Cable counts** — Jellyfish needs fewer switches (hence fewer cables)
//!    than a fat-tree for the same server pool.
//! 2. **Cable lengths** — with the paper's "switch-cluster" optimization
//!    (placing all switches in a central cluster of racks), how long do
//!    cables get, and do they stay under the ≈10 m electrical-cable limit?
//! 3. **Massive scale / containers** — the two-layer Jellyfish of §6.3:
//!    switches are split across containers (pods), a fraction of each
//!    switch's network links is constrained to stay inside its container,
//!    and the rest is wired randomly across containers. Figure 14 sweeps that
//!    fraction.

use jellyfish_topology::graph::Graph;
use jellyfish_topology::topology::{SwitchKind, Topology, TopologyError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simple data-center floor model: racks on a square grid, `rack_pitch`
/// meters apart, with the option of placing all switches in a central
/// cluster (the paper's recommended layout).
#[derive(Debug, Clone, Copy)]
pub struct FloorPlan {
    /// Distance between adjacent rack positions, in meters.
    pub rack_pitch: f64,
    /// Maximum length of an electrical (cheap) cable, in meters.
    pub electrical_limit: f64,
    /// Whether switches are placed in a central switch-cluster (true) or
    /// each switch stays with its server rack (false).
    pub central_switch_cluster: bool,
}

impl Default for FloorPlan {
    fn default() -> Self {
        FloorPlan { rack_pitch: 0.6, electrical_limit: 10.0, central_switch_cluster: true }
    }
}

/// Cable statistics for a topology under a floor plan.
#[derive(Debug, Clone, Copy)]
pub struct CableReport {
    /// Total number of switch-to-switch cables.
    pub switch_cables: usize,
    /// Total number of server-to-switch cables.
    pub server_cables: usize,
    /// Mean switch-to-switch cable length in meters.
    pub mean_length: f64,
    /// Maximum switch-to-switch cable length in meters.
    pub max_length: f64,
    /// Fraction of switch-to-switch cables that exceed the electrical limit
    /// (and therefore need optical transceivers).
    pub optical_fraction: f64,
}

/// Computes cable statistics. Racks (switches) are laid out on a
/// near-square grid in node order; with a central switch cluster all
/// switches sit within a compact square at the center of the floor, so
/// switch-to-switch cables only span the cluster.
pub fn cable_report(topo: &Topology, plan: FloorPlan) -> CableReport {
    let n = topo.num_switches();
    let side = (n as f64).sqrt().ceil() as usize;
    let position = |idx: usize| -> (f64, f64) {
        let (x, y) = (idx % side, idx / side);
        (x as f64 * plan.rack_pitch, y as f64 * plan.rack_pitch)
    };
    let mut lengths = Vec::with_capacity(topo.num_links());
    for e in topo.graph().edges() {
        let length = if plan.central_switch_cluster {
            // Both endpoints live in the central cluster: the span is within
            // a square big enough to hold all switches at ~40 switches/rack
            // (the paper: "3-5 racks can hold the switches of a few-thousand
            // server cluster").
            let cluster_racks = (n as f64 / 40.0).ceil().max(1.0);
            let cluster_side = cluster_racks.sqrt().ceil() * plan.rack_pitch;
            // Average intra-cluster run plus slack for vertical routing.
            cluster_side + 2.0
        } else {
            let (xa, ya) = position(e.a);
            let (xb, yb) = position(e.b);
            ((xa - xb).abs() + (ya - yb).abs()) + 2.0 // Manhattan + slack
        };
        lengths.push(length);
    }
    let switch_cables = lengths.len();
    let mean =
        if lengths.is_empty() { 0.0 } else { lengths.iter().sum::<f64>() / lengths.len() as f64 };
    let max = lengths.iter().copied().fold(0.0, f64::max);
    let optical = if lengths.is_empty() {
        0.0
    } else {
        lengths.iter().filter(|&&l| l > plan.electrical_limit).count() as f64 / lengths.len() as f64
    };
    CableReport {
        switch_cables,
        server_cables: topo.total_servers(),
        mean_length: mean,
        max_length: max,
        optical_fraction: optical,
    }
}

/// A two-layer ("container-localized") Jellyfish (§6.3, Figure 14): switches
/// are split evenly across `containers`; each switch dedicates
/// `local_fraction` of its network ports to random links *within* its
/// container, and the rest to random links across containers.
pub fn two_layer_jellyfish(
    switches: usize,
    ports: usize,
    network_degree: usize,
    containers: usize,
    local_fraction: f64,
    seed: u64,
) -> Result<Topology, TopologyError> {
    if containers == 0 || switches < containers {
        return Err(TopologyError::InvalidParameters(
            "need at least one container and one switch per container".into(),
        ));
    }
    if network_degree > ports {
        return Err(TopologyError::InvalidParameters("network degree exceeds port count".into()));
    }
    let local_fraction = local_fraction.clamp(0.0, 1.0);
    let per_container = switches / containers;
    let used = per_container * containers; // drop the remainder for even pods
    let local_degree = ((network_degree as f64) * local_fraction).round() as usize;
    let global_degree = network_degree - local_degree;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new(used);
    let container_of = |v: usize| v / per_container;

    // Local links: random matching inside each container.
    for c in 0..containers {
        let members: Vec<usize> = (c * per_container..(c + 1) * per_container).collect();
        random_regular_within(&mut graph, &members, local_degree, &mut rng, |_, _| true);
    }
    // Global links: random matching constrained to cross containers.
    let all: Vec<usize> = (0..used).collect();
    random_regular_within(&mut graph, &all, global_degree, &mut rng, |a, b| {
        container_of(a) != container_of(b)
    });

    if !graph.is_connected() && used > 1 {
        // With very high localization the containers can end up disconnected;
        // stitch the containers with a ring of spare links so that the
        // topology stays usable (this mirrors the paper's requirement that
        // some links always cross containers).
        for c in 0..containers {
            let a = c * per_container;
            let b = ((c + 1) % containers) * per_container;
            if a != b {
                graph.add_edge(a, b);
            }
        }
    }

    let ports_vec = vec![ports.max(graph.max_degree() + (ports - network_degree)); used];
    let servers = vec![ports - network_degree; used];
    let topo = Topology::from_parts(
        graph,
        ports_vec,
        servers,
        vec![SwitchKind::TopOfRack; used],
        format!("two-layer-jellyfish(containers={containers},local={local_fraction:.2})"),
    );
    Ok(topo)
}

/// Adds random links among `members`, raising each member's degree by up to
/// `extra_degree`, subject to `allowed(a, b)`.
fn random_regular_within(
    graph: &mut Graph,
    members: &[usize],
    extra_degree: usize,
    rng: &mut StdRng,
    allowed: impl Fn(usize, usize) -> bool,
) {
    if extra_degree == 0 || members.len() < 2 {
        return;
    }
    let target: std::collections::HashMap<usize, usize> =
        members.iter().map(|&v| (v, graph.degree(v) + extra_degree)).collect();
    let mut free: Vec<usize> = members.to_vec();
    let mut stall = 0usize;
    while free.len() >= 2 {
        let i = rng.gen_range(0..free.len());
        let mut j = rng.gen_range(0..free.len() - 1);
        if j >= i {
            j += 1;
        }
        let (u, v) = (free[i], free[j]);
        if u != v && allowed(u, v) && !graph.has_edge(u, v) {
            graph.add_edge(u, v);
            stall = 0;
            free.retain(|&x| graph.degree(x) < target[&x]);
        } else {
            stall += 1;
            if stall > 8 * free.len() * free.len() + 64 {
                break;
            }
        }
    }
}

/// Fraction of switch-to-switch links whose endpoints share a container,
/// given `per_container` switches per container (node order = container
/// order, as produced by [`two_layer_jellyfish`]).
pub fn measured_local_fraction(topo: &Topology, per_container: usize) -> f64 {
    let total = topo.num_links();
    if total == 0 || per_container == 0 {
        return 0.0;
    }
    let local = topo.graph().edges().filter(|e| e.a / per_container == e.b / per_container).count();
    local as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::fattree::FatTree;
    use jellyfish_topology::JellyfishBuilder;

    #[test]
    fn jellyfish_uses_fewer_cables_than_fat_tree_for_same_servers() {
        // §6.2: for the same server pool Jellyfish needs 15-20% fewer
        // network cables because it needs fewer switches.
        let ft = FatTree::new(8).unwrap(); // 128 servers, 80 switches
        let jf = crate::capacity::jellyfish_with_servers(64, 8, 128, 1).unwrap();
        let ft_report = cable_report(ft.topology(), FloorPlan::default());
        let jf_report = cable_report(&jf, FloorPlan::default());
        assert!(jf_report.switch_cables < ft_report.switch_cables);
        assert_eq!(ft_report.server_cables, jf_report.server_cables);
    }

    #[test]
    fn central_cluster_keeps_cables_electrical_at_small_scale() {
        let topo = JellyfishBuilder::new(60, 24, 12).seed(2).build().unwrap();
        let report = cable_report(&topo, FloorPlan::default());
        assert_eq!(report.optical_fraction, 0.0, "small clusters should need no optics");
        assert!(report.max_length <= 10.0);
        assert!(report.mean_length > 0.0);
    }

    #[test]
    fn distributed_layout_needs_longer_cables_than_cluster() {
        let topo = JellyfishBuilder::new(400, 24, 12).seed(3).build().unwrap();
        let cluster = cable_report(&topo, FloorPlan::default());
        let spread =
            cable_report(&topo, FloorPlan { central_switch_cluster: false, ..Default::default() });
        assert!(spread.mean_length > cluster.mean_length);
        assert!(spread.max_length > cluster.max_length);
        assert!(spread.optical_fraction >= cluster.optical_fraction);
    }

    #[test]
    fn two_layer_respects_localization() {
        let per_container = 20;
        for &frac in &[0.0, 0.3, 0.6] {
            let topo = two_layer_jellyfish(80, 10, 6, 4, frac, 7).unwrap();
            assert_eq!(topo.num_switches(), 80);
            let measured = measured_local_fraction(&topo, per_container);
            assert!((measured - frac).abs() < 0.15, "requested {frac}, measured {measured}");
            assert!(topo.graph().is_connected());
            assert!(topo.check_invariants().is_ok());
        }
    }

    #[test]
    fn two_layer_full_localization_still_connected() {
        // 100% local links would disconnect the containers; the builder must
        // stitch them back together.
        let topo = two_layer_jellyfish(60, 10, 6, 3, 1.0, 9).unwrap();
        assert!(topo.graph().is_connected());
        let measured = measured_local_fraction(&topo, 20);
        assert!(measured > 0.8, "most links should still be local, got {measured}");
    }

    #[test]
    fn two_layer_parameter_validation() {
        assert!(two_layer_jellyfish(10, 8, 4, 0, 0.5, 1).is_err());
        assert!(two_layer_jellyfish(3, 8, 4, 5, 0.5, 1).is_err());
        assert!(two_layer_jellyfish(10, 4, 8, 2, 0.5, 1).is_err());
    }

    #[test]
    fn fat_tree_local_fraction_reference() {
        // The fat-tree's pod-local fraction is 0.5(1 + 1/k): the value the
        // Figure 14 discussion compares against (53.6% at k=14).
        assert!((FatTree::local_link_fraction(14) - 0.5357).abs() < 1e-3);
    }
}
