//! "Servers at full throughput" binary search — the paper's §4 methodology.
//!
//! To compare Jellyfish against a fat-tree "using the same switching
//! equipment", the paper attaches an increasing number of servers to the
//! Jellyfish switches and finds, by binary search, the largest server count
//! for which random-permutation traffic is satisfied at full rate:
//! each probe samples three random permutation matrices and requires full
//! capacity on all of them; the final answer is verified on ten more.

use jellyfish_flow::throughput::{normalized_throughput, ThroughputOptions};
use jellyfish_topology::{SpecError, TopoSpec, Topology, TopologyError};
use jellyfish_traffic::{ServerMap, TrafficMatrix};

/// Options of the capacity search.
#[derive(Debug, Clone, Copy)]
pub struct CapacitySearchOptions {
    /// Number of random permutations sampled at each binary-search probe
    /// (the paper uses 3).
    pub probe_samples: usize,
    /// Number of additional permutations used to verify the final answer
    /// (the paper uses 10).
    pub verify_samples: usize,
    /// Throughput-solver options used for each check.
    pub throughput: ThroughputOptions,
    /// RNG seed (topology wiring per probe and traffic sampling derive from it).
    pub seed: u64,
}

impl Default for CapacitySearchOptions {
    fn default() -> Self {
        CapacitySearchOptions {
            probe_samples: 3,
            verify_samples: 10,
            throughput: ThroughputOptions::default(),
            seed: 1,
        }
    }
}

/// Result of a capacity search.
#[derive(Debug, Clone, Copy)]
pub struct CapacityResult {
    /// Largest server count supported at full throughput.
    pub servers: usize,
    /// Whether the verification pass (additional samples) also succeeded.
    pub verified: bool,
}

/// Builds a Jellyfish topology on `switches` switches with `ports` ports each
/// and `servers` servers spread as evenly as possible, wiring all remaining
/// ports into the random interconnect.
///
/// Thin wrapper over the [`jellyfish_topology::spec`] registry's
/// `jellyfish:servers_total=...` generator, so its output is identical to
/// what any spec-driven experiment builds.
pub fn jellyfish_with_servers(
    switches: usize,
    ports: usize,
    servers: usize,
    seed: u64,
) -> Result<Topology, TopologyError> {
    let spec = TopoSpec::new("jellyfish")
        .with_param("switches", switches)
        .with_param("ports", ports)
        .with_param("servers_total", servers);
    spec.build(seed).map_err(|e| match e {
        SpecError::Build(e) => e,
        other => TopologyError::InvalidParameters(other.to_string()),
    })
}

/// Checks whether a topology supports full throughput on `samples` random
/// permutations.
pub fn supports_full_throughput(
    topo: &Topology,
    samples: usize,
    opts: ThroughputOptions,
    seed: u64,
) -> bool {
    let servers = ServerMap::new(topo);
    for i in 0..samples.max(1) {
        let tm = TrafficMatrix::random_permutation(&servers, seed.wrapping_add(i as u64));
        let result = normalized_throughput(topo, &servers, &tm, opts);
        if !result.at_full_throughput() {
            return false;
        }
    }
    true
}

/// Binary-searches the largest number of servers a Jellyfish built from
/// `switches` switches with `ports` ports each can support at full
/// throughput under random-permutation traffic.
///
/// The search range is `[switches, switches × (ports − 1)]` (at least one
/// server per switch, at least one network port per switch).
pub fn servers_at_full_throughput(
    switches: usize,
    ports: usize,
    opts: CapacitySearchOptions,
) -> CapacityResult {
    let mut lo = switches; // one server per switch is assumed feasible
    let mut hi = switches * (ports - 1);
    let feasible = |servers: usize, salt: u64| -> bool {
        match jellyfish_with_servers(switches, ports, servers, opts.seed ^ salt) {
            Ok(topo) => supports_full_throughput(
                &topo,
                opts.probe_samples,
                opts.throughput,
                opts.seed.wrapping_mul(31).wrapping_add(salt),
            ),
            Err(_) => false,
        }
    };
    if !feasible(lo, 0) {
        return CapacityResult { servers: 0, verified: false };
    }
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if feasible(mid, mid as u64) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    // Verification pass on more samples, as the paper does.
    let verified = match jellyfish_with_servers(switches, ports, lo, opts.seed ^ 0xFACE) {
        Ok(topo) => supports_full_throughput(
            &topo,
            opts.verify_samples,
            opts.throughput,
            opts.seed.wrapping_add(0x5EED),
        ),
        Err(_) => false,
    };
    CapacityResult { servers: lo, verified }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::fattree::FatTree;

    fn fast_opts() -> CapacitySearchOptions {
        CapacitySearchOptions {
            probe_samples: 1,
            verify_samples: 2,
            throughput: ThroughputOptions { epsilon: 0.08, ..Default::default() },
            seed: 3,
        }
    }

    #[test]
    fn jellyfish_with_servers_spreads_evenly() {
        let topo = jellyfish_with_servers(10, 8, 23, 1).unwrap();
        assert_eq!(topo.total_servers(), 23);
        for i in 0..10 {
            let s = topo.servers(i);
            assert!(s == 2 || s == 3, "switch {i} has {s} servers");
        }
        assert!(topo.graph().is_connected());
        assert!(jellyfish_with_servers(4, 4, 100, 1).is_err());
    }

    #[test]
    fn fat_tree_supports_its_own_servers() {
        let ft = FatTree::new(4).unwrap().into_topology();
        assert!(supports_full_throughput(&ft, 2, ThroughputOptions::default(), 7));
    }

    #[test]
    fn capacity_search_result_is_feasible_and_within_bounds() {
        // The binary search must return a server count that (a) respects the
        // port budget and (b) really does support full throughput when the
        // topology is rebuilt at that size. (The fat-tree comparison itself —
        // the paper's §4.1 headline — runs at k=6 in the cross-crate
        // integration tests, where the sizes are meaningful.)
        let switches = 20;
        let ports = 6;
        let result = servers_at_full_throughput(switches, ports, fast_opts());
        assert!(result.servers >= switches, "at least one server per switch");
        assert!(result.servers <= switches * (ports - 1));
        let topo = jellyfish_with_servers(
            switches,
            ports,
            result.servers,
            fast_opts().seed ^ result.servers as u64,
        )
        .unwrap();
        assert!(supports_full_throughput(
            &topo,
            1,
            fast_opts().throughput,
            fast_opts().seed.wrapping_mul(31).wrapping_add(result.servers as u64)
        ));
    }

    #[test]
    fn capacity_is_monotone_in_port_count() {
        let small = servers_at_full_throughput(12, 5, fast_opts());
        let large = servers_at_full_throughput(12, 8, fast_opts());
        assert!(large.servers >= small.servers);
        assert!(small.servers >= 12, "at least one server per switch");
    }

    #[test]
    fn oversubscription_bound_respected() {
        // The search can never return more servers than ports allow.
        let r = servers_at_full_throughput(6, 4, fast_opts());
        assert!(r.servers <= 6 * 3);
    }
}
