//! The shared experiment vocabulary: instance-size presets and labelled
//! series.
//!
//! Every figure of the paper is a registered [`crate::experiment::Experiment`]
//! that decomposes into shardable work items and produces one uniform
//! [`crate::experiment::Dataset`]. The per-figure entry points that used to
//! live here (one function per figure, each with its own return type) are
//! retired: callers go through the registry
//! (`jellyfish::experiment::find("fig3")`) or the `figures` CLI
//! (`figures run fig3 --scale tiny`), which adds `--shard K/N` / `merge` /
//! `serve` support on top. EXPERIMENTS.md records the registered experiments
//! and how their outputs map onto the paper's plots; what remains here is
//! the vocabulary every layer shares: [`Scale`], [`Series`] and the scale
//! parser's [`ParseScaleError`].

use std::fmt;
use std::str::FromStr;

/// Instance-size presets, ordered by size (`Tiny < Laptop < Paper`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scale {
    /// Very small sizes for tests and smoke runs.
    Tiny,
    /// Reduced sizes that preserve every qualitative conclusion (seconds).
    Laptop,
    /// The paper's sizes (minutes of compute for the LP-style figures).
    Paper,
}

impl Scale {
    /// All scales, smallest first.
    pub const ALL: [Scale; 3] = [Scale::Tiny, Scale::Laptop, Scale::Paper];

    pub(crate) fn pick(&self, paper: usize, laptop: usize, tiny: usize) -> usize {
        match self {
            Scale::Paper => paper,
            Scale::Laptop => laptop,
            Scale::Tiny => tiny,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scale::Tiny => "tiny",
            Scale::Laptop => "laptop",
            Scale::Paper => "paper",
        })
    }
}

/// Error returned when parsing a [`Scale`] from an unknown name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScaleError(String);

impl fmt::Display for ParseScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scale '{}': valid scales are tiny, laptop, paper", self.0)
    }
}

impl std::error::Error for ParseScaleError {}

impl FromStr for Scale {
    type Err = ParseScaleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tiny" => Ok(Scale::Tiny),
            "laptop" => Ok(Scale::Laptop),
            "paper" => Ok(Scale::Paper),
            other => Err(ParseScaleError(other.to_string())),
        }
    }
}

/// A generic labelled series of (x, y) points, printable as a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_displays_and_orders() {
        for scale in Scale::ALL {
            assert_eq!(scale.to_string().parse::<Scale>().unwrap(), scale);
        }
        assert!("laptop".parse::<Scale>().unwrap() == Scale::Laptop);
        let err = "huge".parse::<Scale>().unwrap_err();
        assert!(err.to_string().contains("huge") && err.to_string().contains("tiny"));
        assert!(Scale::Tiny < Scale::Laptop && Scale::Laptop < Scale::Paper);
        // Hash/Ord derives let experiments key presets off scales.
        let presets: std::collections::BTreeMap<Scale, usize> =
            Scale::ALL.iter().map(|&s| (s, s.pick(3, 2, 1))).collect();
        assert_eq!(presets[&Scale::Tiny], 1);
    }
}
