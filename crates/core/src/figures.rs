//! Legacy per-figure entry points, now thin wrappers over the
//! [`crate::experiment`] registry.
//!
//! Every figure of the paper is a registered [`crate::experiment::Experiment`]
//! that decomposes into shardable work items and produces one uniform
//! [`crate::experiment::Dataset`]. The functions here keep the historical
//! signatures (one function per figure, each with its own return type) so
//! existing callers, benches and tests keep compiling; new code should use
//! the registry (`jellyfish::experiment::find("fig3")`) or the `figures` CLI
//! (`figures run fig3 --scale tiny`), which adds `--shard K/N` / `merge`
//! support on top. EXPERIMENTS.md records the registered experiments and how
//! their outputs map onto the paper's plots.
//!
//! Each experiment takes one [`CsrGraph`](jellyfish_topology::CsrGraph)
//! snapshot per topology (shared through the run's
//! [`RunCtx`](crate::experiment::RunCtx)) and hands it to routing/flow/sim;
//! the embarrassingly parallel sweeps fan out with rayon over work items.
//! Every item derives its own seed exactly as the historical serial loops
//! did, so results are seed-for-seed identical to a serial run — and a
//! sharded run merges back to the single-process output byte-for-byte.

use crate::experiment::catalog::{self, FIG13_JAIN_PREFIX};
use crate::experiment::{Dataset, Experiment, RunCtx};
use crate::legup::ExpansionStage;
use jellyfish_sim::engine::{SimConfig, Simulator};
use jellyfish_sim::net::{LinkParams, Network};
use jellyfish_sim::routing::{PathPolicy, TransportPolicy};
use jellyfish_sim::workload::build_connections;
use jellyfish_traffic::ServerMap;
use std::fmt;
use std::str::FromStr;

/// Instance-size presets, ordered by size (`Tiny < Laptop < Paper`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scale {
    /// Very small sizes for tests and smoke runs.
    Tiny,
    /// Reduced sizes that preserve every qualitative conclusion (seconds).
    Laptop,
    /// The paper's sizes (minutes of compute for the LP-style figures).
    Paper,
}

impl Scale {
    /// All scales, smallest first.
    pub const ALL: [Scale; 3] = [Scale::Tiny, Scale::Laptop, Scale::Paper];

    pub(crate) fn pick(&self, paper: usize, laptop: usize, tiny: usize) -> usize {
        match self {
            Scale::Paper => paper,
            Scale::Laptop => laptop,
            Scale::Tiny => tiny,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scale::Tiny => "tiny",
            Scale::Laptop => "laptop",
            Scale::Paper => "paper",
        })
    }
}

/// Error returned when parsing a [`Scale`] from an unknown name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScaleError(String);

impl fmt::Display for ParseScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scale '{}': valid scales are tiny, laptop, paper", self.0)
    }
}

impl std::error::Error for ParseScaleError {}

impl FromStr for Scale {
    type Err = ParseScaleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tiny" => Ok(Scale::Tiny),
            "laptop" => Ok(Scale::Laptop),
            "paper" => Ok(Scale::Paper),
            other => Err(ParseScaleError(other.to_string())),
        }
    }
}

/// A generic labelled series of (x, y) points, printable as a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }
}

/// Reorders `series` so labels appear in `order` (unknown labels keep their
/// position after the known ones) — used where the registry's merge order
/// differs from the historical return order.
fn reorder(mut series: Vec<Series>, order: &[&str]) -> Vec<Series> {
    series.sort_by_key(|s| order.iter().position(|&o| o == s.label).unwrap_or(order.len()));
    series
}

/// Figure 1(c): CDF of server-pair path lengths for a 686-server Jellyfish
/// and the same-equipment fat-tree.
pub fn fig1c_path_length_cdf(scale: Scale, seed: u64) -> Vec<Series> {
    catalog::Fig1c.run(&RunCtx::new(scale, seed)).series
}

/// Figure 2(a): normalized bisection bandwidth (Bollobás bound) versus number
/// of servers, at equal cost, for the paper's three (N, k) points.
pub fn fig2a_bisection_vs_servers() -> Vec<Series> {
    catalog::Fig2a.run(&RunCtx::new(Scale::Laptop, 0)).series
}

/// Figure 2(b): equipment cost (total ports) versus servers supported at full
/// bisection bandwidth, for 24/32/48/64-port switches.
pub fn fig2b_equipment_cost() -> Vec<Series> {
    // Historically the combined fat-tree series came last.
    let mut series = catalog::Fig2b.run(&RunCtx::new(Scale::Laptop, 0)).series;
    if let Some(pos) = series.iter().position(|s| s.label.starts_with("Fat-tree")) {
        let ft = series.remove(pos);
        series.push(ft);
    }
    series
}

/// Figure 2(c): servers supported at full capacity (optimal routing,
/// random-permutation traffic) versus equipment cost, for small port counts.
///
/// Returns (jellyfish series, fat-tree series), x = total ports, y = servers.
pub fn fig2c_servers_at_full_capacity(scale: Scale, seed: u64) -> Vec<Series> {
    catalog::Fig2c.run(&RunCtx::new(scale, seed)).series
}

/// Figure 3: normalized throughput of Jellyfish versus the degree-diameter
/// benchmark graphs at the paper's nine configurations. Returns one series
/// per topology family, x = configuration index, y = normalized throughput.
pub fn fig3_degree_diameter(scale: Scale, seed: u64) -> Vec<Series> {
    catalog::Fig3.run(&RunCtx::new(scale, seed)).series
}

/// Figure 4: normalized throughput of Jellyfish versus the three SWDC
/// variants with the same equipment (degree 6, 2 servers per switch).
pub fn fig4_swdc_comparison(scale: Scale, seed: u64) -> Vec<(String, f64)> {
    catalog::Fig4
        .run(&RunCtx::new(scale, seed))
        .cells
        .into_iter()
        .map(|c| (c.name, c.value))
        .collect()
}

/// Figure 5: mean path length and diameter versus server count for k=48,
/// r=36 switches, comparing from-scratch and incrementally expanded
/// topologies. Returns series labelled accordingly (x = servers).
pub fn fig5_path_length_vs_size(scale: Scale, seed: u64) -> Vec<Series> {
    reorder(
        catalog::Fig5.run(&RunCtx::new(scale, seed)).series,
        &[
            "Jellyfish; Mean",
            "Expanded Jellyfish; Mean",
            "Jellyfish; Diameter",
            "Expanded Jellyfish; Diameter",
        ],
    )
}

/// Figure 6: normalized throughput of incrementally grown topologies versus
/// same-size from-scratch topologies (12-port switches, 4 servers each).
pub fn fig6_incremental_vs_scratch(scale: Scale, seed: u64) -> Vec<Series> {
    catalog::Fig6.run(&RunCtx::new(scale, seed)).series
}

/// Figure 7: the LEGUP-style expansion comparison. Returns the stages.
pub fn fig7_legup_comparison(scale: Scale, seed: u64) -> Vec<ExpansionStage> {
    catalog::Fig7
        .run(&RunCtx::new(scale, seed))
        .rows
        .into_iter()
        .map(|r| ExpansionStage {
            cumulative_budget: r.values[0],
            jellyfish_bisection: r.values[1],
            clos_bisection: r.values[2],
            servers: r.values[3] as usize,
        })
        .collect()
}

/// Figure 8: normalized throughput versus fraction of failed links, for
/// Jellyfish and a same-equipment fat-tree carrying fewer servers.
pub fn fig8_failure_resilience(scale: Scale, seed: u64) -> Vec<Series> {
    catalog::Fig8.run(&RunCtx::new(scale, seed)).series
}

/// Figure 9: ranked per-directed-link path counts under 8-way ECMP, 64-way
/// ECMP and 8-shortest-path routing on a Jellyfish topology with a random
/// permutation workload.
pub fn fig9_path_diversity(scale: Scale, seed: u64) -> Vec<Series> {
    catalog::Fig9.run(&RunCtx::new(scale, seed)).series
}

/// One cell of Table 1: mean normalized per-server throughput for a
/// topology, path policy and transport policy, from the packet-level engine.
pub fn table1_cell(
    topo: &jellyfish_topology::Topology,
    path_policy: PathPolicy,
    transport: TransportPolicy,
    seed: u64,
    duration: f64,
) -> f64 {
    let servers = ServerMap::new(topo);
    let csr = topo.csr();
    let tm = catalog::permutation_matrix(&servers, seed);
    let conns = build_connections(&csr, &servers, &tm, path_policy, transport, seed);
    let net = Network::build(&csr, &servers, LinkParams::default());
    let config = SimConfig { duration, warmup: duration * 0.25, seed, ..Default::default() };
    Simulator::new(net, conns, config).run().mean_throughput()
}

/// Table 1: the routing × congestion-control matrix on a fat-tree and a
/// same-equipment Jellyfish carrying more servers. Returns rows of
/// `(congestion control, fat-tree ECMP, jellyfish ECMP, jellyfish 8-KSP)`.
pub fn table1(scale: Scale, seed: u64) -> Vec<(String, f64, f64, f64)> {
    catalog::Table1
        .run(&RunCtx::new(scale, seed))
        .rows
        .into_iter()
        .map(|r| (r.label, r.values[0], r.values[1], r.values[2]))
        .collect()
}

/// Figure 10: packet-level (MPTCP over 8 shortest paths) versus optimal
/// (flow-solver) throughput on the same Jellyfish topologies. Returns
/// `(servers, optimal, packet-level)` rows. The fluid engine is used as the
/// packet proxy at `Scale::Paper` sizes beyond the packet engine's reach.
pub fn fig10_packet_vs_optimal(scale: Scale, seed: u64) -> Vec<(usize, f64, f64)> {
    catalog::Fig10
        .run(&RunCtx::new(scale, seed))
        .rows
        .into_iter()
        .map(|r| (r.values[0] as usize, r.values[1], r.values[2]))
        .collect()
}

/// Figures 11 and 12: servers supported at the fat-tree's packet-level
/// throughput, and the throughput stability. Returns rows of
/// `(equipment ports, fat-tree servers, fat-tree throughput, jellyfish
/// servers, jellyfish throughput)` using the fluid engine over MPTCP/KSP
/// connections.
pub fn fig11_12_packet_capacity(scale: Scale, seed: u64) -> Vec<(usize, usize, f64, usize, f64)> {
    catalog::Fig11
        .run(&RunCtx::new(scale, seed))
        .rows
        .into_iter()
        .map(|r| {
            (
                r.values[0] as usize,
                r.values[1] as usize,
                r.values[2],
                r.values[3] as usize,
                r.values[4],
            )
        })
        .collect()
}

/// Figure 13: per-flow normalized throughput distribution and Jain's fairness
/// index for the fat-tree and a same-equipment Jellyfish. Returns
/// `(label, sorted throughputs, jain index)` per topology.
pub fn fig13_fairness(scale: Scale, seed: u64) -> Vec<(String, Vec<f64>, f64)> {
    let ds: Dataset = catalog::Fig13.run(&RunCtx::new(scale, seed));
    ds.series
        .into_iter()
        .map(|s| {
            let jain = ds
                .cells
                .iter()
                .find(|c| c.name == format!("{FIG13_JAIN_PREFIX}{}", s.label))
                .expect("fig13 emits one Jain cell per topology")
                .value;
            let tputs = s.points.into_iter().map(|(_, y)| y).collect();
            (s.label, tputs, jain)
        })
        .collect()
}

/// Figure 14: throughput of the two-layer (container-localized) Jellyfish,
/// normalized to the unrestricted Jellyfish, as the fraction of in-pod links
/// sweeps upward. One series per network size.
pub fn fig14_cable_localization(scale: Scale, seed: u64) -> Vec<Series> {
    catalog::Fig14.run(&RunCtx::new(scale, seed)).series
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 7;

    #[test]
    fn scale_parses_displays_and_orders() {
        for scale in Scale::ALL {
            assert_eq!(scale.to_string().parse::<Scale>().unwrap(), scale);
        }
        assert!("laptop".parse::<Scale>().unwrap() == Scale::Laptop);
        let err = "huge".parse::<Scale>().unwrap_err();
        assert!(err.to_string().contains("huge") && err.to_string().contains("tiny"));
        assert!(Scale::Tiny < Scale::Laptop && Scale::Laptop < Scale::Paper);
        // Hash/Ord derives let experiments key presets off scales.
        let presets: std::collections::BTreeMap<Scale, usize> =
            Scale::ALL.iter().map(|&s| (s, s.pick(3, 2, 1))).collect();
        assert_eq!(presets[&Scale::Tiny], 1);
    }

    #[test]
    fn fig1c_jellyfish_dominates_fat_tree_cdf() {
        let series = fig1c_path_length_cdf(Scale::Tiny, SEED);
        assert_eq!(series.len(), 2);
        let jf = &series[0];
        let ft = &series[1];
        assert_eq!(jf.label, "Jellyfish");
        // At 5 hops Jellyfish reaches at least as large a fraction of pairs.
        let at5 = |s: &Series| s.points.iter().find(|p| p.0 == 5.0).map(|p| p.1).unwrap_or(1.0);
        assert!(at5(jf) >= at5(ft));
    }

    #[test]
    fn fig2a_jellyfish_curves_are_monotone_decreasing() {
        let series = fig2a_bisection_vs_servers();
        assert_eq!(series.len(), 6);
        for s in series.iter().filter(|s| s.label.starts_with("Jellyfish")) {
            for w in s.points.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-9, "{}: not decreasing", s.label);
            }
        }
    }

    #[test]
    fn fig2b_costs_grow_with_servers_and_jellyfish_beats_fat_tree() {
        let series = fig2b_equipment_cost();
        assert_eq!(series.len(), 5);
        // The combined fat-tree series keeps its historical last position.
        assert!(series[4].label.starts_with("Fat-tree"));
        for s in series.iter().filter(|s| s.label.starts_with("Jellyfish")) {
            assert!(!s.points.is_empty(), "{} has no feasible points", s.label);
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: cost not monotone in servers", s.label);
            }
        }
        // The 48-port Jellyfish supports the 48-port fat-tree's server count
        // (27,648) at a lower port cost (linear interpolation between the
        // 20k and 30k sweep points stays below the fat-tree's 138,240 ports).
        let jf48 = series.iter().find(|s| s.label == "Jellyfish; 48 ports").unwrap();
        let below = jf48.points.iter().rfind(|p| p.0 <= 27_648.0).unwrap();
        let cost_per_server = below.1 / below.0;
        let interpolated = cost_per_server * 27_648.0;
        assert!(
            interpolated < jellyfish_topology::fattree::FatTree::ports_for_port_count(48) as f64
        );
    }

    #[test]
    fn fig4_jellyfish_beats_swdc_variants() {
        let results = fig4_swdc_comparison(Scale::Tiny, SEED);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].0, "Jellyfish");
        let jf = results[0].1;
        for (label, tp) in &results[1..] {
            assert!(jf >= *tp - 0.05, "Jellyfish ({jf}) should not lose to {label} ({tp})");
        }
    }

    #[test]
    fn fig5_incremental_matches_scratch_path_lengths() {
        let series = fig5_path_length_vs_size(Scale::Tiny, SEED);
        assert_eq!(series.len(), 4);
        let scratch = &series[0];
        let grown = &series[1];
        assert_eq!(scratch.label, "Jellyfish; Mean");
        assert_eq!(grown.label, "Expanded Jellyfish; Mean");
        // At the shared largest size, the means are close.
        let s_last = scratch.points.last().unwrap();
        let g_last = grown.points.last().unwrap();
        assert!((s_last.1 - g_last.1).abs() < 0.25, "scratch {} vs grown {}", s_last.1, g_last.1);
    }

    #[test]
    fn fig9_ksp_spreads_paths_more_than_ecmp() {
        let series = fig9_path_diversity(Scale::Tiny, SEED);
        assert_eq!(series.len(), 3);
        let total = |s: &Series| s.points.iter().map(|p| p.1).sum::<f64>();
        let ksp = series.iter().find(|s| s.label.contains("Shortest")).unwrap();
        let ecmp8 = series.iter().find(|s| s.label.contains("8-way")).unwrap();
        assert!(total(ksp) > total(ecmp8));
    }

    #[test]
    fn fig14_localization_degrades_gracefully() {
        let series = fig14_cable_localization(Scale::Tiny, SEED);
        assert_eq!(series.len(), 1);
        let points = &series[0].points;
        // Fully random (0.0 local) should be close to the unrestricted value.
        assert!(points[0].1 > 0.8);
        // Values stay in a sane range.
        for &(_, v) in points {
            assert!(v > 0.2 && v <= 1.2, "value {v} out of range");
        }
    }
}
