//! Data generation for every figure and table in the paper's evaluation.
//!
//! Each function returns the series the original plot shows, at a
//! configurable [`Scale`]: `Scale::Paper` uses the paper's instance sizes
//! (can take minutes for the flow-solver figures), `Scale::Laptop` shrinks
//! the instances so every figure regenerates in seconds, and
//! `Scale::Tiny` is for tests and CI smoke runs. The `jellyfish-bench` crate
//! exposes these through a CLI (`figures <experiment>`) and through Criterion
//! benchmark groups; EXPERIMENTS.md records the measured outputs next to the
//! paper's reported values.
//!
//! Every figure takes one [`CsrGraph`](jellyfish_topology::CsrGraph)
//! snapshot per topology and hands it to routing/flow/sim, and the
//! embarrassingly parallel sweeps (per-size and per-configuration loops,
//! Table 1 cells) fan out with rayon. Each parallel item derives its own
//! seed exactly as the serial loop did, so results are seed-for-seed
//! identical to a serial run.

use crate::cabling::two_layer_jellyfish;
use crate::capacity::jellyfish_with_servers;
use crate::legup::{run_expansion_comparison, ExpansionScenario, ExpansionStage};
use crate::metrics::jain_fairness_index;
use jellyfish_flow::bisection::{
    fattree_normalized_bisection, jellyfish_full_bisection_cost, jellyfish_normalized_bisection,
};
use jellyfish_flow::throughput::{normalized_throughput, ThroughputOptions};
use jellyfish_routing::path_table::{PathTable, RoutingScheme};
use jellyfish_sim::engine::{SimConfig, Simulator};
use jellyfish_sim::fluid::max_min_fair_allocation;
use jellyfish_sim::net::{LinkParams, Network};
use jellyfish_sim::routing::{PathPolicy, TransportPolicy};
use jellyfish_sim::workload::build_connections;
use jellyfish_topology::degree_diameter::{figure3_pair, FIGURE3_CONFIGS};
use jellyfish_topology::expansion::grow_schedule;
use jellyfish_topology::failures::fail_random_links;
use jellyfish_topology::fattree::{same_equipment_pair, FatTree};
use jellyfish_topology::properties::{
    fraction_of_server_pairs_within, path_length_stats, server_pair_histogram,
};
use jellyfish_topology::swdc::{figure4_swdc, Lattice};
use jellyfish_topology::JellyfishBuilder;
use jellyfish_traffic::{ServerMap, TrafficMatrix};
use rayon::prelude::*;

/// Instance-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sizes (minutes of compute for the LP-style figures).
    Paper,
    /// Reduced sizes that preserve every qualitative conclusion (seconds).
    Laptop,
    /// Very small sizes for tests and smoke runs.
    Tiny,
}

impl Scale {
    fn pick(&self, paper: usize, laptop: usize, tiny: usize) -> usize {
        match self {
            Scale::Paper => paper,
            Scale::Laptop => laptop,
            Scale::Tiny => tiny,
        }
    }
}

/// A generic labelled series of (x, y) points, printable as a table.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }
}

/// Figure 1(c): CDF of server-pair path lengths for a 686-server Jellyfish
/// and the same-equipment fat-tree.
pub fn fig1c_path_length_cdf(scale: Scale, seed: u64) -> Vec<Series> {
    let k = scale.pick(14, 10, 6);
    let servers = FatTree::servers_for_port_count(k);
    let (ft, jf) = same_equipment_pair(k, servers, seed).expect("valid fat-tree parameters");
    let mut out = Vec::new();
    for (label, topo) in [("Jellyfish", &jf), ("Fat-tree", ft.topology())] {
        let hist = server_pair_histogram(topo);
        let points = (2..=hist.len().max(7))
            .map(|h| (h as f64, fraction_of_server_pairs_within(&hist, h)))
            .collect();
        out.push(Series::new(label, points));
    }
    out
}

/// Figure 2(a): normalized bisection bandwidth (Bollobás bound) versus number
/// of servers, at equal cost, for the paper's three (N, k) points.
pub fn fig2a_bisection_vs_servers() -> Vec<Series> {
    let configs = [(720usize, 24usize), (1280, 32), (2880, 48)];
    let mut out = Vec::new();
    for (n, k) in configs {
        let mut points = Vec::new();
        for servers_per_switch in 1..k {
            let r = k - servers_per_switch;
            let servers = n * servers_per_switch;
            let norm = jellyfish_normalized_bisection(n, k, r);
            if norm.is_finite() {
                points.push((servers as f64, norm));
            }
        }
        out.push(Series::new(format!("Jellyfish; N={n}; k={k}"), points));
        out.push(Series::new(
            format!("Fat-tree; N={n}; k={k}"),
            vec![(FatTree::servers_for_port_count(k) as f64, fattree_normalized_bisection(k))],
        ));
    }
    out
}

/// Figure 2(b): equipment cost (total ports) versus servers supported at full
/// bisection bandwidth, for 24/32/48/64-port switches.
pub fn fig2b_equipment_cost() -> Vec<Series> {
    let mut out = Vec::new();
    let mut fat_points = Vec::new();
    for k in [24usize, 32, 48, 64] {
        fat_points.push((
            FatTree::servers_for_port_count(k) as f64,
            FatTree::ports_for_port_count(k) as f64,
        ));
        let mut jf_points = Vec::new();
        for servers in (10_000..=80_000).step_by(10_000) {
            if let Some((ports, _)) = jellyfish_full_bisection_cost(servers, k) {
                jf_points.push((servers as f64, ports as f64));
            }
        }
        out.push(Series::new(format!("Jellyfish; {k} ports"), jf_points));
    }
    out.push(Series::new("Fat-tree; {24,32,48,64} ports", fat_points));
    out
}

/// Figure 2(c): servers supported at full capacity (optimal routing,
/// random-permutation traffic) versus equipment cost, for small port counts.
///
/// Returns (jellyfish series, fat-tree series), x = total ports, y = servers.
pub fn fig2c_servers_at_full_capacity(scale: Scale, seed: u64) -> Vec<Series> {
    let ks: Vec<usize> = match scale {
        Scale::Paper => vec![6, 8, 10, 12, 14],
        Scale::Laptop => vec![6, 8, 10],
        Scale::Tiny => vec![4, 6],
    };
    let points: Vec<((f64, f64), (f64, f64))> = ks
        .into_par_iter()
        .map(|k| {
            let switches = FatTree::switches_for_port_count(k);
            let ports = FatTree::ports_for_port_count(k);
            let ft_servers = FatTree::servers_for_port_count(k);
            // Binary search servers for the same equipment.
            let opts = crate::capacity::CapacitySearchOptions {
                probe_samples: if scale == Scale::Paper { 3 } else { 1 },
                verify_samples: if scale == Scale::Paper { 10 } else { 2 },
                throughput: ThroughputOptions::default(),
                seed,
            };
            let result = crate::capacity::servers_at_full_throughput(switches, k, opts);
            ((ports as f64, result.servers as f64), (ports as f64, ft_servers as f64))
        })
        .collect();
    let (jf, ft) = points.into_iter().unzip();
    vec![
        Series::new("Jellyfish (Optimal routing)", jf),
        Series::new("Fat-tree (Optimal routing)", ft),
    ]
}

/// Figure 3: normalized throughput of Jellyfish versus the degree-diameter
/// benchmark graphs at the paper's nine configurations. Returns one series
/// per topology family, x = configuration index, y = normalized throughput.
pub fn fig3_degree_diameter(scale: Scale, seed: u64) -> Vec<Series> {
    let configs: Vec<(usize, usize, usize)> = match scale {
        Scale::Paper => FIGURE3_CONFIGS.to_vec(),
        Scale::Laptop => FIGURE3_CONFIGS[..5].to_vec(),
        Scale::Tiny => vec![(20, 6, 4), (24, 8, 5)],
    };
    let rows: Vec<((f64, f64), (f64, f64))> = configs
        .iter()
        .copied()
        .enumerate()
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(i, (n, ports, degree))| {
            // Attach servers so the degree-diameter graph is *not* at full
            // bisection (the paper chooses server counts that keep the
            // benchmark below saturation so its full capacity is visible).
            let servers_per_switch = (ports - degree).min(degree / 2).max(1);
            let (bench, jelly) = figure3_pair(n, ports, degree, servers_per_switch, seed)
                .expect("figure 3 configuration is valid");
            let opts =
                ThroughputOptions { stop_at_full: false, epsilon: 0.06, ..Default::default() };
            let mut row = [(0.0, 0.0); 2];
            for (slot, topo) in [&bench, &jelly].into_iter().enumerate() {
                let servers = ServerMap::new(topo);
                let tm = TrafficMatrix::random_permutation(&servers, seed ^ i as u64);
                let r = normalized_throughput(topo, &servers, &tm, opts);
                row[slot] = (i as f64, r.normalized);
            }
            (row[0], row[1])
        })
        .collect();
    let (dd_points, jf_points) = rows.into_iter().unzip();
    vec![
        Series::new("Best-known Degree-Diameter Graph", dd_points),
        Series::new("Jellyfish", jf_points),
    ]
}

/// Figure 4: normalized throughput of Jellyfish versus the three SWDC
/// variants with the same equipment (degree 6, 2 servers per switch).
pub fn fig4_swdc_comparison(scale: Scale, seed: u64) -> Vec<(String, f64)> {
    let nodes = scale.pick(484, 100, 36);
    let hex_nodes = scale.pick(450, 100, 36);
    let opts = ThroughputOptions { stop_at_full: false, epsilon: 0.06, ..Default::default() };
    let mut results = Vec::new();
    let jelly = JellyfishBuilder::new(nodes, 8, 6).seed(seed).build().unwrap();
    let mut jelly = jelly;
    for v in 0..jelly.num_switches() {
        jelly.set_servers(v, 2).unwrap();
    }
    let topos: Vec<(String, jellyfish_topology::Topology)> = vec![
        ("Jellyfish".to_string(), jelly),
        ("Small World Ring".to_string(), figure4_swdc(Lattice::Ring, nodes, 2, seed).unwrap()),
        (
            "Small World 2D-Torus".to_string(),
            figure4_swdc(Lattice::Torus2D, nodes, 2, seed).unwrap(),
        ),
        (
            "Small World 3D-Hex-Torus".to_string(),
            figure4_swdc(Lattice::HexTorus3D, hex_nodes, 2, seed).unwrap(),
        ),
    ];
    for (label, topo) in topos {
        let servers = ServerMap::new(&topo);
        let tm = TrafficMatrix::random_permutation(&servers, seed ^ 0xF4);
        let r = normalized_throughput(&topo, &servers, &tm, opts);
        results.push((label, r.normalized));
    }
    results
}

/// Figure 5: mean path length and diameter versus server count for k=48,
/// r=36 switches, comparing from-scratch and incrementally expanded
/// topologies. Returns series labelled accordingly (x = servers).
pub fn fig5_path_length_vs_size(scale: Scale, seed: u64) -> Vec<Series> {
    let (ports, degree) = match scale {
        Scale::Paper => (48usize, 36usize),
        Scale::Laptop => (24, 18),
        Scale::Tiny => (12, 9),
    };
    let sizes: Vec<usize> = match scale {
        Scale::Paper => vec![100, 400, 800, 1600, 2400, 3200],
        Scale::Laptop => vec![50, 100, 200, 400],
        Scale::Tiny => vec![20, 40],
    };
    let servers_per = ports - degree;
    let scratch: Vec<((f64, f64), (f64, f64))> = sizes
        .par_iter()
        .map(|&n| {
            let topo = JellyfishBuilder::new(n, ports, degree).seed(seed).build().unwrap();
            let stats = path_length_stats(topo.graph());
            let x = (n * servers_per) as f64;
            ((x, stats.mean), (x, stats.diameter as f64))
        })
        .collect();
    let (scratch_mean, scratch_diam): (Vec<_>, Vec<_>) = scratch.into_iter().unzip();
    // Incremental: grow from the smallest size to the largest in steps.
    let first = sizes[0];
    let last = *sizes.last().unwrap();
    let step = ((last - first) / (sizes.len().max(2) - 1)).max(1);
    let stages = grow_schedule(first, last, step, ports, degree, seed ^ 0xE).unwrap();
    let mut grown_mean = Vec::new();
    let mut grown_diam = Vec::new();
    for stage in &stages {
        let stats = path_length_stats(stage.graph());
        grown_mean.push((stage.total_servers() as f64, stats.mean));
        grown_diam.push((stage.total_servers() as f64, stats.diameter as f64));
    }
    vec![
        Series::new("Jellyfish; Mean", scratch_mean),
        Series::new("Expanded Jellyfish; Mean", grown_mean),
        Series::new("Jellyfish; Diameter", scratch_diam),
        Series::new("Expanded Jellyfish; Diameter", grown_diam),
    ]
}

/// Figure 6: normalized throughput of incrementally grown topologies versus
/// same-size from-scratch topologies (12-port switches, 4 servers each).
pub fn fig6_incremental_vs_scratch(scale: Scale, seed: u64) -> Vec<Series> {
    let (start, end, step) = match scale {
        Scale::Paper => (20usize, 160usize, 20usize),
        Scale::Laptop => (20, 80, 20),
        Scale::Tiny => (10, 30, 10),
    };
    let opts = ThroughputOptions { stop_at_full: false, epsilon: 0.06, ..Default::default() };
    // Growth is inherently sequential; the per-stage evaluations are not.
    let stages = grow_schedule(start, end, step, 12, 8, seed).unwrap();
    let rows: Vec<((f64, f64), (f64, f64))> = stages
        .par_iter()
        .map(|stage| {
            let servers = ServerMap::new(stage);
            let tm =
                TrafficMatrix::random_permutation(&servers, seed ^ stage.num_switches() as u64);
            let r = normalized_throughput(stage, &servers, &tm, opts);

            let fresh = JellyfishBuilder::new(stage.num_switches(), 12, 8)
                .seed(seed ^ 0xABC ^ stage.num_switches() as u64)
                .build()
                .unwrap();
            let servers_f = ServerMap::new(&fresh);
            let tm_f =
                TrafficMatrix::random_permutation(&servers_f, seed ^ stage.num_switches() as u64);
            let rf = normalized_throughput(&fresh, &servers_f, &tm_f, opts);
            (
                (stage.total_servers() as f64, r.normalized),
                (fresh.total_servers() as f64, rf.normalized),
            )
        })
        .collect();
    let (incremental, scratch) = rows.into_iter().unzip();
    vec![
        Series::new("Jellyfish (Incremental)", incremental),
        Series::new("Jellyfish (From Scratch)", scratch),
    ]
}

/// Figure 7: the LEGUP-style expansion comparison. Returns the stages.
pub fn fig7_legup_comparison(scale: Scale, seed: u64) -> Vec<ExpansionStage> {
    let scenario = match scale {
        Scale::Paper => ExpansionScenario { seed, ..Default::default() },
        Scale::Laptop => ExpansionScenario {
            initial_servers: 240,
            first_expansion_servers: 120,
            stages: 6,
            initial_budget: 120_000.0,
            stage_budget: 60_000.0,
            ports: 24,
            servers_per_switch: 16,
            seed,
            ..Default::default()
        },
        Scale::Tiny => ExpansionScenario {
            initial_servers: 96,
            first_expansion_servers: 48,
            stages: 3,
            initial_budget: 40_000.0,
            stage_budget: 20_000.0,
            ports: 12,
            servers_per_switch: 8,
            seed,
            ..Default::default()
        },
    };
    run_expansion_comparison(scenario).expect("expansion scenario is feasible")
}

/// Figure 8: normalized throughput versus fraction of failed links, for
/// Jellyfish and a same-equipment fat-tree carrying fewer servers.
pub fn fig8_failure_resilience(scale: Scale, seed: u64) -> Vec<Series> {
    let k = scale.pick(12, 8, 6);
    let opts = ThroughputOptions { stop_at_full: false, epsilon: 0.06, ..Default::default() };
    // Fat-tree with its native server count; Jellyfish with ~25% more
    // servers on the same switches (the paper: 544 vs 432).
    let ft = FatTree::new(k).unwrap();
    let jf_servers = FatTree::servers_for_port_count(k) * 5 / 4;
    let jf =
        jellyfish_with_servers(FatTree::switches_for_port_count(k), k, jf_servers, seed).unwrap();
    let fractions = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];
    let mut out = Vec::new();
    for (label, topo) in [
        (format!("Jellyfish ({} Servers)", jf.total_servers()), jf),
        (format!("Fat-tree ({} Servers)", ft.topology().total_servers()), ft.into_topology()),
    ] {
        let points = fractions
            .par_iter()
            .map(|&f| {
                let mut failed = topo.clone();
                fail_random_links(&mut failed, f, seed ^ ((f * 100.0) as u64));
                let servers = ServerMap::new(&failed);
                let tm = TrafficMatrix::random_permutation(&servers, seed ^ 0x8);
                let r = normalized_throughput(&failed, &servers, &tm, opts);
                (f, r.normalized)
            })
            .collect();
        out.push(Series::new(label, points));
    }
    out
}

/// Figure 9: ranked per-directed-link path counts under 8-way ECMP, 64-way
/// ECMP and 8-shortest-path routing on a Jellyfish topology with a random
/// permutation workload.
pub fn fig9_path_diversity(scale: Scale, seed: u64) -> Vec<Series> {
    let switches = scale.pick(245, 80, 25);
    let ports = scale.pick(14, 10, 8);
    let degree = scale.pick(11, 7, 5);
    let topo = JellyfishBuilder::new(switches, ports, degree).seed(seed).build().unwrap();
    let servers = ServerMap::new(&topo);
    let tm = TrafficMatrix::random_permutation(&servers, seed ^ 0x9);
    let pairs: Vec<(usize, usize)> =
        tm.switch_demands(&servers).into_iter().map(|(s, d, _)| (s, d)).collect();
    let csr = topo.csr();
    [RoutingScheme::ksp8(), RoutingScheme::ecmp64(), RoutingScheme::ecmp8()]
        .to_vec()
        .into_par_iter()
        .map(|scheme| {
            let table = PathTable::build(&csr, scheme, pairs.iter().copied());
            let ranked = table.ranked_link_path_counts(&csr);
            let points = ranked
                .iter()
                .enumerate()
                .map(|(rank, &count)| (rank as f64, count as f64))
                .collect();
            Series::new(scheme.label(), points)
        })
        .collect()
}

/// One cell of Table 1: mean normalized per-server throughput for a
/// topology, path policy and transport policy, from the packet-level engine.
pub fn table1_cell(
    topo: &jellyfish_topology::Topology,
    path_policy: PathPolicy,
    transport: TransportPolicy,
    seed: u64,
    duration: f64,
) -> f64 {
    let servers = ServerMap::new(topo);
    let csr = topo.csr();
    let tm = TrafficMatrix::random_permutation(&servers, seed);
    let conns = build_connections(&csr, &servers, &tm, path_policy, transport, seed);
    let net = Network::build(&csr, &servers, LinkParams::default());
    let config = SimConfig { duration, warmup: duration * 0.25, seed, ..Default::default() };
    Simulator::new(net, conns, config).run().mean_throughput()
}

/// Table 1: the routing × congestion-control matrix on a fat-tree and a
/// same-equipment Jellyfish carrying more servers. Returns rows of
/// `(congestion control, fat-tree ECMP, jellyfish ECMP, jellyfish 8-KSP)`.
pub fn table1(scale: Scale, seed: u64) -> Vec<(String, f64, f64, f64)> {
    let k = scale.pick(14, 8, 6);
    let duration = match scale {
        Scale::Paper => 20.0,
        Scale::Laptop => 8.0,
        Scale::Tiny => 4.0,
    };
    let ft = FatTree::new(k).unwrap().into_topology();
    // Jellyfish with ~13% more servers (the paper compares 780 vs 686).
    let jf_servers = FatTree::servers_for_port_count(k) * 9 / 8;
    let jf =
        jellyfish_with_servers(FatTree::switches_for_port_count(k), k, jf_servers, seed).unwrap();
    let transports = [
        TransportPolicy::Tcp { flows: 1 },
        TransportPolicy::Tcp { flows: 8 },
        TransportPolicy::Mptcp { subflows: 8 },
    ];
    // Every (topology, routing, transport) cell is an independent simulation:
    // run all nine in parallel and reassemble the rows.
    let cells: Vec<f64> = transports
        .iter()
        .flat_map(|&t| {
            [
                (&ft, PathPolicy::ecmp8(), t),
                (&jf, PathPolicy::ecmp8(), t),
                (&jf, PathPolicy::ksp8(), t),
            ]
        })
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(topo, policy, t)| table1_cell(topo, policy, t, seed, duration))
        .collect();
    transports
        .iter()
        .enumerate()
        .map(|(i, &t)| (t.label(), cells[3 * i], cells[3 * i + 1], cells[3 * i + 2]))
        .collect()
}

/// Figure 10: packet-level (MPTCP over 8 shortest paths) versus optimal
/// (flow-solver) throughput on the same Jellyfish topologies. Returns
/// `(servers, optimal, packet-level)` rows. The fluid engine is used as the
/// packet proxy at `Scale::Paper` sizes beyond the packet engine's reach.
pub fn fig10_packet_vs_optimal(scale: Scale, seed: u64) -> Vec<(usize, f64, f64)> {
    let sizes: Vec<(usize, usize, usize)> = match scale {
        // (switches, ports, degree), slightly oversubscribed as in the paper.
        Scale::Paper => vec![(25, 9, 6), (55, 9, 6), (112, 9, 6), (200, 9, 6), (320, 9, 6)],
        Scale::Laptop => vec![(20, 9, 6), (40, 9, 6), (80, 9, 6)],
        Scale::Tiny => vec![(12, 9, 6), (20, 9, 6)],
    };
    let opts = ThroughputOptions { stop_at_full: false, epsilon: 0.06, ..Default::default() };
    sizes
        .iter()
        .copied()
        .enumerate()
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(i, (n, ports, degree))| {
            let topo =
                JellyfishBuilder::new(n, ports, degree).seed(seed ^ i as u64).build().unwrap();
            let servers = ServerMap::new(&topo);
            let csr = topo.csr();
            let tm = TrafficMatrix::random_permutation(&servers, seed ^ (i as u64) << 4);
            let optimal = normalized_throughput(&topo, &servers, &tm, opts).normalized;
            let conns = build_connections(
                &csr,
                &servers,
                &tm,
                PathPolicy::ksp8(),
                TransportPolicy::Mptcp { subflows: 8 },
                seed,
            );
            let packet_proxy = if n <= 60 {
                let net = Network::build(&csr, &servers, LinkParams::default());
                let cfg = SimConfig { duration: 6.0, warmup: 1.5, seed, ..Default::default() };
                Simulator::new(net, conns, cfg).run().mean_throughput()
            } else {
                max_min_fair_allocation(&conns).mean_throughput()
            };
            (topo.total_servers(), optimal, packet_proxy)
        })
        .collect()
}

/// Figures 11 and 12: servers supported at the fat-tree's packet-level
/// throughput, and the throughput stability. Returns rows of
/// `(equipment ports, fat-tree servers, fat-tree throughput, jellyfish
/// servers, jellyfish throughput)` using the fluid engine over MPTCP/KSP
/// connections.
pub fn fig11_12_packet_capacity(scale: Scale, seed: u64) -> Vec<(usize, usize, f64, usize, f64)> {
    let ks: Vec<usize> = match scale {
        Scale::Paper => vec![8, 10, 12, 14],
        Scale::Laptop => vec![6, 8, 10],
        Scale::Tiny => vec![4, 6],
    };
    ks.into_par_iter()
        .map(|k| {
            let ft = FatTree::new(k).unwrap().into_topology();
            let ft_tp = fluid_throughput(
                &ft,
                PathPolicy::ecmp8(),
                TransportPolicy::Mptcp { subflows: 8 },
                seed,
            );
            // Find the largest Jellyfish server count whose fluid throughput is
            // at least the fat-tree's.
            let switches = FatTree::switches_for_port_count(k);
            let ft_servers = FatTree::servers_for_port_count(k);
            let mut lo = ft_servers;
            let mut hi = switches * (k - 1);
            let feasible = |servers: usize| -> bool {
                jellyfish_with_servers(switches, k, servers, seed)
                    .map(|jf| {
                        fluid_throughput(
                            &jf,
                            PathPolicy::ksp8(),
                            TransportPolicy::Mptcp { subflows: 8 },
                            seed,
                        ) >= ft_tp - 1e-9
                    })
                    .unwrap_or(false)
            };
            if !feasible(lo) {
                return (ft.total_ports(), ft_servers, ft_tp, ft_servers, ft_tp);
            }
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if feasible(mid) {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            let jf = jellyfish_with_servers(switches, k, lo, seed).unwrap();
            let jf_tp = fluid_throughput(
                &jf,
                PathPolicy::ksp8(),
                TransportPolicy::Mptcp { subflows: 8 },
                seed,
            );
            (ft.total_ports(), ft_servers, ft_tp, lo, jf_tp)
        })
        .collect()
}

fn fluid_throughput(
    topo: &jellyfish_topology::Topology,
    path_policy: PathPolicy,
    transport: TransportPolicy,
    seed: u64,
) -> f64 {
    let servers = ServerMap::new(topo);
    let tm = TrafficMatrix::random_permutation(&servers, seed ^ 0x11);
    let conns = build_connections(&topo.csr(), &servers, &tm, path_policy, transport, seed);
    max_min_fair_allocation(&conns).mean_throughput()
}

/// Figure 13: per-flow normalized throughput distribution and Jain's fairness
/// index for the fat-tree and a same-equipment Jellyfish. Returns
/// `(label, sorted throughputs, jain index)` per topology.
pub fn fig13_fairness(scale: Scale, seed: u64) -> Vec<(String, Vec<f64>, f64)> {
    let k = scale.pick(14, 8, 6);
    let ft = FatTree::new(k).unwrap().into_topology();
    let jf_servers = FatTree::servers_for_port_count(k) * 9 / 8;
    let jf =
        jellyfish_with_servers(FatTree::switches_for_port_count(k), k, jf_servers, seed).unwrap();
    let mut out = Vec::new();
    for (label, topo, policy) in [
        ("Jellyfish".to_string(), &jf, PathPolicy::ksp8()),
        ("Fat-tree".to_string(), &ft, PathPolicy::ecmp8()),
    ] {
        let servers = ServerMap::new(topo);
        let tm = TrafficMatrix::random_permutation(&servers, seed ^ 0x13);
        let conns = build_connections(
            &topo.csr(),
            &servers,
            &tm,
            policy,
            TransportPolicy::Mptcp { subflows: 8 },
            seed,
        );
        let report = max_min_fair_allocation(&conns);
        let mut tputs = report.throughputs.clone();
        tputs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let jain = jain_fairness_index(&tputs);
        out.push((label, tputs, jain));
    }
    out
}

/// Figure 14: throughput of the two-layer (container-localized) Jellyfish,
/// normalized to the unrestricted Jellyfish, as the fraction of in-pod links
/// sweeps upward. One series per network size.
pub fn fig14_cable_localization(scale: Scale, seed: u64) -> Vec<Series> {
    // (switches, ports, degree, containers, servers/switch as built).
    let sizes: Vec<(usize, usize, usize, usize)> = match scale {
        Scale::Paper => vec![(40, 10, 6, 4), (75, 11, 6, 5), (120, 12, 6, 6), (140, 13, 6, 7)],
        Scale::Laptop => vec![(40, 10, 6, 4), (80, 11, 6, 4)],
        Scale::Tiny => vec![(24, 9, 6, 3)],
    };
    let fractions = [0.0, 0.2, 0.4, 0.5, 0.6, 0.8];
    let opts = ThroughputOptions { stop_at_full: false, epsilon: 0.06, ..Default::default() };
    sizes
        .into_par_iter()
        .map(|(n, ports, degree, containers)| {
            // Unrestricted baseline.
            let base = JellyfishBuilder::new(n, ports, degree).seed(seed).build().unwrap();
            let base_servers = ServerMap::new(&base);
            let base_tm = TrafficMatrix::random_permutation(&base_servers, seed ^ 0x14);
            let base_tp = normalized_throughput(&base, &base_servers, &base_tm, opts).normalized;
            let points = fractions
                .par_iter()
                .map(|&f| {
                    let topo = two_layer_jellyfish(
                        n,
                        ports,
                        degree,
                        containers,
                        f,
                        seed ^ ((f * 10.0) as u64),
                    )
                    .expect("two-layer construction succeeds");
                    let servers = ServerMap::new(&topo);
                    let tm = TrafficMatrix::random_permutation(&servers, seed ^ 0x14);
                    let tp = normalized_throughput(&topo, &servers, &tm, opts).normalized;
                    (f, if base_tp > 0.0 { tp / base_tp } else { 0.0 })
                })
                .collect();
            Series::new(format!("{} Servers", base.total_servers()), points)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 7;

    #[test]
    fn fig1c_jellyfish_dominates_fat_tree_cdf() {
        let series = fig1c_path_length_cdf(Scale::Tiny, SEED);
        assert_eq!(series.len(), 2);
        let jf = &series[0];
        let ft = &series[1];
        assert_eq!(jf.label, "Jellyfish");
        // At 5 hops Jellyfish reaches at least as large a fraction of pairs.
        let at5 = |s: &Series| s.points.iter().find(|p| p.0 == 5.0).map(|p| p.1).unwrap_or(1.0);
        assert!(at5(jf) >= at5(ft));
    }

    #[test]
    fn fig2a_jellyfish_curves_are_monotone_decreasing() {
        let series = fig2a_bisection_vs_servers();
        assert_eq!(series.len(), 6);
        for s in series.iter().filter(|s| s.label.starts_with("Jellyfish")) {
            for w in s.points.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-9, "{}: not decreasing", s.label);
            }
        }
    }

    #[test]
    fn fig2b_costs_grow_with_servers_and_jellyfish_beats_fat_tree() {
        let series = fig2b_equipment_cost();
        assert_eq!(series.len(), 5);
        for s in series.iter().filter(|s| s.label.starts_with("Jellyfish")) {
            assert!(!s.points.is_empty(), "{} has no feasible points", s.label);
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{}: cost not monotone in servers", s.label);
            }
        }
        // The 48-port Jellyfish supports the 48-port fat-tree's server count
        // (27,648) at a lower port cost (linear interpolation between the
        // 20k and 30k sweep points stays below the fat-tree's 138,240 ports).
        let jf48 = series.iter().find(|s| s.label == "Jellyfish; 48 ports").unwrap();
        let below = jf48.points.iter().rfind(|p| p.0 <= 27_648.0).unwrap();
        let cost_per_server = below.1 / below.0;
        let interpolated = cost_per_server * 27_648.0;
        assert!(interpolated < FatTree::ports_for_port_count(48) as f64);
    }

    #[test]
    fn fig4_jellyfish_beats_swdc_variants() {
        let results = fig4_swdc_comparison(Scale::Tiny, SEED);
        assert_eq!(results.len(), 4);
        let jf = results[0].1;
        for (label, tp) in &results[1..] {
            assert!(jf >= *tp - 0.05, "Jellyfish ({jf}) should not lose to {label} ({tp})");
        }
    }

    #[test]
    fn fig5_incremental_matches_scratch_path_lengths() {
        let series = fig5_path_length_vs_size(Scale::Tiny, SEED);
        assert_eq!(series.len(), 4);
        let scratch = &series[0];
        let grown = &series[1];
        // At the shared largest size, the means are close.
        let s_last = scratch.points.last().unwrap();
        let g_last = grown.points.last().unwrap();
        assert!((s_last.1 - g_last.1).abs() < 0.25, "scratch {} vs grown {}", s_last.1, g_last.1);
    }

    #[test]
    fn fig9_ksp_spreads_paths_more_than_ecmp() {
        let series = fig9_path_diversity(Scale::Tiny, SEED);
        assert_eq!(series.len(), 3);
        let total = |s: &Series| s.points.iter().map(|p| p.1).sum::<f64>();
        let ksp = series.iter().find(|s| s.label.contains("Shortest")).unwrap();
        let ecmp8 = series.iter().find(|s| s.label.contains("8-way")).unwrap();
        assert!(total(ksp) > total(ecmp8));
    }

    #[test]
    fn fig14_localization_degrades_gracefully() {
        let series = fig14_cable_localization(Scale::Tiny, SEED);
        assert_eq!(series.len(), 1);
        let points = &series[0].points;
        // Fully random (0.0 local) should be close to the unrestricted value.
        assert!(points[0].1 > 0.8);
        // Values stay in a sane range.
        for &(_, v) in points {
            assert!(v > 0.2 && v <= 1.2, "value {v} out of range");
        }
    }
}
