//! Line-delimited JSON wire protocol for [`Session`] (the `figures serve`
//! surface). One request object per line in, one reply object per line out;
//! SERVE.md is the normative grammar.
//!
//! Replies are rendered with a fixed field order and the shortest
//! round-trip number formatting shared with the experiment codec
//! ([`crate::json`]), so a scripted session produces a byte-stable
//! transcript — the CI smoke diffs one against a committed golden.

use jellyfish_routing::path_table::RoutingScheme;

use crate::json::{escape_into, num_into, parse_document, Value};
use crate::service::{ChurnEvent, Delta, Query, Reply, Session};

/// Valid `scheme` values, listed in every scheme error.
pub const SCHEME_CHOICES: &str = "ecmp8, ecmp64, ksp8, ecmp:N, ksp:N";

/// What the server loop should do with one input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineOutcome {
    /// Write this reply line and keep reading.
    Reply(String),
    /// Write this reply line, then close the connection.
    Shutdown(String),
}

impl LineOutcome {
    /// The reply line, whichever variant carries it.
    pub fn text(&self) -> &str {
        match self {
            LineOutcome::Reply(s) | LineOutcome::Shutdown(s) => s,
        }
    }
}

/// Handles one request line against the session. Never panics on client
/// input: malformed lines produce an `{"ok":false,...}` reply and leave
/// the session untouched.
pub fn handle_line(session: &mut Session, line: &str) -> LineOutcome {
    match dispatch(session, line) {
        Ok(outcome) => outcome,
        Err(msg) => LineOutcome::Reply(error_reply(&msg)),
    }
}

fn dispatch(session: &mut Session, line: &str) -> Result<LineOutcome, String> {
    let v = parse_document(line.trim())?;
    let op = v.get("op")?.as_str()?;
    match op {
        "apply" => {
            let event = parse_event(&v)?;
            let delta = session.apply(&event).map_err(|e| e.to_string())?;
            Ok(LineOutcome::Reply(delta_reply(&delta)))
        }
        "query" => {
            let query = parse_query(&v)?;
            let reply = session.query(&query).map_err(|e| e.to_string())?;
            Ok(LineOutcome::Reply(query_reply(&reply)))
        }
        "stats" => Ok(LineOutcome::Reply(stats_reply(session))),
        "shutdown" => Ok(LineOutcome::Shutdown("{\"ok\":true,\"op\":\"shutdown\"}".to_string())),
        other => {
            Err(format!("unknown op '{other}' (valid choices: apply, query, stats, shutdown)"))
        }
    }
}

// ---------------------------------------------------------------- requests

fn parse_event(v: &Value) -> Result<ChurnEvent, String> {
    let event = v.get("event")?.as_str()?;
    match event {
        "fail_link" => {
            Ok(ChurnEvent::FailLink { a: v.get("a")?.as_usize()?, b: v.get("b")?.as_usize()? })
        }
        "fail_links" => Ok(ChurnEvent::FailLinks { fraction: v.get("fraction")?.as_f64()? }),
        "fail_switch" => Ok(ChurnEvent::FailSwitch { node: v.get("node")?.as_usize()? }),
        "fail_switches" => Ok(ChurnEvent::FailSwitches { fraction: v.get("fraction")?.as_f64()? }),
        "restore" => Ok(ChurnEvent::Restore),
        "expand" => Ok(ChurnEvent::Expand { racks: v.get("racks")?.as_usize()? }),
        other => Err(format!(
            "unknown event '{other}' (valid choices: fail_link, fail_links, fail_switch, \
             fail_switches, restore, expand)"
        )),
    }
}

/// Parses a `scheme` string (`ecmp8`, `ksp8`, `ecmp:N`, `ksp:N`, ...).
pub fn parse_scheme(s: &str) -> Result<RoutingScheme, String> {
    let parsed = match s {
        "ecmp8" => Some(RoutingScheme::ecmp8()),
        "ecmp64" => Some(RoutingScheme::ecmp64()),
        "ksp8" => Some(RoutingScheme::ksp8()),
        _ => {
            let width = |raw: &str| raw.parse::<usize>().ok().filter(|&n| n > 0);
            if let Some(raw) = s.strip_prefix("ecmp:") {
                width(raw).map(|way| RoutingScheme::Ecmp { way })
            } else if let Some(raw) = s.strip_prefix("ksp:") {
                width(raw).map(|k| RoutingScheme::KShortestPaths { k })
            } else {
                None
            }
        }
    };
    parsed.ok_or_else(|| format!("unknown scheme '{s}' (valid choices: {SCHEME_CHOICES})"))
}

fn parse_query(v: &Value) -> Result<Query, String> {
    let q = v.get("q")?.as_str()?;
    match q {
        "dist" => {
            Ok(Query::Dist { src: v.get("src")?.as_usize()?, dst: v.get("dst")?.as_usize()? })
        }
        "path" => {
            let scheme = match v.get_opt("scheme") {
                Some(raw) => parse_scheme(raw.as_str()?)?,
                None => RoutingScheme::ecmp8(),
            };
            Ok(Query::Path {
                src: v.get("src")?.as_usize()?,
                dst: v.get("dst")?.as_usize()?,
                scheme,
            })
        }
        "throughput" => {
            let tseed = match v.get_opt("tseed") {
                Some(raw) => Some(raw.as_u64()?),
                None => None,
            };
            Ok(Query::Throughput { tseed })
        }
        "bisection" => {
            let restarts = match v.get_opt("restarts") {
                Some(raw) => raw.as_usize()?,
                None => 4,
            };
            Ok(Query::Bisection { restarts })
        }
        other => Err(format!(
            "unknown query '{other}' (valid choices: dist, path, throughput, bisection)"
        )),
    }
}

// ----------------------------------------------------------------- replies

fn error_reply(msg: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    escape_into(&mut out, msg);
    out.push('}');
    out
}

fn opt_usize_into(out: &mut String, v: Option<usize>) {
    match v {
        Some(n) => out.push_str(&format!("{n}")),
        None => out.push_str("null"),
    }
}

fn delta_reply(d: &Delta) -> String {
    let mut out = String::from("{\"ok\":true,\"op\":\"apply\",\"event\":");
    escape_into(&mut out, d.event);
    out.push_str(&format!(
        ",\"removed\":{},\"added\":{},\"switches\":{},\"links\":{},\"servers\":{},\
         \"generation\":{},\"repaired_rows\":",
        d.removed_links, d.added_links, d.switches, d.links, d.servers, d.generation
    ));
    opt_usize_into(&mut out, d.repaired_rows);
    out.push_str(",\"total_rows\":");
    opt_usize_into(&mut out, d.total_rows);
    out.push_str(&format!(
        ",\"full_rebuild\":{},\"paths_dropped\":{},\"paths_kept\":{}}}",
        d.full_rebuild, d.paths_dropped, d.paths_kept
    ));
    out
}

fn query_reply(r: &Reply) -> String {
    let mut out = String::from("{\"ok\":true,\"op\":\"query\",\"q\":");
    match r {
        Reply::Dist { src, dst, hops } => {
            out.push_str(&format!("\"dist\",\"src\":{src},\"dst\":{dst},\"hops\":"));
            match hops {
                Some(h) => out.push_str(&format!("{h}")),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        Reply::Path { src, dst, scheme, paths } => {
            out.push_str(&format!("\"path\",\"src\":{src},\"dst\":{dst},\"scheme\":"));
            escape_into(&mut out, scheme);
            out.push_str(",\"paths\":[");
            for (i, path) in paths.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, node) in path.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{node}"));
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        Reply::Throughput { result } => {
            out.push_str("\"throughput\",\"lambda\":");
            num_into(&mut out, result.lambda);
            out.push_str(",\"normalized\":");
            num_into(&mut out, result.normalized);
            out.push_str(&format!(",\"commodities\":{},\"epsilon\":", result.commodities));
            num_into(&mut out, result.epsilon);
            out.push('}');
        }
        Reply::Bisection { cut } => {
            out.push_str(&format!(
                "\"bisection\",\"crossing_links\":{},\"partition_size\":{},\"normalized\":",
                cut.crossing_links,
                cut.partition.len()
            ));
            num_into(&mut out, cut.normalized);
            out.push('}');
        }
    }
    out
}

fn stats_reply(session: &Session) -> String {
    let s = session.stats();
    let t = session.topology();
    format!(
        "{{\"ok\":true,\"op\":\"stats\",\"oracle\":{},\"switches\":{},\"links\":{},\
         \"servers\":{},\"generation\":{},\"events\":{},\"queries\":{},\
         \"rows_repaired\":{},\"full_rebuilds\":{},\"paths_dropped\":{},\
         \"path_cache_hits\":{}}}",
        session.is_oracle(),
        t.num_switches(),
        t.num_links(),
        t.total_servers(),
        t.generation(),
        s.events,
        s.queries,
        s.rows_repaired,
        s.full_rebuilds,
        s.paths_dropped,
        s.path_cache_hits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jellyfish_topology::JellyfishBuilder;

    fn session() -> Session {
        let topo = JellyfishBuilder::new(12, 6, 3).seed(7).build().unwrap();
        Session::new(topo, 7)
    }

    fn line(s: &mut Session, req: &str) -> String {
        handle_line(s, req).text().to_string()
    }

    #[test]
    fn malformed_lines_do_not_kill_the_session() {
        let mut s = session();
        for bad in ["", "not json", "{}", "{\"op\":\"nope\"}", "{\"op\":\"apply\"}"] {
            let reply = line(&mut s, bad);
            assert!(reply.starts_with("{\"ok\":false,\"error\":"), "{bad} -> {reply}");
        }
        // Still serving.
        let ok = line(&mut s, "{\"op\":\"query\",\"q\":\"dist\",\"src\":0,\"dst\":1}");
        assert!(ok.starts_with("{\"ok\":true"), "{ok}");
    }

    #[test]
    fn apply_then_query_round_trip() {
        let mut s = session();
        let d = line(&mut s, "{\"op\":\"query\",\"q\":\"dist\",\"src\":0,\"dst\":5}");
        assert!(d.contains("\"hops\":"), "{d}");
        let a = line(&mut s, "{\"op\":\"apply\",\"event\":\"fail_links\",\"fraction\":0.1}");
        assert!(a.starts_with("{\"ok\":true,\"op\":\"apply\",\"event\":\"fail_links\""), "{a}");
        assert!(a.contains("\"repaired_rows\":"), "{a}");
        let p = line(&mut s, "{\"op\":\"query\",\"q\":\"path\",\"src\":0,\"dst\":5}");
        assert!(p.contains("\"scheme\":\"8-way ECMP\""), "{p}");
        let st = line(&mut s, "{\"op\":\"stats\"}");
        assert!(st.contains("\"events\":1") && st.contains("\"queries\":2"), "{st}");
    }

    #[test]
    fn shutdown_is_terminal() {
        let mut s = session();
        match handle_line(&mut s, "{\"op\":\"shutdown\"}") {
            LineOutcome::Shutdown(reply) => assert_eq!(reply, "{\"ok\":true,\"op\":\"shutdown\"}"),
            other => panic!("expected shutdown, got {other:?}"),
        }
    }

    #[test]
    fn scheme_strings_parse() {
        assert_eq!(parse_scheme("ecmp8").unwrap(), RoutingScheme::ecmp8());
        assert_eq!(parse_scheme("ecmp:4").unwrap(), RoutingScheme::Ecmp { way: 4 });
        assert_eq!(parse_scheme("ksp:3").unwrap(), RoutingScheme::KShortestPaths { k: 3 });
        assert!(parse_scheme("ospf").unwrap_err().contains(SCHEME_CHOICES));
        assert!(parse_scheme("ecmp:0").is_err());
    }

    #[test]
    fn identical_scripts_produce_identical_transcripts() {
        let script = [
            "{\"op\":\"query\",\"q\":\"dist\",\"src\":0,\"dst\":9}",
            "{\"op\":\"apply\",\"event\":\"fail_links\",\"fraction\":0.15}",
            "{\"op\":\"query\",\"q\":\"path\",\"src\":0,\"dst\":9,\"scheme\":\"ksp:4\"}",
            "{\"op\":\"apply\",\"event\":\"restore\"}",
            "{\"op\":\"query\",\"q\":\"throughput\"}",
            "{\"op\":\"query\",\"q\":\"bisection\",\"restarts\":2}",
            "{\"op\":\"stats\"}",
        ];
        let run = || {
            let mut s = session();
            script.iter().map(|req| line(&mut s, req)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oracle_and_incremental_transcripts_match() {
        let script = [
            "{\"op\":\"query\",\"q\":\"dist\",\"src\":2,\"dst\":11}",
            "{\"op\":\"query\",\"q\":\"path\",\"src\":2,\"dst\":11}",
            "{\"op\":\"apply\",\"event\":\"fail_switch\",\"node\":5}",
            "{\"op\":\"query\",\"q\":\"dist\",\"src\":2,\"dst\":11}",
            "{\"op\":\"query\",\"q\":\"path\",\"src\":2,\"dst\":11}",
            "{\"op\":\"apply\",\"event\":\"expand\",\"racks\":2}",
            "{\"op\":\"query\",\"q\":\"dist\",\"src\":2,\"dst\":13}",
            "{\"op\":\"query\",\"q\":\"path\",\"src\":2,\"dst\":13,\"scheme\":\"ksp8\"}",
            "{\"op\":\"query\",\"q\":\"throughput\"}",
            "{\"op\":\"query\",\"q\":\"bisection\"}",
        ];
        let topo = JellyfishBuilder::new(12, 6, 3).seed(7).build().unwrap();
        let mut inc = Session::new(topo.clone(), 7);
        let mut ora = Session::oracle(topo, 7);
        for req in script {
            let a = line(&mut inc, req);
            let b = line(&mut ora, req);
            // Delta replies legitimately differ in repair accounting; query
            // replies must be byte-identical.
            if req.contains("\"op\":\"query\"") {
                assert_eq!(a, b, "diverged on {req}");
            }
        }
    }
}
