//! Live-topology sessions: the resident state behind `figures serve`.
//!
//! A [`Session`] holds a resident [`Topology`] plus its CSR snapshot,
//! absorbs typed [`ChurnEvent`] deltas (link/switch failures, restore,
//! incremental expansion — the paper's §4.2 operating regime), and answers
//! [`Query`] requests. Routing state is maintained *incrementally*: the
//! all-pairs distance matrix is repaired only for affected sources
//! ([`jellyfish_routing::incremental::repair_all_pairs`]) and cached ECMP
//! path sets are invalidated per pair with the exact shortest-path-DAG
//! predicate ([`jellyfish_routing::incremental::edge_on_shortest_path`]),
//! instead of rebuilding everything per event.
//!
//! ## Determinism contract
//!
//! Every reply is byte-identical to what a fresh process would compute by
//! rebuilding all state from scratch at the current topology:
//!
//! * Churn application reuses the exact spec machinery
//!   ([`ScenarioTransform::apply`]) with the session seed, so
//!   `apply(fail_links=f)` equals building `base+fail_links=f` offline.
//! * [`ChurnEvent::Restore`] reinstates a *clone of the pristine base*
//!   rather than re-adding edges: `Graph` edge order is
//!   history-dependent (swap-remove), and seeded samplers shuffle
//!   `edges()`, so only the clone keeps later events bit-reproducible.
//! * Hop distances are canonical, so any correct row repair is
//!   byte-identical to a full rebuild; ECMP enumeration is a pure function
//!   of the pair's distance rows and the sorted CSR snapshot, making the
//!   DAG predicate an *exact* invalidation test. Yen's k-shortest-paths
//!   has no sound incremental subset (its output depends on global
//!   tie-breaking), so KSP cache entries are all dropped on every
//!   effective delta and recomputed lazily.
//!
//! Construct with [`Session::oracle`] to force full rebuilds and
//! drop-all-caches on every event — the bit-identical reference the
//! churn-equivalence proptest and `--oracle` CLI flag compare against.
//!
//! The wire protocol (line-delimited JSON over stdin/stdout or TCP) lives
//! in [`wire`]; SERVE.md documents the grammar.

use std::collections::BTreeMap;

use jellyfish_flow::bisection::{min_bisection_heuristic, BisectionCut};
use jellyfish_flow::throughput::{normalized_throughput, ThroughputOptions, ThroughputResult};
use jellyfish_routing::incremental::{
    affected_sources, edge_on_shortest_path, repair_all_pairs, EdgeDelta,
};
use jellyfish_routing::path_table::RoutingScheme;
use jellyfish_routing::shortest::all_pairs_distances;
use jellyfish_routing::Path;
use jellyfish_topology::bfs::{DistanceMatrix, UNREACHED};
use jellyfish_topology::graph::Edge;
use jellyfish_topology::spec::ScenarioTransform;
use jellyfish_topology::{CsrGraph, NodeId, Topology};
use jellyfish_traffic::{ServerMap, TrafficMatrix, TrafficSpec};

pub mod wire;

/// Seed-derivation token for the session traffic matrix; the same token
/// `failure_sweep` has always used, so ported sweeps reproduce goldens.
pub const TRAFFIC_SEED_XOR: u64 = 0xFA11;

/// A typed topology delta applied to a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEvent {
    /// Remove one named switch-to-switch link.
    FailLink {
        /// One endpoint switch.
        a: NodeId,
        /// The other endpoint switch.
        b: NodeId,
    },
    /// Fail a uniform-random fraction of links, seeded by the session seed
    /// exactly as `+fail_links=f` ([`ScenarioTransform::FailLinks`]).
    FailLinks {
        /// Fraction of surviving links to remove, in `[0, 1]`.
        fraction: f64,
    },
    /// Isolate one switch: drop all its links and its servers.
    FailSwitch {
        /// The switch to isolate.
        node: NodeId,
    },
    /// Fail a uniform-random fraction of switches
    /// ([`ScenarioTransform::FailSwitches`]).
    FailSwitches {
        /// Fraction of switches to isolate, in `[0, 1]`.
        fraction: f64,
    },
    /// Reinstate the pristine base topology (see the module docs for why
    /// this clones rather than re-adds).
    Restore,
    /// Incrementally add racks via the paper's §4.2 link splice
    /// ([`ScenarioTransform::Expand`]).
    Expand {
        /// Number of racks (switches) to add.
        racks: usize,
    },
}

impl ChurnEvent {
    /// The event's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            ChurnEvent::FailLink { .. } => "fail_link",
            ChurnEvent::FailLinks { .. } => "fail_links",
            ChurnEvent::FailSwitch { .. } => "fail_switch",
            ChurnEvent::FailSwitches { .. } => "fail_switches",
            ChurnEvent::Restore => "restore",
            ChurnEvent::Expand { .. } => "expand",
        }
    }
}

/// A read-only question about the session's current topology.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Hop distance between two switches.
    Dist {
        /// Source switch.
        src: NodeId,
        /// Destination switch.
        dst: NodeId,
    },
    /// The installed path set for a pair under a routing scheme.
    Path {
        /// Source switch.
        src: NodeId,
        /// Destination switch.
        dst: NodeId,
        /// Routing scheme (ECMP enumerates equal-cost shortest paths;
        /// KSP runs Yen's algorithm).
        scheme: RoutingScheme,
    },
    /// Normalized worst-flow throughput under the session traffic pattern.
    Throughput {
        /// Traffic-matrix seed; defaults to `session seed ^ 0xFA11`, the
        /// derivation the failure sweep has always used.
        tseed: Option<u64>,
    },
    /// Heuristic minimum bisection of the current topology.
    Bisection {
        /// Kernighan–Lin restarts (more restarts, better cut).
        restarts: usize,
    },
}

/// What applying one [`ChurnEvent`] changed, and how much routing state
/// the session repaired versus rebuilt.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Wire name of the applied event.
    pub event: &'static str,
    /// Links removed by the event.
    pub removed_links: usize,
    /// Links added by the event.
    pub added_links: usize,
    /// Switch count after the event.
    pub switches: usize,
    /// Surviving switch-to-switch links after the event.
    pub links: usize,
    /// Attached servers after the event.
    pub servers: usize,
    /// Topology generation counter after the event.
    pub generation: u64,
    /// Distance rows recomputed by BFS (`None` while the matrix is not yet
    /// materialized — it is built lazily on the first dist/path query).
    pub repaired_rows: Option<usize>,
    /// Rows of the (repaired) distance matrix, when materialized.
    pub total_rows: Option<usize>,
    /// Whether the distance update fell back to a full rebuild (always
    /// true in oracle mode).
    pub full_rebuild: bool,
    /// Cached path-table entries invalidated by this event.
    pub paths_dropped: usize,
    /// Cached path-table entries that provably survived.
    pub paths_kept: usize,
}

/// A reply to one [`Query`].
#[derive(Debug, Clone)]
pub enum Reply {
    /// Hop distance; `None` when the pair is disconnected.
    Dist {
        /// Source switch.
        src: NodeId,
        /// Destination switch.
        dst: NodeId,
        /// Hop count, `None` if unreachable.
        hops: Option<u32>,
    },
    /// The installed path set for a pair.
    Path {
        /// Source switch.
        src: NodeId,
        /// Destination switch.
        dst: NodeId,
        /// Scheme label (e.g. `8-way ECMP`).
        scheme: String,
        /// The paths, each a switch-id sequence.
        paths: Vec<Path>,
    },
    /// Normalized throughput of the current topology.
    Throughput {
        /// The solver result (λ, normalized min flow, commodity count, ε).
        result: ThroughputResult,
    },
    /// Heuristic minimum bisection.
    Bisection {
        /// The cut found.
        cut: BisectionCut,
    },
}

/// Why a [`Session`] call failed. All variants are client errors: the
/// session state is unchanged and the connection stays usable.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A switch id at or beyond the current switch count.
    UnknownNode(NodeId),
    /// `fail_link` named a pair with no current link.
    NoSuchLink(NodeId, NodeId),
    /// A fraction outside `[0, 1]` or similar parameter error.
    Param(String),
    /// The underlying spec machinery rejected the event.
    Spec(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownNode(n) => write!(f, "unknown switch {n}"),
            ServiceError::NoSuchLink(a, b) => write!(f, "no link between {a} and {b}"),
            ServiceError::Param(msg) => write!(f, "{msg}"),
            ServiceError::Spec(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Cumulative session counters, for the `stats` op and delta reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Churn events applied.
    pub events: u64,
    /// Queries answered.
    pub queries: u64,
    /// Distance rows recomputed by BFS across all events (repairs and the
    /// rows of full rebuilds both count).
    pub rows_repaired: u64,
    /// Events whose distance update was a full rebuild.
    pub full_rebuilds: u64,
    /// Path-cache entries dropped across all events.
    pub paths_dropped: u64,
    /// Path queries served from cache.
    pub path_cache_hits: u64,
}

/// Orderable cache key for a [`RoutingScheme`] (the enum itself derives
/// neither `Ord` nor `Hash`).
type SchemeKey = (u8, usize);

const ECMP_TAG: u8 = 0;
const KSP_TAG: u8 = 1;

fn scheme_key(scheme: RoutingScheme) -> SchemeKey {
    match scheme {
        RoutingScheme::Ecmp { way } => (ECMP_TAG, way),
        RoutingScheme::KShortestPaths { k } => (KSP_TAG, k),
    }
}

/// A live-topology session: resident topology + CSR snapshot + incrementally
/// maintained routing state. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct Session {
    /// Pristine topology, the `Restore` target.
    base: Topology,
    /// Current topology.
    topo: Topology,
    /// CSR snapshot of `topo`, refreshed on every apply.
    csr: CsrGraph,
    /// Session seed: churn sampling and default traffic derive from it.
    seed: u64,
    /// Force full rebuilds + drop-all caches per event (the reference mode).
    oracle: bool,
    /// Traffic pattern for throughput queries; `None` means a seeded random
    /// permutation (the experiments' default).
    traffic: Option<TrafficSpec>,
    /// Solver options for throughput queries.
    throughput: ThroughputOptions,
    /// All-pairs hop distances, materialized on first dist/path query and
    /// repaired incrementally afterwards.
    dist: Option<DistanceMatrix>,
    /// Cached per-pair path sets. BTreeMap keeps iteration deterministic.
    paths: BTreeMap<(SchemeKey, NodeId, NodeId), Vec<Path>>,
    stats: SessionStats,
}

impl Session {
    /// Opens a session on `topo` with churn/traffic seed `seed`,
    /// maintaining routing state incrementally.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let csr = topo.csr();
        Session {
            base: topo.clone(),
            topo,
            csr,
            seed,
            oracle: false,
            traffic: None,
            throughput: ThroughputOptions::default(),
            dist: None,
            paths: BTreeMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// Opens an oracle session: every event rebuilds the distance matrix
    /// from scratch and drops every cached path set. Bit-identical replies
    /// to the incremental mode — this is the reference it is tested against.
    pub fn oracle(topo: Topology, seed: u64) -> Self {
        let mut s = Session::new(topo, seed);
        s.oracle = true;
        s
    }

    /// Sets the traffic pattern used by throughput queries (`None` keeps
    /// the seeded-random-permutation default).
    pub fn with_traffic(mut self, traffic: Option<TrafficSpec>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Sets the throughput solver options (the failure sweep passes its
    /// historical sweep options through here).
    pub fn with_throughput_options(mut self, opts: ThroughputOptions) -> Self {
        self.throughput = opts;
        self
    }

    /// The current topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The current CSR snapshot.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// The session seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this session runs in oracle (full-rebuild) mode.
    pub fn is_oracle(&self) -> bool {
        self.oracle
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Applies one churn event, repairing routing state incrementally
    /// (or rebuilding it, in oracle mode). On error the session is
    /// unchanged.
    pub fn apply(&mut self, event: &ChurnEvent) -> Result<Delta, ServiceError> {
        self.validate(event)?;
        let before: Vec<_> = self.topo.graph().edges().collect();
        match *event {
            ChurnEvent::FailLink { a, b } => {
                // Validated above; disconnect cannot fail now.
                assert!(self.topo.disconnect(a, b));
            }
            ChurnEvent::FailLinks { fraction } => {
                ScenarioTransform::FailLinks(fraction)
                    .apply(&mut self.topo, self.seed)
                    .map_err(|e| ServiceError::Spec(e.to_string()))?;
            }
            ChurnEvent::FailSwitch { node } => {
                // Mirror fail_random_switches for a single named switch.
                self.topo.graph_mut().isolate_node(node);
                self.topo.set_servers(node, 0).map_err(|e| ServiceError::Spec(e.to_string()))?;
            }
            ChurnEvent::FailSwitches { fraction } => {
                ScenarioTransform::FailSwitches(fraction)
                    .apply(&mut self.topo, self.seed)
                    .map_err(|e| ServiceError::Spec(e.to_string()))?;
            }
            ChurnEvent::Restore => {
                self.topo = self.base.clone();
            }
            ChurnEvent::Expand { racks } => {
                ScenarioTransform::Expand(racks)
                    .apply(&mut self.topo, self.seed)
                    .map_err(|e| ServiceError::Spec(e.to_string()))?;
            }
        }
        let delta = EdgeDelta::between(before, self.topo.graph().edges());
        self.csr = self.topo.csr();
        let (repaired, total, full, dropped, kept) = self.refresh_routing(&delta);

        self.stats.events += 1;
        self.stats.rows_repaired += repaired.unwrap_or(0) as u64;
        if full {
            self.stats.full_rebuilds += 1;
        }
        self.stats.paths_dropped += dropped as u64;
        Ok(Delta {
            event: event.name(),
            removed_links: delta.removed.len(),
            added_links: delta.added.len(),
            switches: self.topo.num_switches(),
            links: self.topo.num_links(),
            servers: self.topo.total_servers(),
            generation: self.topo.generation(),
            repaired_rows: repaired,
            total_rows: total,
            full_rebuild: full,
            paths_dropped: dropped,
            paths_kept: kept,
        })
    }

    /// Brings the distance matrix and path cache up to date after `delta`.
    /// Returns `(repaired_rows, total_rows, full_rebuild, paths_dropped,
    /// paths_kept)`.
    ///
    /// KSP entries are dropped on every effective delta (Yen's output
    /// depends on global tie-breaking — there is no sound incremental
    /// subset). ECMP entries survive exactly when both distance rows are
    /// unchanged ([`affected_sources`] on the *pre-repair* matrix) and no
    /// delta edge lies on the pair's shortest-path DAG
    /// ([`edge_on_shortest_path`] reads only the two unchanged rows, so
    /// old-DAG and new-DAG membership coincide for surviving pairs).
    fn refresh_routing(
        &mut self,
        delta: &EdgeDelta,
    ) -> (Option<usize>, Option<usize>, bool, usize, usize) {
        let cached = self.paths.len();
        let n_new = self.csr.num_nodes();
        let Some(dist) = self.dist.as_mut() else {
            // No matrix materialized yet: nothing to repair, and no basis
            // for exact invalidation — drop the cache on any change.
            return if delta.is_empty() {
                (None, None, false, 0, cached)
            } else {
                self.paths.clear();
                (None, None, false, cached, 0)
            };
        };
        if self.oracle {
            *dist = all_pairs_distances(&self.csr);
            if delta.is_empty() {
                return (Some(n_new), Some(n_new), true, 0, cached);
            }
            self.paths.clear();
            return (Some(n_new), Some(n_new), true, cached, 0);
        }
        if n_new < dist.num_cols() {
            // Shrinking delta (restore after expansion) re-keys nodes;
            // repair_all_pairs falls back to a full rebuild and no cached
            // pair is trustworthy.
            let outcome = repair_all_pairs(dist, &self.csr, delta);
            self.paths.clear();
            return (Some(outcome.repaired_rows), Some(outcome.total_rows), true, cached, 0);
        }
        if delta.is_empty() && n_new == dist.num_cols() {
            return (Some(0), Some(n_new), false, 0, cached);
        }
        let affected = affected_sources(dist, delta);
        let outcome = repair_all_pairs(dist, &self.csr, delta);
        let dist = &*dist;
        let changed: Vec<Edge> = delta.removed.iter().chain(delta.added.iter()).copied().collect();
        self.paths.retain(|&((scheme_tag, _), src, dst), _| {
            if scheme_tag != ECMP_TAG {
                return false;
            }
            if affected.get(src).copied().unwrap_or(true)
                || affected.get(dst).copied().unwrap_or(true)
            {
                return false;
            }
            !changed.iter().any(|e| edge_on_shortest_path(dist, src, dst, e.a, e.b))
        });
        let kept = self.paths.len();
        (
            Some(outcome.repaired_rows),
            Some(outcome.total_rows),
            outcome.full_rebuild,
            cached - kept,
            kept,
        )
    }

    /// Answers one query against the current topology.
    pub fn query(&mut self, query: &Query) -> Result<Reply, ServiceError> {
        let reply = match *query {
            Query::Dist { src, dst } => {
                self.check_node(src)?;
                self.check_node(dst)?;
                let d = self.distances().get(src, dst);
                Reply::Dist { src, dst, hops: (d != UNREACHED).then_some(d) }
            }
            Query::Path { src, dst, scheme } => {
                self.check_node(src)?;
                self.check_node(dst)?;
                let paths = self.paths_for(scheme, src, dst);
                Reply::Path { src, dst, scheme: scheme.label(), paths }
            }
            Query::Throughput { tseed } => {
                let servers = ServerMap::new(&self.topo);
                let seed = tseed.unwrap_or(self.seed ^ TRAFFIC_SEED_XOR);
                let tm = match &self.traffic {
                    Some(spec) => spec
                        .matrix(&servers, seed)
                        .map_err(|e| ServiceError::Spec(e.to_string()))?,
                    None => TrafficMatrix::random_permutation(&servers, seed),
                };
                let result = normalized_throughput(&self.topo, &servers, &tm, self.throughput);
                Reply::Throughput { result }
            }
            Query::Bisection { restarts } => {
                if restarts == 0 {
                    return Err(ServiceError::Param("bisection needs restarts >= 1".into()));
                }
                let cut = min_bisection_heuristic(&self.topo, restarts, self.seed);
                Reply::Bisection { cut }
            }
        };
        self.stats.queries += 1;
        Ok(reply)
    }

    /// The all-pairs distance matrix, materialized on first use and kept
    /// repaired by [`Session::apply`] afterwards.
    pub fn distances(&mut self) -> &DistanceMatrix {
        self.dist.get_or_insert_with(|| all_pairs_distances(&self.csr))
    }

    /// The installed path set for one pair, from cache when its entry
    /// provably survived all churn since it was computed.
    pub fn paths_for(&mut self, scheme: RoutingScheme, src: NodeId, dst: NodeId) -> Vec<Path> {
        let key = (scheme_key(scheme), src, dst);
        if let Some(hit) = self.paths.get(&key) {
            self.stats.path_cache_hits += 1;
            return hit.clone();
        }
        if matches!(scheme, RoutingScheme::Ecmp { .. }) {
            // ECMP enumeration reads the pair's distance rows; materialize
            // them so later deltas can repair instead of rebuild.
            self.distances();
        }
        let paths = scheme.paths(&self.csr, src, dst);
        self.paths.insert(key, paths.clone());
        paths
    }

    fn check_node(&self, n: NodeId) -> Result<(), ServiceError> {
        if n < self.topo.num_switches() {
            Ok(())
        } else {
            Err(ServiceError::UnknownNode(n))
        }
    }

    fn validate(&self, event: &ChurnEvent) -> Result<(), ServiceError> {
        match *event {
            ChurnEvent::FailLink { a, b } => {
                self.check_node(a)?;
                self.check_node(b)?;
                if !self.topo.graph().has_edge(a, b) {
                    return Err(ServiceError::NoSuchLink(a, b));
                }
            }
            ChurnEvent::FailSwitch { node } => self.check_node(node)?,
            ChurnEvent::FailLinks { fraction } | ChurnEvent::FailSwitches { fraction } => {
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(ServiceError::Param(format!(
                        "fraction {fraction} must be in [0, 1]"
                    )));
                }
            }
            ChurnEvent::Restore => {}
            ChurnEvent::Expand { racks } => {
                if racks == 0 {
                    return Err(ServiceError::Param("expand needs racks >= 1".into()));
                }
            }
        }
        Ok(())
    }
}
