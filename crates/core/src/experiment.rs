//! First-class experiment API: every figure and table of the paper's
//! evaluation as a named, shardable unit of work.
//!
//! The paper's evaluation is ~17 figures/tables. Historically each was a
//! one-off function in [`crate::figures`] with its own return type, which
//! made it impossible to express a *sweep* generically: there was no uniform
//! unit of work to shard across processes and no uniform result to merge.
//! This module fixes that:
//!
//! * [`Experiment`] — the trait every figure implements. An experiment
//!   decomposes into independent [`WorkItem`]s (`work_items`), evaluates one
//!   item at a time against a [`RunCtx`] (`run_item`), and merges the item
//!   results back into one [`Dataset`] (`merge`).
//! * [`Dataset`] — the single tagged result type: labelled `(x, y)` series,
//!   named rows under fixed column headers, and scalar cells. It renders to
//!   TSV ([`Dataset::to_tsv`]) and JSON ([`Dataset::to_json`]).
//! * [`Shard`] — a `K/N` slice of an experiment's work items. Because every
//!   item derives its randomness from `(seed, item)` alone, running the
//!   shards in separate processes and merging the [`ShardFragment`]s is
//!   byte-identical to a single-process [`Experiment::run`].
//! * [`WorkPlan`] — how the items are partitioned across the `N` shards:
//!   pure `K/N` striping ([`WorkPlan::striped`], the `--shard` default), or
//!   timing-aware LPT bin-packing over a prior run's measured per-item
//!   wall-clock ([`WorkPlan::lpt`]). Both are exact partitions, so the merge
//!   coverage validation is unaffected by which partitioner produced the
//!   fragments.
//! * [`TimingFile`] — the measured per-item wall-clock of a prior run
//!   (`timings.json` in a `figures launch` run directory), keyed by
//!   experiment; `figures run --plan <file>` feeds it back into
//!   [`WorkPlan::plan`] so the next run is balanced by cost instead of
//!   striped blindly. Timings are measurement, never data: they vary run to
//!   run and have no influence on any item result.
//! * [`registry`] — the static table of experiments (the paper's 17 figures
//!   and tables plus the topology-generic sweeps in [`generic`]), keyed by
//!   the names the `figures` CLI exposes (`figures list`).
//!
//! Topology construction flows through [`TopoSpec`] strings resolved by the
//! generator registry in `jellyfish_topology::spec`: spec-driven experiments
//! decompose into [`WorkItem`]s that each carry the spec they evaluate, and
//! the topology-generic experiments accept a `--topo <spec>` override
//! ([`RunCtx::with_topo`]) that redirects the whole sweep at any registered
//! topology without code changes.
//!
//! The [`RunCtx`] carries the run's [`Scale`], seed and optional topology
//! override, plus a memoized topology/CSR-snapshot cache keyed by
//! `(spec, seed)`: items of one experiment that share a base topology (for
//! example the per-fraction failure sweeps of `fig8`) build the
//! [`CsrGraph`] snapshot once per process and share it, and each cache hit
//! is verified against the topology's mutation
//! [generation](Topology::generation) so a stale snapshot can never be
//! served. The cache is an optimization only — every builder is a pure
//! function of `(spec, seed)`, so a shard that rebuilds a snapshot gets
//! bit-identical data.
//!
//! EXPERIMENTS.md at the repository root indexes the registered experiments
//! (paper figure, scales, output schema).

use crate::figures::{Scale, Series};
use crate::service::Session;
use jellyfish_topology::{CsrGraph, SpecError, TopoSpec, Topology};
use jellyfish_traffic::{ServerMap, TrafficMatrix, TrafficSpec};
use rayon::prelude::*;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

pub mod catalog;
pub mod generic;
pub mod impair;
mod json;
pub mod workload;

/// One named row of a [`Dataset`] table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (first column).
    pub label: String,
    /// Numeric values, one per remaining column.
    pub values: Vec<f64>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Row { label: label.into(), values }
    }
}

/// One named scalar of a [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell name.
    pub name: String,
    /// Cell value.
    pub value: f64,
}

impl Cell {
    /// Creates a cell.
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        Cell { name: name.into(), value }
    }
}

/// The uniform result type every experiment produces.
///
/// A dataset is up to three sections, each possibly empty: scalar [`Cell`]s,
/// a table ([`Row`]s under `columns` headers, where `columns[0]` names the
/// row-label column), and labelled [`Series`]. Merging shard fragments
/// concatenates sections deterministically — see [`Dataset::concat`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// Provenance metadata: ordered `(key, value)` pairs (e.g. the topology
    /// spec string behind each series). Rendered as `# key<TAB>value`
    /// comment lines at the top of the TSV and as a `meta` array in JSON.
    pub meta: Vec<(String, String)>,
    /// Labelled (x, y) series (line-plot figures).
    pub series: Vec<Series>,
    /// Column headers for `rows`; `columns[0]` heads the label column.
    pub columns: Vec<String>,
    /// Named rows (table-style figures).
    pub rows: Vec<Row>,
    /// Named scalars (bar-chart-style figures).
    pub cells: Vec<Cell>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// A dataset that is only labelled series.
    pub fn from_series(series: Vec<Series>) -> Self {
        Dataset { series, ..Default::default() }
    }

    /// Appends `(x, y)` to the series named `label`, creating it on first use.
    pub fn push_point(&mut self, label: &str, x: f64, y: f64) {
        match self.series.iter_mut().find(|s| s.label == label) {
            Some(s) => s.points.push((x, y)),
            None => self.series.push(Series::new(label, vec![(x, y)])),
        }
    }

    /// Sets the table column headers (`columns[0]` heads the label column).
    pub fn set_columns(&mut self, columns: &[&str]) {
        self.columns = columns.iter().map(std::string::ToString::to_string).collect();
    }

    /// Appends a table row.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.rows.push(Row::new(label, values));
    }

    /// Appends a scalar cell.
    pub fn push_cell(&mut self, name: impl Into<String>, value: f64) {
        self.cells.push(Cell::new(name, value));
    }

    /// Appends a provenance metadata pair.
    pub fn push_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.push((key.into(), value.into()));
    }

    /// Deterministically concatenates dataset fragments (in the order given):
    /// series with the same label have their points appended in fragment
    /// order and keep first-seen label order; rows and cells concatenate;
    /// column headers must agree across fragments that set them; metadata
    /// keys keep first-seen order and must agree on their value when
    /// repeated.
    pub fn concat<I: IntoIterator<Item = Dataset>>(fragments: I) -> Dataset {
        let mut out = Dataset::new();
        for frag in fragments {
            for (k, v) in frag.meta {
                match out.meta.iter().find(|(ek, _)| *ek == k) {
                    Some((_, ev)) => {
                        assert_eq!(*ev, v, "dataset fragments disagree on metadata '{k}'");
                    }
                    None => out.meta.push((k, v)),
                }
            }
            for s in frag.series {
                match out.series.iter_mut().find(|e| e.label == s.label) {
                    Some(e) => e.points.extend(s.points),
                    None => out.series.push(s),
                }
            }
            if !frag.columns.is_empty() {
                if out.columns.is_empty() {
                    out.columns = frag.columns;
                } else {
                    assert_eq!(
                        out.columns, frag.columns,
                        "dataset fragments disagree on table columns"
                    );
                }
            }
            out.rows.extend(frag.rows);
            out.cells.extend(frag.cells);
        }
        out
    }

    /// Renders the dataset as tab-separated text: `# key\tvalue` metadata
    /// comment lines first, then cells (`name\tvalue`), then the table, then
    /// the series aligned on their union of x values.
    /// Non-empty sections are separated by a blank line. The rendering is a
    /// pure function of the data, so a merged sharded run prints byte-for-byte
    /// what the single-process run prints.
    pub fn to_tsv(&self) -> String {
        let mut sections: Vec<String> = Vec::new();
        if !self.meta.is_empty() {
            let mut s = String::new();
            for (k, v) in &self.meta {
                s.push_str(&format!("# {k}\t{v}\n"));
            }
            sections.push(s);
        }
        if !self.cells.is_empty() {
            let mut s = String::new();
            for c in &self.cells {
                s.push_str(&format!("{}\t{}\n", c.name, fmt_num(c.value)));
            }
            sections.push(s);
        }
        if !self.rows.is_empty() {
            let mut s = String::new();
            s.push_str(&self.columns.join("\t"));
            s.push('\n');
            for r in &self.rows {
                s.push_str(&r.label);
                for v in &r.values {
                    s.push('\t');
                    s.push_str(&fmt_num(*v));
                }
                s.push('\n');
            }
            sections.push(s);
        }
        if !self.series.is_empty() {
            sections.push(self.series_table());
        }
        sections.join("\n")
    }

    /// The x-aligned series table: one `x` column plus one column per series,
    /// `-` where a series has no point at that x.
    fn series_table(&self) -> String {
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.iter().any(|&e| e.to_bits() == x.to_bits()) {
                    xs.push(x);
                }
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let maps: Vec<HashMap<u64, f64>> = self
            .series
            .iter()
            .map(|s| s.points.iter().map(|&(x, y)| (x.to_bits(), y)).collect())
            .collect();
        let mut out = String::from("x");
        for s in &self.series {
            out.push('\t');
            out.push_str(&s.label);
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&fmt_num(x));
            for m in &maps {
                match m.get(&x.to_bits()) {
                    Some(&y) => {
                        out.push('\t');
                        out.push_str(&fmt_num(y));
                    }
                    None => out.push_str("\t-"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the dataset as a JSON object. Finite numbers use Rust's
    /// shortest round-trip formatting, so [`Dataset::from_json`] recovers
    /// them exactly.
    pub fn to_json(&self) -> String {
        json::dataset_to_json(self)
    }

    /// Parses a dataset from the JSON produced by [`Dataset::to_json`].
    pub fn from_json(text: &str) -> Result<Dataset, String> {
        json::dataset_from_json(text)
    }
}

/// Shortest round-trip rendering of a value (`3` for 3.0, `0.1` for 0.1).
fn fmt_num(v: f64) -> String {
    format!("{v}")
}

/// One independent unit of an experiment's work.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkItem {
    /// Position in the experiment's full item list (the shard key).
    pub index: usize,
    /// Human-readable description of the item.
    pub label: String,
    /// The topology this item evaluates, when the experiment's work
    /// decomposes along a topology axis (spec-driven experiments).
    pub spec: Option<TopoSpec>,
    /// The workload this item evaluates, when the experiment's work
    /// decomposes along a traffic axis (spec-driven workloads).
    pub traffic: Option<TrafficSpec>,
}

impl WorkItem {
    /// Creates a work item with no topology axis.
    pub fn new(index: usize, label: impl Into<String>) -> Self {
        WorkItem { index, label: label.into(), spec: None, traffic: None }
    }

    /// Creates a work item that evaluates one topology spec.
    pub fn with_spec(index: usize, label: impl Into<String>, spec: TopoSpec) -> Self {
        WorkItem { index, label: label.into(), spec: Some(spec), traffic: None }
    }

    /// Attaches the workload spec this item evaluates (builder style).
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// The item's topology spec; panics (with the item's label) when the
    /// experiment forgot to attach one.
    pub fn spec(&self) -> &TopoSpec {
        self.spec
            .as_ref()
            .unwrap_or_else(|| panic!("work item '{}' has no topology spec", self.label))
    }

    /// The item's workload spec; panics (with the item's label) when the
    /// experiment forgot to attach one.
    pub fn traffic(&self) -> &TrafficSpec {
        self.traffic
            .as_ref()
            .unwrap_or_else(|| panic!("work item '{}' has no traffic spec", self.label))
    }
}

/// The result of running one [`WorkItem`]: a dataset fragment tagged with
/// the item's index so merges can restore the canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemResult {
    /// The producing item's index.
    pub index: usize,
    /// The fragment of the experiment's dataset this item contributes.
    pub data: Dataset,
}

impl ItemResult {
    /// Creates an item result.
    pub fn new(index: usize, data: Dataset) -> Self {
        ItemResult { index, data }
    }
}

/// An immutable topology + CSR snapshot pair shared between work items.
///
/// The snapshot remembers the topology [generation](Topology::generation) it
/// was taken at, so holders can detect the silent-staleness hazard: code
/// that obtains `&mut` access to the topology (e.g. via
/// [`Topology::graph_mut`]) after the CSR snapshot was taken would otherwise
/// keep routing over links that no longer exist.
#[derive(Debug)]
pub struct Snapshot {
    /// The mutable-API topology (adjacency form).
    pub topology: Topology,
    /// The flat CSR snapshot routing/flow/sim consume.
    pub csr: CsrGraph,
    /// [`Topology::generation`] at the moment `csr` was taken.
    pub generation: u64,
}

impl Snapshot {
    /// Snapshots `topology`, recording its current generation.
    pub fn new(topology: Topology) -> Self {
        Snapshot { csr: topology.csr(), generation: topology.generation(), topology }
    }

    /// Whether `csr` still reflects `topology` (no mutation since the
    /// snapshot was taken).
    pub fn is_current(&self) -> bool {
        self.generation == self.topology.generation()
    }

    /// Re-takes the CSR snapshot from the current topology state.
    pub fn refresh(&mut self) {
        self.csr = self.topology.csr();
        self.generation = self.topology.generation();
    }
}

/// Per-run context handed to [`Experiment::run_item`]: the scale, seed and
/// optional topology override of the run, plus a process-local memo of
/// CSR-backed topology snapshots keyed by `(spec-or-key, seed)`.
#[derive(Debug)]
pub struct RunCtx {
    /// Instance-size preset for this run.
    pub scale: Scale,
    /// Base seed; items derive their own sub-seeds from it deterministically.
    pub seed: u64,
    topo: Option<TopoSpec>,
    traffic: Option<TrafficSpec>,
    cache: Mutex<HashMap<(String, u64), Arc<Snapshot>>>,
}

impl RunCtx {
    /// Creates a context for one `(scale, seed)` run.
    pub fn new(scale: Scale, seed: u64) -> Self {
        RunCtx { scale, seed, topo: None, traffic: None, cache: Mutex::new(HashMap::new()) }
    }

    /// Sets the `--topo` override: experiments whose
    /// [`Experiment::supports_topo_override`] is true evaluate this spec
    /// instead of their built-in topology axis.
    pub fn with_topo(mut self, spec: TopoSpec) -> Self {
        self.topo = Some(spec);
        self
    }

    /// The run's topology override, if any.
    pub fn topo(&self) -> Option<&TopoSpec> {
        self.topo.as_ref()
    }

    /// Sets the `--traffic` override: experiments whose
    /// [`Experiment::supports_traffic_override`] is true evaluate this
    /// workload instead of their built-in one.
    pub fn with_traffic(mut self, spec: TrafficSpec) -> Self {
        self.traffic = Some(spec);
        self
    }

    /// The run's workload override, if any.
    pub fn traffic(&self) -> Option<&TrafficSpec> {
        self.traffic.as_ref()
    }

    /// The traffic matrix a traffic-capable experiment should evaluate:
    /// the `--traffic` override when one is set, the paper's
    /// random-permutation workload otherwise. `seed` is the experiment's
    /// item-derived matrix seed, applied identically to both paths so an
    /// explicit `--traffic permutation` is byte-identical to no override.
    pub fn traffic_matrix(&self, servers: &ServerMap, seed: u64) -> TrafficMatrix {
        match &self.traffic {
            Some(spec) => spec.matrix(servers, seed).unwrap_or_else(|e| {
                panic!("--traffic '{spec}' does not build for this topology: {e}")
            }),
            None => TrafficMatrix::random_permutation(servers, seed),
        }
    }

    /// Returns the memoized snapshot for `key`, building it (outside the
    /// lock) on first use. `build` must be a pure function of the context's
    /// `(scale, seed)` — the cache only dedups work, it never changes
    /// results, so sharded processes that rebuild get identical data.
    pub fn snapshot(&self, key: &str, build: impl FnOnce(&RunCtx) -> Topology) -> Arc<Snapshot> {
        self.memoized(key.to_string(), self.seed, || build(self))
    }

    /// Returns the memoized snapshot of `spec` built with `seed` (which may
    /// differ from the run seed: some experiments derive per-topology
    /// seeds). Only the transform-free [`TopoSpec::base`] is cached — items
    /// that share a base but apply different failure/expansion transforms
    /// (e.g. one failure sweep) build it once and transform clones.
    pub fn spec_snapshot(&self, spec: &TopoSpec, seed: u64) -> Result<Arc<Snapshot>, SpecError> {
        let base = spec.base();
        // Build the base outside the memo closure so errors propagate
        // instead of panicking inside it.
        let snap = {
            let key = (base.to_string(), seed);
            if let Some(snap) = self.lookup(&key) {
                snap
            } else {
                let topology = base.build(seed)?;
                self.insert(key, topology)
            }
        };
        if spec.transforms().is_empty() {
            return Ok(snap);
        }
        let mut transformed = snap.topology.clone();
        spec.apply_transforms(&mut transformed, seed)?;
        Ok(Arc::new(Snapshot::new(transformed)))
    }

    /// Builds a live [`Session`](crate::service::Session) over the memoized
    /// transform-free base of `spec` — the same cached topology the
    /// snapshot path clones, so replaying the spec's transforms as churn
    /// events reproduces [`RunCtx::spec_snapshot`] byte-for-byte (both
    /// call [`ScenarioTransform::apply`](jellyfish_topology::spec::ScenarioTransform::apply)
    /// with `seed` on the identical base). The session inherits the run's
    /// `--traffic` override.
    pub fn session(&self, spec: &TopoSpec, seed: u64) -> Result<Session, SpecError> {
        let base = self.spec_snapshot(&spec.base(), seed)?;
        Ok(Session::new(base.topology.clone(), seed).with_traffic(self.traffic.clone()))
    }

    fn memoized(&self, key: String, seed: u64, build: impl FnOnce() -> Topology) -> Arc<Snapshot> {
        let key = (key, seed);
        if let Some(snap) = self.lookup(&key) {
            return snap;
        }
        let topology = build();
        self.insert(key, topology)
    }

    /// Cache lookup with the staleness guard: a hit whose CSR snapshot no
    /// longer matches its topology's generation (impossible through this
    /// API, but cheap to verify) is dropped and rebuilt by the caller.
    fn lookup(&self, key: &(String, u64)) -> Option<Arc<Snapshot>> {
        let mut cache = self.cache.lock().unwrap();
        match cache.get(key) {
            Some(snap) if snap.is_current() => Some(Arc::clone(snap)),
            Some(_) => {
                debug_assert!(false, "cached snapshot went stale for {key:?}");
                cache.remove(key);
                None
            }
            None => None,
        }
    }

    fn insert(&self, key: (String, u64), topology: Topology) -> Arc<Snapshot> {
        let snap = Arc::new(Snapshot::new(topology));
        Arc::clone(self.cache.lock().unwrap().entry(key).or_insert(snap))
    }
}

/// A `K/N` slice of an experiment's work items (1-based `K`): shard `K`
/// owns every item whose index is congruent to `K - 1` modulo `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    /// 1-based shard number, `1 <= index <= count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Creates shard `index` of `count`, validating `1 <= index <= count`.
    pub fn new(index: usize, count: usize) -> Result<Shard, String> {
        if count == 0 || index == 0 || index > count {
            return Err(format!("invalid shard {index}/{count}: need 1 <= K <= N"));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns the item at `item_index`.
    pub fn owns(&self, item_index: usize) -> bool {
        item_index % self.count == self.index - 1
    }
}

impl std::str::FromStr for Shard {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("invalid shard '{s}': expected K/N with 1 <= K <= N, e.g. 2/4");
        let (k, n) = s.split_once('/').ok_or_else(err)?;
        let k: usize = k.trim().parse().map_err(|_| err())?;
        let n: usize = n.trim().parse().map_err(|_| err())?;
        Shard::new(k, n).map_err(|_| err())
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// How an experiment's work items are partitioned across `N` shards.
///
/// [`WorkPlan::striped`] reproduces the classic `--shard K/N` striping rule
/// ([`Shard::owns`]); [`WorkPlan::lpt`] bin-packs items by measured per-item
/// cost (longest-processing-time-first greedy) so a prior run's
/// [`TimingFile`] balances the next run. Both produce exact partitions —
/// every item lands in exactly one bin — which is what keeps the
/// `figures merge` coverage validation independent of the partitioner that
/// produced the fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkPlan {
    bins: Vec<Vec<usize>>,
}

impl WorkPlan {
    /// The striping partition: bin `K` owns every index congruent to
    /// `K - 1` modulo `num_shards` (exactly [`Shard::owns`]).
    pub fn striped(num_items: usize, num_shards: usize) -> WorkPlan {
        assert!(num_shards > 0, "a work plan needs at least one shard");
        let mut bins = vec![Vec::new(); num_shards];
        for index in 0..num_items {
            bins[index % num_shards].push(index);
        }
        WorkPlan { bins }
    }

    /// The LPT (longest processing time first) greedy bin-packing: items in
    /// descending timing order (ties broken by ascending index) each go to
    /// the currently least-loaded bin (ties to the lowest bin index). The
    /// result is a deterministic pure function of `(timings_us, num_shards)`
    /// whose heaviest bin is within `mean + max_item` of the total/shards
    /// lower bound — the classic greedy guarantee.
    pub fn lpt(timings_us: &[u64], num_shards: usize) -> WorkPlan {
        assert!(num_shards > 0, "a work plan needs at least one shard");
        let mut order: Vec<usize> = (0..timings_us.len()).collect();
        order.sort_by(|&a, &b| timings_us[b].cmp(&timings_us[a]).then(a.cmp(&b)));
        let mut bins = vec![Vec::new(); num_shards];
        let mut loads = vec![0u128; num_shards];
        for index in order {
            let mut best = 0;
            for bin in 1..num_shards {
                if loads[bin] < loads[best] {
                    best = bin;
                }
            }
            bins[best].push(index);
            loads[best] += timings_us[index] as u128;
        }
        for bin in &mut bins {
            bin.sort_unstable();
        }
        WorkPlan { bins }
    }

    /// The partition sharded workers actually use: LPT when `timings` holds
    /// exactly one measurement per item, striping otherwise (no prior run,
    /// or the item decomposition changed since the timing file was written).
    pub fn plan(num_items: usize, num_shards: usize, timings: Option<&[u64]>) -> WorkPlan {
        match timings {
            Some(t) if t.len() == num_items => WorkPlan::lpt(t, num_shards),
            _ => WorkPlan::striped(num_items, num_shards),
        }
    }

    /// Number of bins (shards) this plan partitions into.
    pub fn num_shards(&self) -> usize {
        self.bins.len()
    }

    /// The item indices shard `K/N` owns under this plan, ascending; panics
    /// when the plan was built for a different shard count.
    pub fn items_for(&self, shard: Shard) -> &[usize] {
        assert_eq!(
            shard.count,
            self.bins.len(),
            "work plan was built for {} shards, asked for shard {shard}",
            self.bins.len()
        );
        &self.bins[shard.index - 1]
    }

    /// Whether `index` belongs to `shard` under this plan.
    pub fn owns(&self, shard: Shard, index: usize) -> bool {
        self.items_for(shard).binary_search(&index).is_ok()
    }
}

/// The measured per-item wall-clock of one prior run, keyed by experiment:
/// what `figures launch` writes as `timings.json` into its run directory and
/// what `figures run/launch --plan <file>` feeds back into [`WorkPlan::plan`]
/// for timing-aware load balancing. `scale`, `seed` and `topo` record the
/// run the measurements came from; workers fall back to striping when they
/// do not match the current run (the item decomposition may differ).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingFile {
    /// Scale of the measured run.
    pub scale: Scale,
    /// Seed of the measured run.
    pub seed: u64,
    /// `--topo` override spec string of the measured run, if any.
    pub topo: Option<String>,
    /// `--traffic` override spec string of the measured run, if any.
    pub traffic: Option<String>,
    /// Per-experiment measurements: `timings_us[i]` is the wall-clock of
    /// work item `i` in microseconds.
    pub experiments: Vec<(String, Vec<u64>)>,
}

impl TimingFile {
    /// An empty timing file for a `(scale, seed, topo, traffic)` run.
    pub fn new(scale: Scale, seed: u64, topo: Option<String>, traffic: Option<String>) -> Self {
        TimingFile { scale, seed, topo, traffic, experiments: Vec::new() }
    }

    /// Records (or replaces) the per-item timings of one experiment.
    pub fn record(&mut self, name: impl Into<String>, timings_us: Vec<u64>) {
        let name = name.into();
        match self.experiments.iter_mut().find(|(n, _)| *n == name) {
            Some((_, t)) => *t = timings_us,
            None => self.experiments.push((name, timings_us)),
        }
    }

    /// The recorded timings of `name`, if any.
    pub fn get(&self, name: &str) -> Option<&[u64]> {
        self.experiments.iter().find(|(n, _)| n == name).map(|(_, t)| t.as_slice())
    }

    /// Renders the timing file as JSON.
    pub fn to_json(&self) -> String {
        json::timing_file_to_json(self)
    }

    /// Parses [`TimingFile::to_json`] output.
    pub fn from_json(text: &str) -> Result<TimingFile, String> {
        json::timing_file_from_json(text)
    }
}

/// The items one (possibly partial) run evaluated plus the wall-clock each
/// item took: `items` and `timings_us` are parallel vectors, exactly the
/// payload of a [`ShardFragment`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRun {
    /// Item results, sorted by item index.
    pub items: Vec<ItemResult>,
    /// Wall-clock microseconds [`Experiment::run_item`] took for the
    /// corresponding entry of `items` (clamped to at least 1).
    pub timings_us: Vec<u64>,
}

/// The output of one shard of one experiment: the metadata a merge needs to
/// validate coverage plus the item results the shard owns. Serializes to a
/// single JSON line (`figures run --shard K/N` emits one per experiment) and
/// back ([`ShardFragment::from_json`], used by `figures merge`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFragment {
    /// Registered experiment name.
    pub experiment: String,
    /// Scale the shard ran at.
    pub scale: Scale,
    /// Seed the shard ran with.
    pub seed: u64,
    /// The `--topo` override spec string the shard ran with, if any. Merges
    /// require all fragments of one experiment to agree on it — the work
    /// item decomposition depends on it.
    pub topo: Option<String>,
    /// The `--traffic` override spec string the shard ran with, if any.
    /// Merges require agreement exactly as for `topo`.
    pub traffic: Option<String>,
    /// Which slice of the work items this fragment holds.
    pub shard: Shard,
    /// Measured wall-clock microseconds per entry of `items` (parallel
    /// vectors; empty only in fragments from builds that predate timing).
    /// `figures launch` aggregates these into the run's [`TimingFile`].
    pub timings_us: Vec<u64>,
    /// The item results, sorted by item index.
    pub items: Vec<ItemResult>,
}

impl ShardFragment {
    /// Renders the fragment as one line of JSON.
    pub fn to_json(&self) -> String {
        json::fragment_to_json(self)
    }

    /// Parses a fragment from [`ShardFragment::to_json`] output.
    pub fn from_json(text: &str) -> Result<ShardFragment, String> {
        json::fragment_from_json(text)
    }
}

/// A named, shardable experiment: one figure or table of the paper.
///
/// Implementations decompose into independent [`WorkItem`]s whose results
/// are pure functions of `(scale, seed, item index)` — never of which
/// process, shard, or thread evaluated them. That contract is what makes
/// [`Experiment::run`], and any partition of the items into [`Shard`]s
/// followed by [`Experiment::merge`], produce identical [`Dataset`]s; the
/// shard-determinism proptest in `crates/core/tests` enforces it for every
/// registered experiment.
pub trait Experiment: Sync {
    /// Registry name (`fig1c`, …, `table1`, `throughput_vs_size`).
    fn name(&self) -> &'static str;

    /// One-line description shown by `figures list`.
    fn describe(&self) -> &'static str;

    /// Whether the experiment's topology axis can be replaced by a
    /// `--topo <spec>` override ([`RunCtx::with_topo`]). True for the
    /// topology-generic metric sweeps (throughput, path length, bisection,
    /// failures); false for the paper figures, whose topology pairings *are*
    /// the experiment.
    fn supports_topo_override(&self) -> bool {
        false
    }

    /// Whether the experiment's workload can be replaced by a
    /// `--traffic <spec>` override ([`RunCtx::with_traffic`]). True for the
    /// experiments that evaluate "a workload against a fabric" generically
    /// (the throughput/failure sweeps and the workload experiments); false
    /// for the paper figures, whose permutation workload *is* the
    /// experiment.
    fn supports_traffic_override(&self) -> bool {
        false
    }

    /// The full, ordered decomposition of this experiment for `ctx`
    /// (`scale`, `seed`, and — for override-capable experiments — `topo`).
    /// Must be cheap (no heavy simulation) and deterministic.
    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem>;

    /// Evaluates one work item. Must be a pure function of
    /// `(ctx.scale, ctx.seed, ctx.topo, item)`.
    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult;

    /// Combines item results (any order; the default sorts by item index and
    /// concatenates with [`Dataset::concat`]). Overrides must stay
    /// order-insensitive in the same way: sort first, then combine.
    fn merge(&self, mut results: Vec<ItemResult>) -> Dataset {
        results.sort_by_key(|r| r.index);
        Dataset::concat(results.into_iter().map(|r| r.data))
    }

    /// Runs every work item (in parallel) and merges: the single-process path.
    fn run(&self, ctx: &RunCtx) -> Dataset {
        self.merge(self.run_items(ctx, None))
    }

    /// Runs only the items a shard owns, returning mergeable results sorted
    /// by item index.
    fn run_shard(&self, ctx: &RunCtx, shard: Shard) -> Vec<ItemResult> {
        self.run_items(ctx, Some(shard))
    }

    /// Shared driver for [`Experiment::run`] / [`Experiment::run_shard`]:
    /// evaluates the (optionally shard-filtered) items in parallel.
    fn run_items(&self, ctx: &RunCtx, shard: Option<Shard>) -> Vec<ItemResult> {
        self.run_selected_timed(ctx, &|index| shard.is_none_or(|s| s.owns(index))).items
    }

    /// The timing-aware driver everything funnels through: evaluates the
    /// items `selected` accepts (by index) in parallel, recording each
    /// item's wall-clock. The timings are measurement, not data — they vary
    /// run to run and never influence an item result, so sharded outputs
    /// stay byte-identical to single-process runs regardless of them.
    fn run_selected_timed(&self, ctx: &RunCtx, selected: &dyn Fn(usize) -> bool) -> TimedRun {
        let items: Vec<WorkItem> =
            self.work_items(ctx).into_iter().filter(|it| selected(it.index)).collect();
        let mut timed: Vec<(ItemResult, u64)> = items
            .par_iter()
            .map(|item| {
                let start = std::time::Instant::now();
                let result = self.run_item(ctx, item);
                let micros = start.elapsed().as_micros().max(1) as u64;
                (result, micros)
            })
            .collect();
        timed.sort_by_key(|(r, _)| r.index);
        let (items, timings_us) = timed.into_iter().unzip();
        TimedRun { items, timings_us }
    }
}

/// The static registry: the paper's 17 figures/tables in canonical order,
/// followed by the topology-generic metric sweeps and the impaired
/// graceful-degradation sweeps (all of which accept `--topo <spec>`
/// overrides).
pub fn registry() -> &'static [&'static dyn Experiment] {
    use catalog::*;
    use generic::*;
    use impair::*;
    use workload::*;
    static REGISTRY: &[&dyn Experiment] = &[
        &Fig1c,
        &Fig2a,
        &Fig2b,
        &Fig2c,
        &Fig3,
        &Fig4,
        &Fig5,
        &Fig6,
        &Fig7,
        &Fig8,
        &Fig9,
        &Table1,
        &Fig10,
        &Fig11,
        &Fig12,
        &Fig13,
        &Fig14,
        &ThroughputVsSize,
        &PathLength,
        &Bisection,
        &FailureSweep,
        &ThroughputVsLoss,
        &LatencyHistogramExp,
        &ImpairedFailureSweep,
        &ThroughputVsWorkload,
        &FairnessUnderSkew,
        &IncastDegradation,
    ];
    REGISTRY
}

/// Looks up a registered experiment by name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    registry().iter().find(|e| e.name() == name).copied()
}

/// The registered experiment names, in canonical order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|e| e.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_27_experiments_with_unique_names() {
        let names = names();
        assert_eq!(names.len(), 27);
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 27, "duplicate experiment names");
        assert!(find("fig1c").is_some());
        assert!(find("table1").is_some());
        assert!(find("throughput_vs_size").is_some());
        assert!(find("throughput_vs_workload").is_some());
        assert!(find("nope").is_none());
        // Exactly the topology-generic sweeps accept --topo.
        let overridable: Vec<&str> =
            registry().iter().filter(|e| e.supports_topo_override()).map(|e| e.name()).collect();
        assert_eq!(
            overridable,
            [
                "throughput_vs_size",
                "path_length",
                "bisection",
                "failure_sweep",
                "throughput_vs_loss",
                "latency_histogram",
                "impaired_failure_sweep",
                "throughput_vs_workload",
                "fairness_under_skew",
                "incast_degradation"
            ]
        );
        // Exactly the workload-generic experiments accept --traffic.
        let traffic_capable: Vec<&str> =
            registry().iter().filter(|e| e.supports_traffic_override()).map(|e| e.name()).collect();
        assert_eq!(
            traffic_capable,
            [
                "throughput_vs_size",
                "failure_sweep",
                "throughput_vs_workload",
                "fairness_under_skew",
                "incast_degradation"
            ]
        );
    }

    #[test]
    fn snapshot_staleness_is_detectable_and_repairable() {
        use jellyfish_topology::JellyfishBuilder;
        let topo = JellyfishBuilder::new(12, 6, 3).seed(1).build().unwrap();
        let mut snap = Snapshot::new(topo);
        assert!(snap.is_current());
        let links_before = snap.csr.num_edges();
        // Mutate behind the CSR snapshot's back: the hazard this guards.
        let e = snap.topology.graph().edges().next().unwrap();
        snap.topology.disconnect(e.a, e.b);
        assert!(!snap.is_current(), "mutation must invalidate the snapshot");
        assert_eq!(snap.csr.num_edges(), links_before, "stale CSR still has the old link");
        snap.refresh();
        assert!(snap.is_current());
        assert_eq!(snap.csr.num_edges(), links_before - 1);
    }

    #[test]
    fn spec_snapshot_caches_bases_and_transforms_clones() {
        let ctx = RunCtx::new(Scale::Tiny, 7);
        let spec: TopoSpec = "jellyfish:switches=20,ports=8,degree=5".parse().unwrap();
        let a = ctx.spec_snapshot(&spec, 7).unwrap();
        let b = ctx.spec_snapshot(&spec, 7).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same (spec, seed) must share one snapshot");
        let other_seed = ctx.spec_snapshot(&spec, 8).unwrap();
        assert!(!Arc::ptr_eq(&a, &other_seed), "seeds key the cache independently");
        let failed_spec: TopoSpec =
            "jellyfish:switches=20,ports=8,degree=5+fail_links=0.2".parse().unwrap();
        let failed = ctx.spec_snapshot(&failed_spec, 7).unwrap();
        assert!(!Arc::ptr_eq(&a, &failed));
        assert!(failed.is_current());
        assert!(failed.topology.num_links() < a.topology.num_links());
        // The base snapshot is untouched by the transformed build.
        assert!(a.is_current());
        // Infeasible parameters surface as errors, not panics.
        let bad: TopoSpec = "jellyfish:switches=3,ports=12,degree=9".parse().unwrap();
        assert!(ctx.spec_snapshot(&bad, 7).is_err());
    }

    #[test]
    fn concat_merges_meta_first_seen_and_asserts_agreement() {
        let mut a = Dataset::new();
        a.push_meta("topo:x", "jellyfish:switches=4,ports=3,degree=2");
        let mut b = Dataset::new();
        b.push_meta("topo:y", "fattree:k=4");
        b.push_meta("topo:x", "jellyfish:switches=4,ports=3,degree=2");
        let merged = Dataset::concat([a, b]);
        assert_eq!(merged.meta.len(), 2);
        assert_eq!(merged.meta[0].0, "topo:x");
        let tsv = merged.to_tsv();
        assert!(tsv.starts_with(
            "# topo:x\tjellyfish:switches=4,ports=3,degree=2\n# topo:y\tfattree:k=4\n"
        ));
    }

    #[test]
    fn shard_parses_and_partitions() {
        let s: Shard = "2/3".parse().unwrap();
        assert_eq!(s, Shard::new(2, 3).unwrap());
        assert_eq!(s.to_string(), "2/3");
        assert!(!s.owns(0) && s.owns(1) && !s.owns(2) && !s.owns(3) && s.owns(4));
        for bad in ["0/3", "4/3", "1/0", "x/y", "3", "1/2/3", ""] {
            assert!(bad.parse::<Shard>().is_err(), "'{bad}' should not parse");
        }
        // Every item is owned by exactly one shard.
        for n in 1..=5usize {
            for item in 0..17usize {
                let owners = (1..=n).filter(|&k| Shard::new(k, n).unwrap().owns(item)).count();
                assert_eq!(owners, 1);
            }
        }
    }

    #[test]
    fn concat_merges_series_by_label_and_keeps_order() {
        let mut a = Dataset::new();
        a.push_point("jf", 1.0, 0.5);
        a.push_point("ft", 1.0, 0.4);
        let mut b = Dataset::new();
        b.push_point("jf", 2.0, 0.6);
        let merged = Dataset::concat([a, b]);
        assert_eq!(merged.series.len(), 2);
        assert_eq!(merged.series[0].label, "jf");
        assert_eq!(merged.series[0].points, vec![(1.0, 0.5), (2.0, 0.6)]);
        assert_eq!(merged.series[1].points, vec![(1.0, 0.4)]);
    }

    #[test]
    fn tsv_renders_all_three_sections() {
        let mut ds = Dataset::new();
        ds.push_cell("jain", 0.975);
        ds.set_columns(&["config", "servers", "throughput"]);
        ds.push_row("k=4", vec![16.0, 0.91]);
        ds.push_point("Jellyfish", 2.0, 0.25);
        ds.push_point("Fat-tree", 2.0, 0.125);
        let tsv = ds.to_tsv();
        assert!(tsv.contains("jain\t0.975\n"));
        assert!(tsv.contains("config\tservers\tthroughput\nk=4\t16\t0.91\n"));
        assert!(tsv.contains("x\tJellyfish\tFat-tree\n2\t0.25\t0.125\n"));
    }

    #[test]
    fn dataset_json_round_trips_exactly() {
        let mut ds = Dataset::new();
        ds.push_meta("topo:jf", "jellyfish:switches=4,ports=3,degree=2+fail_links=0.05");
        ds.push_cell("odd \"name\"\twith\\escapes", 1.0 / 3.0);
        ds.set_columns(&["c", "v"]);
        ds.push_row("r0", vec![0.1 + 0.2, -4.0, 1e-300]);
        ds.push_point("s", f64::MIN_POSITIVE, 12345678901234.5);
        let back = Dataset::from_json(&ds.to_json()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn fragment_json_round_trips_exactly() {
        let mut ds = Dataset::new();
        ds.push_point("s", 0.1, 0.2);
        let mut frag = ShardFragment {
            experiment: "fig9".to_string(),
            scale: Scale::Tiny,
            seed: u64::MAX,
            topo: None,
            traffic: None,
            shard: Shard::new(2, 3).unwrap(),
            timings_us: vec![u64::MAX],
            items: vec![ItemResult::new(1, ds)],
        };
        let back = ShardFragment::from_json(&frag.to_json()).unwrap();
        assert_eq!(frag, back);
        frag.topo = Some("leafspine:leaf=6,spine=3,servers=4".to_string());
        frag.traffic = Some("zipf:s=1.2,hot_racks=4+scale_demand=0.5".to_string());
        let back = ShardFragment::from_json(&frag.to_json()).unwrap();
        assert_eq!(frag, back);
        // Timing-free fragments (older builds) still parse; a fragment whose
        // timings disagree with its item count is corrupt and rejected.
        frag.timings_us = Vec::new();
        let back = ShardFragment::from_json(&frag.to_json()).unwrap();
        assert_eq!(frag, back);
        frag.timings_us = vec![1, 2];
        assert!(ShardFragment::from_json(&frag.to_json())
            .unwrap_err()
            .contains("2 timings for 1 items"));
        assert!(ShardFragment::from_json("{\"experiment\":1}").is_err());
        assert!(ShardFragment::from_json("not json").is_err());
    }

    #[test]
    fn striped_plan_matches_shard_ownership() {
        for n in 1..=5usize {
            let plan = WorkPlan::striped(17, n);
            assert_eq!(plan.num_shards(), n);
            for k in 1..=n {
                let shard = Shard::new(k, n).unwrap();
                for index in 0..17 {
                    assert_eq!(plan.owns(shard, index), shard.owns(index));
                }
            }
        }
    }

    #[test]
    fn lpt_plan_balances_by_measured_cost() {
        // One dominant item plus small ones: striping piles the heavy item
        // onto whatever bin its index lands in together with other work; LPT
        // isolates it.
        let timings = [100, 1, 1, 1, 1, 1];
        let plan = WorkPlan::lpt(&timings, 2);
        let heavy = Shard::new(1, 2).unwrap();
        assert_eq!(plan.items_for(heavy), &[0], "heaviest item gets a bin of its own");
        let rest = Shard::new(2, 2).unwrap();
        assert_eq!(plan.items_for(rest), &[1, 2, 3, 4, 5]);
        // Exact partition, deterministic rebuild.
        let mut all: Vec<usize> =
            (1..=2).flat_map(|k| plan.items_for(Shard::new(k, 2).unwrap()).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..timings.len()).collect::<Vec<_>>());
        assert_eq!(plan, WorkPlan::lpt(&timings, 2));
    }

    #[test]
    fn plan_falls_back_to_striping_without_matching_timings() {
        let striped = WorkPlan::striped(5, 2);
        assert_eq!(WorkPlan::plan(5, 2, None), striped);
        assert_eq!(WorkPlan::plan(5, 2, Some(&[9, 9, 9])), striped, "stale length: striped");
        let timed = WorkPlan::plan(5, 2, Some(&[50, 1, 1, 1, 1]));
        assert_eq!(timed, WorkPlan::lpt(&[50, 1, 1, 1, 1], 2));
    }

    #[test]
    fn timing_file_records_and_round_trips() {
        let mut tf = TimingFile::new(
            Scale::Tiny,
            7,
            Some("fattree:k=4".to_string()),
            Some("stride:k=3".to_string()),
        );
        tf.record("fig9", vec![3, 1, 4]);
        tf.record("fig8", vec![2, 7]);
        tf.record("fig9", vec![5, 9, 2]);
        assert_eq!(tf.get("fig9"), Some(&[5, 9, 2][..]), "re-recording replaces");
        assert_eq!(tf.get("fig8"), Some(&[2, 7][..]));
        assert_eq!(tf.get("nope"), None);
        let back = TimingFile::from_json(&tf.to_json()).unwrap();
        assert_eq!(tf, back);
        let no_topo = TimingFile::new(Scale::Laptop, u64::MAX, None, None);
        assert_eq!(TimingFile::from_json(&no_topo.to_json()).unwrap(), no_topo);
        assert!(TimingFile::from_json("{}").is_err());
        assert!(TimingFile::from_json("not json").is_err());
    }

    #[test]
    fn run_selected_timed_times_every_selected_item() {
        let exp = find("fig2a").unwrap();
        let ctx = RunCtx::new(Scale::Tiny, 7);
        let n = exp.work_items(&ctx).len();
        let timed = exp.run_selected_timed(&ctx, &|i| i % 2 == 0);
        assert_eq!(timed.items.len(), n.div_ceil(2));
        assert_eq!(timed.items.len(), timed.timings_us.len());
        assert!(timed.items.iter().all(|r| r.index % 2 == 0));
        assert!(timed.timings_us.iter().all(|&t| t >= 1), "timings are clamped non-zero");
        // The timed results are the same item results the untimed path gives.
        let untimed = exp.run_items(&ctx, None);
        for item in &timed.items {
            assert_eq!(untimed[item.index], *item);
        }
    }
}
