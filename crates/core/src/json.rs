//! Dependency-free JSON primitives shared by the experiment fragment codec
//! ([`crate::experiment`]) and the live-service wire protocol
//! ([`crate::service`]). The build environment has no serde (DESIGN.md), so
//! both layers hand-roll encoding over these helpers.
//!
//! Numbers are written with Rust's shortest round-trip `Display` formatting
//! and parsed keeping their raw token, so every finite `f64` — and every
//! `u64` seed, which never routes through `f64` — survives a write/parse
//! cycle exactly. That exactness is what lets `figures merge` and the
//! serve golden transcripts reproduce bytes.

// ---------------------------------------------------------------- encoding

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` with shortest round-trip formatting (`null` for non-finite
/// values, which JSON cannot represent).
pub(crate) fn num_into(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

// ---------------------------------------------------------------- decoding

/// A parsed JSON value. Numbers keep their raw token so integer widths
/// (`u64` seeds) and float payloads convert without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub(crate) fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected string, found {other:?}")),
        }
    }

    pub(crate) fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Num(raw) => raw.parse().map_err(|_| format!("bad number '{raw}'")),
            Value::Null => Ok(f64::NAN),
            other => Err(format!("expected number, found {other:?}")),
        }
    }

    pub(crate) fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Num(raw) => raw.parse().map_err(|_| format!("bad integer '{raw}'")),
            other => Err(format!("expected integer, found {other:?}")),
        }
    }

    pub(crate) fn as_usize(&self) -> Result<usize, String> {
        self.as_u64().map(|v| v as usize)
    }

    pub(crate) fn as_arr(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(format!("expected array, found {other:?}")),
        }
    }

    pub(crate) fn get(&self, key: &str) -> Result<&Value, String> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key '{key}'")),
            other => Err(format!("expected object with '{key}', found {other:?}")),
        }
    }

    /// Like [`Value::get`], but absent keys and explicit `null` are `None`.
    pub(crate) fn get_opt(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .filter(|v| !matches!(v, Value::Null)),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_string();
        if raw.parse::<f64>().is_err() {
            return Err(self.err(&format!("bad number '{raw}'")));
        }
        Ok(Value::Num(raw))
    }
}

/// Parses one complete JSON document (trailing data is an error).
pub(crate) fn parse_document(text: &str) -> Result<Value, String> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}
