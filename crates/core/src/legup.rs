//! Incremental-expansion cost comparison against a LEGUP-style Clos upgrade
//! planner (paper §4.2, Figure 7).
//!
//! The original LEGUP topologies were shared privately with the Jellyfish
//! authors and are not public; per DESIGN.md (substitution 3) the baseline
//! here is the budgeted Clos upgrade planner from
//! [`jellyfish_topology::clos`]. Both arms of the comparison get the same
//! budget per expansion stage and the same cost model; the metric is the
//! normalized bisection bandwidth of the network each arm can build, found
//! with the Kernighan–Lin heuristic (LEGUP optimizes bisection bandwidth, so
//! the paper compares on that metric too).

use jellyfish_flow::bisection::{min_bisection_heuristic, BisectionCut};
use jellyfish_topology::clos::{ClosConfig, ClosUpgradePlanner, CostModel};
use jellyfish_topology::expansion::add_network_switch;
use jellyfish_topology::rrg::build_heterogeneous;
use jellyfish_topology::{Topology, TopologyError};

/// One expansion stage of the Figure 7 comparison.
#[derive(Debug, Clone)]
pub struct ExpansionStage {
    /// Cumulative budget spent up to and including this stage.
    pub cumulative_budget: f64,
    /// Jellyfish's normalized bisection bandwidth at this stage.
    pub jellyfish_bisection: f64,
    /// The Clos (LEGUP-style) planner's normalized bisection bandwidth.
    pub clos_bisection: f64,
    /// Number of servers both networks support at this stage.
    pub servers: usize,
}

/// Parameters of the expansion arc.
#[derive(Debug, Clone, Copy)]
pub struct ExpansionScenario {
    /// Servers in the initial network (the paper's arc starts at 480).
    pub initial_servers: usize,
    /// Servers added in the first expansion (240 in the paper); later stages
    /// add switches only.
    pub first_expansion_servers: usize,
    /// Number of expansion stages after the initial build.
    pub stages: usize,
    /// Budget for the initial network.
    pub initial_budget: f64,
    /// Budget per expansion stage.
    pub stage_budget: f64,
    /// Ports per switch for both arms.
    pub ports: usize,
    /// Servers attached per ToR/leaf switch.
    pub servers_per_switch: usize,
    /// Cost model (ports, cables, rewiring).
    pub cost: CostModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExpansionScenario {
    fn default() -> Self {
        ExpansionScenario {
            initial_servers: 480,
            first_expansion_servers: 240,
            stages: 8,
            initial_budget: 200_000.0,
            stage_budget: 100_000.0,
            ports: 24,
            servers_per_switch: 16,
            cost: CostModel::default(),
            seed: 2012,
        }
    }
}

/// Normalized bisection bandwidth via the Kernighan–Lin heuristic.
fn normalized_bisection(topo: &Topology, seed: u64) -> f64 {
    let cut: BisectionCut = min_bisection_heuristic(topo, 4, seed);
    cut.normalized
}

/// How many switches (ToR, `ports`-port, `servers_per_switch` servers each,
/// rest of the ports cabled randomly) a given budget buys for Jellyfish,
/// including cable costs.
fn jellyfish_switches_for_budget(
    budget: f64,
    ports: usize,
    servers_per_switch: usize,
    cost: &CostModel,
) -> usize {
    // Per switch: the switch itself + cables for its servers + half a cable
    // per network port (each network cable is shared by two ports).
    let network_ports = ports - servers_per_switch;
    let per_switch = cost.switch_cost(ports)
        + cost.per_cable * servers_per_switch as f64
        + cost.per_cable * network_ports as f64 / 2.0
        + cost.per_rewire * network_ports as f64 / 2.0;
    (budget / per_switch).floor() as usize
}

/// Runs the whole Figure 7 expansion arc and returns one entry per stage
/// (stage 0 = the initial build).
pub fn run_expansion_comparison(
    scenario: ExpansionScenario,
) -> Result<Vec<ExpansionStage>, TopologyError> {
    let ports = scenario.ports;
    let spt = scenario.servers_per_switch;
    assert!(spt < ports, "need at least one network port per switch");

    // --- Jellyfish arm: start with enough racks for the initial servers,
    // then spend each stage's budget on additional (server-less) switches
    // wired randomly into the network.
    let initial_racks = scenario.initial_servers.div_ceil(spt);
    let mut jf_ports_list = vec![ports; initial_racks];
    let mut jf_degrees = vec![ports - spt; initial_racks];
    // Spend any initial budget left after the racks on extra network switches.
    let rack_cost = scenario.initial_budget / initial_racks.max(1) as f64;
    let _ = rack_cost;
    let mut jellyfish = build_heterogeneous(&jf_ports_list, &jf_degrees, scenario.seed)?;

    // --- Clos arm: an initial leaf-spine sized for the same servers with a
    // comparable share of the budget on spines.
    let leaves = scenario.initial_servers.div_ceil(spt);
    let initial_spines = ((ports - spt) / 2).max(1);
    // Spine switches are sized so that they can reach every leaf even after
    // the first expansion adds racks (LEGUP's aggregation layers likewise use
    // higher-radix switches than the ToRs).
    let max_leaves = leaves + scenario.first_expansion_servers.div_ceil(spt);
    let clos_initial = ClosConfig {
        leaves,
        spines: initial_spines,
        leaf_ports: ports,
        spine_ports: (2 * max_leaves).max(ports),
        servers_per_leaf: spt,
    };
    let mut clos_planner = ClosUpgradePlanner::new(clos_initial.clone(), scenario.cost, 0.25);
    let mut clos_topo = clos_initial.build()?;

    let mut stages = Vec::with_capacity(scenario.stages + 1);
    let mut cumulative = scenario.initial_budget;
    stages.push(ExpansionStage {
        cumulative_budget: cumulative,
        jellyfish_bisection: normalized_bisection(&jellyfish, scenario.seed),
        clos_bisection: normalized_bisection(&clos_topo, scenario.seed),
        servers: scenario.initial_servers,
    });

    let mut servers = scenario.initial_servers;
    for stage in 1..=scenario.stages {
        cumulative += scenario.stage_budget;
        let mut budget_jf = scenario.stage_budget;
        let mut new_leaves = 0;
        if stage == 1 && scenario.first_expansion_servers > 0 {
            // Both arms must absorb the new servers first.
            new_leaves = scenario.first_expansion_servers.div_ceil(spt);
            servers += scenario.first_expansion_servers;
            let rack_price =
                scenario.cost.switch_cost(ports) + scenario.cost.per_cable * spt as f64;
            budget_jf -= rack_price * new_leaves as f64;
            for i in 0..new_leaves {
                jf_ports_list.push(ports);
                jf_degrees.push(ports - spt);
                let _ = i;
            }
            jellyfish =
                build_heterogeneous(&jf_ports_list, &jf_degrees, scenario.seed ^ stage as u64)?;
        }
        // Jellyfish: spend the remaining budget on pure network switches.
        let extra_switches =
            jellyfish_switches_for_budget(budget_jf.max(0.0), ports, 0, &scenario.cost);
        for i in 0..extra_switches {
            add_network_switch(
                &mut jellyfish,
                ports,
                scenario.seed ^ (stage as u64) << 8 ^ i as u64,
            )?;
        }
        // Clos: the planner gets the same budget and leaf requirement.
        let clos_stage = clos_planner.expand(scenario.stage_budget, new_leaves)?;
        clos_topo = clos_stage.topology;

        stages.push(ExpansionStage {
            cumulative_budget: cumulative,
            jellyfish_bisection: normalized_bisection(&jellyfish, scenario.seed + stage as u64),
            clos_bisection: normalized_bisection(&clos_topo, scenario.seed + stage as u64),
            servers,
        });
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> ExpansionScenario {
        ExpansionScenario {
            initial_servers: 96,
            first_expansion_servers: 48,
            stages: 4,
            initial_budget: 40_000.0,
            stage_budget: 20_000.0,
            ports: 12,
            servers_per_switch: 8,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn expansion_arc_produces_one_entry_per_stage() {
        let stages = run_expansion_comparison(small_scenario()).unwrap();
        assert_eq!(stages.len(), 5);
        // Budgets are cumulative and strictly increasing.
        for w in stages.windows(2) {
            assert!(w[1].cumulative_budget > w[0].cumulative_budget);
        }
        // Server growth happens exactly at stage 1.
        assert_eq!(stages[0].servers, 96);
        assert_eq!(stages[1].servers, 144);
        assert_eq!(stages.last().unwrap().servers, 144);
    }

    #[test]
    fn jellyfish_bisection_eventually_exceeds_clos() {
        // The Figure 7 shape: at equal cumulative budget Jellyfish reaches a
        // higher bisection bandwidth than the structure-constrained Clos
        // upgrade, and the gap is visible by the last stage.
        let stages = run_expansion_comparison(small_scenario()).unwrap();
        let last = stages.last().unwrap();
        assert!(
            last.jellyfish_bisection > last.clos_bisection,
            "jellyfish {} <= clos {} at final stage",
            last.jellyfish_bisection,
            last.clos_bisection
        );
    }

    #[test]
    fn jellyfish_bisection_is_monotone_under_switch_only_expansion() {
        let stages = run_expansion_comparison(small_scenario()).unwrap();
        // From stage 1 onwards only switches are added to Jellyfish, so its
        // bisection bandwidth must not decrease (more capacity, same servers).
        for w in stages[1..].windows(2) {
            assert!(
                w[1].jellyfish_bisection >= w[0].jellyfish_bisection - 0.05,
                "bisection regressed: {} -> {}",
                w[0].jellyfish_bisection,
                w[1].jellyfish_bisection
            );
        }
    }

    #[test]
    fn stage_zero_drop_matches_paper_note() {
        // The paper notes Jellyfish's bisection drops from stage 0 to 1
        // because the server count grows in that step; with servers added and
        // only part of the budget left for capacity the normalized value
        // cannot jump upward dramatically. We simply check it stays positive.
        let stages = run_expansion_comparison(small_scenario()).unwrap();
        assert!(stages[1].jellyfish_bisection > 0.0);
        assert!(stages[1].clos_bisection > 0.0);
    }
}
