//! Dependency-free JSON encoding/decoding for [`Dataset`] and
//! [`ShardFragment`] (the build environment has no serde; see DESIGN.md).
//!
//! Numbers are written with Rust's shortest round-trip `Display` formatting
//! and parsed with `str::parse::<f64>`, so every finite value — and every
//! `u64` seed, which is kept as a raw token rather than routed through
//! `f64` — survives a write/parse cycle exactly. That exactness is what lets
//! `figures merge` reproduce a single-process run byte-for-byte.

use super::{Dataset, ItemResult, Row, Series, Shard, ShardFragment, TimingFile};
use crate::figures::Scale;

// ---------------------------------------------------------------- encoding

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn num_into(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // Not representable in JSON; the datasets the experiments emit are
        // finite, so this only guards hand-built data.
        out.push_str("null");
    }
}

fn dataset_into(out: &mut String, ds: &Dataset) {
    out.push_str("{\"meta\":[");
    for (i, (k, v)) in ds.meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        escape_into(out, k);
        out.push(',');
        escape_into(out, v);
        out.push(']');
    }
    out.push_str("],\"series\":[");
    for (i, s) in ds.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        escape_into(out, &s.label);
        out.push_str(",\"points\":[");
        for (j, &(x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            num_into(out, x);
            out.push(',');
            num_into(out, y);
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("],\"columns\":[");
    for (i, c) in ds.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, c);
    }
    out.push_str("],\"rows\":[");
    for (i, r) in ds.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        escape_into(out, &r.label);
        out.push_str(",\"values\":[");
        for (j, &v) in r.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            num_into(out, v);
        }
        out.push_str("]}");
    }
    out.push_str("],\"cells\":[");
    for (i, c) in ds.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_into(out, &c.name);
        out.push_str(",\"value\":");
        num_into(out, c.value);
        out.push('}');
    }
    out.push_str("]}");
}

/// Renders a dataset as a JSON object.
pub(super) fn dataset_to_json(ds: &Dataset) -> String {
    let mut out = String::new();
    dataset_into(&mut out, ds);
    out
}

/// Renders a shard fragment as one line of JSON.
pub(super) fn fragment_to_json(frag: &ShardFragment) -> String {
    let mut out = String::new();
    out.push_str("{\"experiment\":");
    escape_into(&mut out, &frag.experiment);
    out.push_str(&format!(",\"scale\":\"{}\",\"seed\":{},\"topo\":", frag.scale, frag.seed));
    match &frag.topo {
        Some(spec) => escape_into(&mut out, spec),
        None => out.push_str("null"),
    }
    out.push_str(",\"traffic\":");
    match &frag.traffic {
        Some(spec) => escape_into(&mut out, spec),
        None => out.push_str("null"),
    }
    out.push_str(&format!(
        ",\"shard\":[{},{}],\"timings_us\":[",
        frag.shard.index, frag.shard.count
    ));
    for (i, t) in frag.timings_us.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{t}"));
    }
    out.push_str("],\"items\":[");
    for (i, item) in frag.items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"index\":{},\"data\":", item.index));
        dataset_into(&mut out, &item.data);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a timing file (`figures launch`'s `timings.json`) as JSON.
pub(super) fn timing_file_to_json(tf: &TimingFile) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"scale\":\"{}\",\"seed\":{},\"topo\":", tf.scale, tf.seed));
    match &tf.topo {
        Some(spec) => escape_into(&mut out, spec),
        None => out.push_str("null"),
    }
    out.push_str(",\"traffic\":");
    match &tf.traffic {
        Some(spec) => escape_into(&mut out, spec),
        None => out.push_str("null"),
    }
    out.push_str(",\"experiments\":[");
    for (i, (name, timings)) in tf.experiments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        escape_into(&mut out, name);
        out.push_str(",[");
        for (j, t) in timings.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{t}"));
        }
        out.push_str("]]");
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------- decoding

/// A parsed JSON value. Numbers keep their raw token so integer widths
/// (`u64` seeds) and float payloads convert without precision loss.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected string, found {other:?}")),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Num(raw) => raw.parse().map_err(|_| format!("bad number '{raw}'")),
            Value::Null => Ok(f64::NAN),
            other => Err(format!("expected number, found {other:?}")),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Num(raw) => raw.parse().map_err(|_| format!("bad integer '{raw}'")),
            other => Err(format!("expected integer, found {other:?}")),
        }
    }

    fn as_usize(&self) -> Result<usize, String> {
        self.as_u64().map(|v| v as usize)
    }

    fn as_arr(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(format!("expected array, found {other:?}")),
        }
    }

    fn get(&self, key: &str) -> Result<&Value, String> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key '{key}'")),
            other => Err(format!("expected object with '{key}', found {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_string();
        if raw.parse::<f64>().is_err() {
            return Err(self.err(&format!("bad number '{raw}'")));
        }
        Ok(Value::Num(raw))
    }
}

fn parse_document(text: &str) -> Result<Value, String> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

fn dataset_from_value(v: &Value) -> Result<Dataset, String> {
    let mut ds = Dataset::new();
    // `meta` is optional so fragments written before it existed still parse.
    if let Ok(meta) = v.get("meta") {
        for pair in meta.as_arr()? {
            let kv = pair.as_arr()?;
            if kv.len() != 2 {
                return Err("meta entry is not a [key, value] pair".to_string());
            }
            ds.push_meta(kv[0].as_str()?.to_string(), kv[1].as_str()?.to_string());
        }
    }
    for s in v.get("series")?.as_arr()? {
        let label = s.get("label")?.as_str()?.to_string();
        let mut points = Vec::new();
        for p in s.get("points")?.as_arr()? {
            let xy = p.as_arr()?;
            if xy.len() != 2 {
                return Err("series point is not an [x, y] pair".to_string());
            }
            points.push((xy[0].as_f64()?, xy[1].as_f64()?));
        }
        ds.series.push(Series::new(label, points));
    }
    for c in v.get("columns")?.as_arr()? {
        ds.columns.push(c.as_str()?.to_string());
    }
    for r in v.get("rows")?.as_arr()? {
        let label = r.get("label")?.as_str()?.to_string();
        let values =
            r.get("values")?.as_arr()?.iter().map(Value::as_f64).collect::<Result<_, _>>()?;
        ds.rows.push(Row { label, values });
    }
    for c in v.get("cells")?.as_arr()? {
        ds.push_cell(c.get("name")?.as_str()?.to_string(), c.get("value")?.as_f64()?);
    }
    Ok(ds)
}

/// Parses [`dataset_to_json`] output.
pub(super) fn dataset_from_json(text: &str) -> Result<Dataset, String> {
    dataset_from_value(&parse_document(text)?)
}

/// Parses [`fragment_to_json`] output.
pub(super) fn fragment_from_json(text: &str) -> Result<ShardFragment, String> {
    let v = parse_document(text)?;
    let experiment = v.get("experiment")?.as_str()?.to_string();
    let scale: Scale = v.get("scale")?.as_str()?.parse().map_err(|e| format!("{e}"))?;
    let seed = v.get("seed")?.as_u64()?;
    // `topo` and `traffic` are optional so fragments written before they
    // existed still parse.
    let topo = match v.get("topo") {
        Ok(Value::Null) | Err(_) => None,
        Ok(value) => Some(value.as_str()?.to_string()),
    };
    let traffic = match v.get("traffic") {
        Ok(Value::Null) | Err(_) => None,
        Ok(value) => Some(value.as_str()?.to_string()),
    };
    let shard = v.get("shard")?.as_arr()?;
    if shard.len() != 2 {
        return Err("'shard' is not a [K, N] pair".to_string());
    }
    let shard = Shard::new(shard[0].as_usize()?, shard[1].as_usize()?)?;
    // `timings_us` is optional so fragments written before it existed still
    // parse; when present it must pair up with the items exactly.
    let timings_us: Vec<u64> = match v.get("timings_us") {
        Ok(arr) => arr.as_arr()?.iter().map(Value::as_u64).collect::<Result<_, _>>()?,
        Err(_) => Vec::new(),
    };
    let mut items = Vec::new();
    for item in v.get("items")?.as_arr()? {
        items.push(ItemResult::new(
            item.get("index")?.as_usize()?,
            dataset_from_value(item.get("data")?)?,
        ));
    }
    if !timings_us.is_empty() && timings_us.len() != items.len() {
        return Err(format!(
            "fragment carries {} timings for {} items; the file is corrupt or truncated",
            timings_us.len(),
            items.len()
        ));
    }
    Ok(ShardFragment { experiment, scale, seed, topo, traffic, shard, timings_us, items })
}

/// Parses [`timing_file_to_json`] output.
pub(super) fn timing_file_from_json(text: &str) -> Result<TimingFile, String> {
    let v = parse_document(text)?;
    let scale: Scale = v.get("scale")?.as_str()?.parse().map_err(|e| format!("{e}"))?;
    let seed = v.get("seed")?.as_u64()?;
    let topo = match v.get("topo") {
        Ok(Value::Null) | Err(_) => None,
        Ok(value) => Some(value.as_str()?.to_string()),
    };
    let traffic = match v.get("traffic") {
        Ok(Value::Null) | Err(_) => None,
        Ok(value) => Some(value.as_str()?.to_string()),
    };
    let mut tf = TimingFile::new(scale, seed, topo, traffic);
    for entry in v.get("experiments")?.as_arr()? {
        let pair = entry.as_arr()?;
        if pair.len() != 2 {
            return Err("timing entry is not a [name, timings] pair".to_string());
        }
        let timings = pair[1].as_arr()?.iter().map(Value::as_u64).collect::<Result<Vec<_>, _>>()?;
        tf.record(pair[0].as_str()?.to_string(), timings);
    }
    Ok(tf)
}
