//! Dependency-free JSON encoding/decoding for [`Dataset`] and
//! [`ShardFragment`] (the build environment has no serde; see DESIGN.md).
//!
//! Numbers are written with Rust's shortest round-trip `Display` formatting
//! and parsed with `str::parse::<f64>`, so every finite value — and every
//! `u64` seed, which is kept as a raw token rather than routed through
//! `f64` — survives a write/parse cycle exactly. That exactness is what lets
//! `figures merge` reproduce a single-process run byte-for-byte.

use super::{Dataset, ItemResult, Row, Series, Shard, ShardFragment, TimingFile};
use crate::figures::Scale;
use crate::json::{escape_into, num_into, parse_document, Value};

// ---------------------------------------------------------------- encoding

fn dataset_into(out: &mut String, ds: &Dataset) {
    out.push_str("{\"meta\":[");
    for (i, (k, v)) in ds.meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        escape_into(out, k);
        out.push(',');
        escape_into(out, v);
        out.push(']');
    }
    out.push_str("],\"series\":[");
    for (i, s) in ds.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        escape_into(out, &s.label);
        out.push_str(",\"points\":[");
        for (j, &(x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            num_into(out, x);
            out.push(',');
            num_into(out, y);
            out.push(']');
        }
        out.push_str("]}");
    }
    out.push_str("],\"columns\":[");
    for (i, c) in ds.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, c);
    }
    out.push_str("],\"rows\":[");
    for (i, r) in ds.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        escape_into(out, &r.label);
        out.push_str(",\"values\":[");
        for (j, &v) in r.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            num_into(out, v);
        }
        out.push_str("]}");
    }
    out.push_str("],\"cells\":[");
    for (i, c) in ds.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_into(out, &c.name);
        out.push_str(",\"value\":");
        num_into(out, c.value);
        out.push('}');
    }
    out.push_str("]}");
}

/// Renders a dataset as a JSON object.
pub(super) fn dataset_to_json(ds: &Dataset) -> String {
    let mut out = String::new();
    dataset_into(&mut out, ds);
    out
}

/// Renders a shard fragment as one line of JSON.
pub(super) fn fragment_to_json(frag: &ShardFragment) -> String {
    let mut out = String::new();
    out.push_str("{\"experiment\":");
    escape_into(&mut out, &frag.experiment);
    out.push_str(&format!(",\"scale\":\"{}\",\"seed\":{},\"topo\":", frag.scale, frag.seed));
    match &frag.topo {
        Some(spec) => escape_into(&mut out, spec),
        None => out.push_str("null"),
    }
    out.push_str(",\"traffic\":");
    match &frag.traffic {
        Some(spec) => escape_into(&mut out, spec),
        None => out.push_str("null"),
    }
    out.push_str(&format!(
        ",\"shard\":[{},{}],\"timings_us\":[",
        frag.shard.index, frag.shard.count
    ));
    for (i, t) in frag.timings_us.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{t}"));
    }
    out.push_str("],\"items\":[");
    for (i, item) in frag.items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"index\":{},\"data\":", item.index));
        dataset_into(&mut out, &item.data);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a timing file (`figures launch`'s `timings.json`) as JSON.
pub(super) fn timing_file_to_json(tf: &TimingFile) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"scale\":\"{}\",\"seed\":{},\"topo\":", tf.scale, tf.seed));
    match &tf.topo {
        Some(spec) => escape_into(&mut out, spec),
        None => out.push_str("null"),
    }
    out.push_str(",\"traffic\":");
    match &tf.traffic {
        Some(spec) => escape_into(&mut out, spec),
        None => out.push_str("null"),
    }
    out.push_str(",\"experiments\":[");
    for (i, (name, timings)) in tf.experiments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        escape_into(&mut out, name);
        out.push_str(",[");
        for (j, t) in timings.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{t}"));
        }
        out.push_str("]]");
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------- decoding

fn dataset_from_value(v: &Value) -> Result<Dataset, String> {
    let mut ds = Dataset::new();
    // `meta` is optional so fragments written before it existed still parse.
    if let Ok(meta) = v.get("meta") {
        for pair in meta.as_arr()? {
            let kv = pair.as_arr()?;
            if kv.len() != 2 {
                return Err("meta entry is not a [key, value] pair".to_string());
            }
            ds.push_meta(kv[0].as_str()?.to_string(), kv[1].as_str()?.to_string());
        }
    }
    for s in v.get("series")?.as_arr()? {
        let label = s.get("label")?.as_str()?.to_string();
        let mut points = Vec::new();
        for p in s.get("points")?.as_arr()? {
            let xy = p.as_arr()?;
            if xy.len() != 2 {
                return Err("series point is not an [x, y] pair".to_string());
            }
            points.push((xy[0].as_f64()?, xy[1].as_f64()?));
        }
        ds.series.push(Series::new(label, points));
    }
    for c in v.get("columns")?.as_arr()? {
        ds.columns.push(c.as_str()?.to_string());
    }
    for r in v.get("rows")?.as_arr()? {
        let label = r.get("label")?.as_str()?.to_string();
        let values =
            r.get("values")?.as_arr()?.iter().map(Value::as_f64).collect::<Result<_, _>>()?;
        ds.rows.push(Row { label, values });
    }
    for c in v.get("cells")?.as_arr()? {
        ds.push_cell(c.get("name")?.as_str()?.to_string(), c.get("value")?.as_f64()?);
    }
    Ok(ds)
}

/// Parses [`dataset_to_json`] output.
pub(super) fn dataset_from_json(text: &str) -> Result<Dataset, String> {
    dataset_from_value(&parse_document(text)?)
}

/// Parses [`fragment_to_json`] output.
pub(super) fn fragment_from_json(text: &str) -> Result<ShardFragment, String> {
    let v = parse_document(text)?;
    let experiment = v.get("experiment")?.as_str()?.to_string();
    let scale: Scale = v.get("scale")?.as_str()?.parse().map_err(|e| format!("{e}"))?;
    let seed = v.get("seed")?.as_u64()?;
    // `topo` and `traffic` are optional so fragments written before they
    // existed still parse.
    let topo = match v.get("topo") {
        Ok(Value::Null) | Err(_) => None,
        Ok(value) => Some(value.as_str()?.to_string()),
    };
    let traffic = match v.get("traffic") {
        Ok(Value::Null) | Err(_) => None,
        Ok(value) => Some(value.as_str()?.to_string()),
    };
    let shard = v.get("shard")?.as_arr()?;
    if shard.len() != 2 {
        return Err("'shard' is not a [K, N] pair".to_string());
    }
    let shard = Shard::new(shard[0].as_usize()?, shard[1].as_usize()?)?;
    // `timings_us` is optional so fragments written before it existed still
    // parse; when present it must pair up with the items exactly.
    let timings_us: Vec<u64> = match v.get("timings_us") {
        Ok(arr) => arr.as_arr()?.iter().map(Value::as_u64).collect::<Result<_, _>>()?,
        Err(_) => Vec::new(),
    };
    let mut items = Vec::new();
    for item in v.get("items")?.as_arr()? {
        items.push(ItemResult::new(
            item.get("index")?.as_usize()?,
            dataset_from_value(item.get("data")?)?,
        ));
    }
    if !timings_us.is_empty() && timings_us.len() != items.len() {
        return Err(format!(
            "fragment carries {} timings for {} items; the file is corrupt or truncated",
            timings_us.len(),
            items.len()
        ));
    }
    Ok(ShardFragment { experiment, scale, seed, topo, traffic, shard, timings_us, items })
}

/// Parses [`timing_file_to_json`] output.
pub(super) fn timing_file_from_json(text: &str) -> Result<TimingFile, String> {
    let v = parse_document(text)?;
    let scale: Scale = v.get("scale")?.as_str()?.parse().map_err(|e| format!("{e}"))?;
    let seed = v.get("seed")?.as_u64()?;
    let topo = match v.get("topo") {
        Ok(Value::Null) | Err(_) => None,
        Ok(value) => Some(value.as_str()?.to_string()),
    };
    let traffic = match v.get("traffic") {
        Ok(Value::Null) | Err(_) => None,
        Ok(value) => Some(value.as_str()?.to_string()),
    };
    let mut tf = TimingFile::new(scale, seed, topo, traffic);
    for entry in v.get("experiments")?.as_arr()? {
        let pair = entry.as_arr()?;
        if pair.len() != 2 {
            return Err("timing entry is not a [name, timings] pair".to_string());
        }
        let timings = pair[1].as_arr()?.iter().map(Value::as_u64).collect::<Result<Vec<_>, _>>()?;
        tf.record(pair[0].as_str()?.to_string(), timings);
    }
    Ok(tf)
}
