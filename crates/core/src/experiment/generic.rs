//! Topology-generic metric sweeps: throughput, path length, bisection and
//! failure resilience for *any* [`TopoSpec`], not just the paper's pairings.
//!
//! These four experiments are the consumers of the `--topo <spec>` override
//! ([`RunCtx::with_topo`]): without an override they sweep a default
//! Jellyfish axis sized by [`Scale`]; with one they evaluate the given spec
//! instead — `figures run throughput_vs_size --topo leafspine:leaf=6,spine=3,servers=4`
//! points the whole pipeline at a leaf-spine Clos with zero code changes.
//! Every dataset records the spec strings it evaluated in its metadata, so
//! the provenance travels with the numbers through shards and merges.

use super::catalog::{jellyfish_spec, sweep_opts};
use super::{Dataset, Experiment, ItemResult, RunCtx, Snapshot, WorkItem};
use crate::figures::Scale;
use crate::service::{ChurnEvent, Query, Reply};
use jellyfish_flow::bisection::min_bisection_heuristic;
use jellyfish_flow::throughput::normalized_throughput;
use jellyfish_topology::properties::path_length_stats;
use jellyfish_topology::spec::ScenarioTransform;
use jellyfish_topology::TopoSpec;
use jellyfish_traffic::ServerMap;
use std::sync::Arc;

/// Records the `--traffic` override in the dataset's provenance metadata.
/// Only overridden runs get the `traffic` key, so default-workload outputs
/// stay byte-identical to builds that predate the override.
pub(crate) fn record_traffic_meta(ctx: &RunCtx, ds: &mut Dataset) {
    if let Some(spec) = ctx.traffic() {
        ds.push_meta("traffic", spec.to_string());
    }
}

/// The default topology axis: Jellyfish instances of increasing size at the
/// run's scale. Replaced wholesale by the `--topo` override.
fn default_axis(ctx: &RunCtx) -> Vec<(String, TopoSpec)> {
    if let Some(spec) = ctx.topo() {
        return vec![(spec.to_string(), spec.clone())];
    }
    let (ports, degree) = match ctx.scale {
        Scale::Paper => (12, 9),
        Scale::Laptop => (10, 7),
        Scale::Tiny => (8, 5),
    };
    let sizes: &[usize] = match ctx.scale {
        Scale::Paper => &[100, 200, 400, 800],
        Scale::Laptop => &[40, 80, 160],
        Scale::Tiny => &[16, 24],
    };
    sizes.iter().map(|&n| (format!("n={n}"), jellyfish_spec(n, ports, degree))).collect()
}

fn axis_items(ctx: &RunCtx) -> Vec<WorkItem> {
    default_axis(ctx)
        .into_iter()
        .enumerate()
        .map(|(i, (label, spec))| WorkItem::with_spec(i, label, spec))
        .collect()
}

/// Resolves a generic work item's spec, recording it in the metadata.
fn resolve(ctx: &RunCtx, item: &WorkItem, ds: &mut Dataset) -> Arc<Snapshot> {
    let spec = item.spec();
    let snap = ctx
        .spec_snapshot(spec, ctx.seed)
        .unwrap_or_else(|e| panic!("{}: cannot build '{spec}': {e}", item.label));
    ds.push_meta(format!("topo:{}", item.label), spec.to_string());
    snap
}

// ------------------------------------------------------- throughput_vs_size

/// Normalized random-permutation throughput versus topology size, for any
/// spec.
pub struct ThroughputVsSize;

impl Experiment for ThroughputVsSize {
    fn name(&self) -> &'static str {
        "throughput_vs_size"
    }

    fn describe(&self) -> &'static str {
        "Normalized throughput vs size for any --topo spec (generic sweep)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn supports_traffic_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        axis_items(ctx)
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, &mut ds);
        record_traffic_meta(ctx, &mut ds);
        let servers = ServerMap::new(&snap.topology);
        let tm = ctx.traffic_matrix(&servers, ctx.seed ^ item.index as u64);
        let r = normalized_throughput(&snap.topology, &servers, &tm, sweep_opts());
        ds.push_point("Normalized throughput", snap.topology.total_servers() as f64, r.normalized);
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------- path_length

/// Column headers of the `path_length` table.
pub(crate) const PATH_LENGTH_COLUMNS: [&str; 5] =
    ["topology", "switches", "servers", "mean_path_length", "diameter"];

/// Switch-to-switch path-length statistics for any spec.
pub struct PathLength;

impl Experiment for PathLength {
    fn name(&self) -> &'static str {
        "path_length"
    }

    fn describe(&self) -> &'static str {
        "Mean path length and diameter for any --topo spec (generic sweep)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        axis_items(ctx)
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, &mut ds);
        let stats = path_length_stats(snap.topology.graph());
        ds.set_columns(&PATH_LENGTH_COLUMNS);
        ds.push_row(
            item.label.clone(),
            vec![
                snap.topology.num_switches() as f64,
                snap.topology.total_servers() as f64,
                stats.mean,
                stats.diameter as f64,
            ],
        );
        ItemResult::new(item.index, ds)
    }
}

// --------------------------------------------------------------- bisection

/// Column headers of the `bisection` table.
pub(crate) const BISECTION_COLUMNS: [&str; 5] =
    ["topology", "switches", "servers", "crossing_links", "normalized_bisection"];

/// Kernighan-Lin heuristic minimum-bisection bandwidth for any spec.
pub struct Bisection;

impl Experiment for Bisection {
    fn name(&self) -> &'static str {
        "bisection"
    }

    fn describe(&self) -> &'static str {
        "KL heuristic bisection bandwidth for any --topo spec (generic sweep)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        axis_items(ctx)
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, &mut ds);
        let restarts = ctx.scale.pick(8, 4, 2);
        let cut = min_bisection_heuristic(&snap.topology, restarts, ctx.seed ^ item.index as u64);
        ds.set_columns(&BISECTION_COLUMNS);
        ds.push_row(
            item.label.clone(),
            vec![
                snap.topology.num_switches() as f64,
                snap.topology.total_servers() as f64,
                cut.crossing_links as f64,
                cut.normalized,
            ],
        );
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------------ failure_sweep

/// The failed-link fractions the generic sweep evaluates per scale.
fn failure_fractions(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Paper => &[0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
        Scale::Laptop => &[0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
        Scale::Tiny => &[0.0, 0.10, 0.20],
    }
}

/// The base topology the failure transforms chain onto: the override, or a
/// scale-sized default Jellyfish.
fn failure_base(ctx: &RunCtx) -> TopoSpec {
    if let Some(spec) = ctx.topo() {
        return spec.clone();
    }
    match ctx.scale {
        Scale::Paper => jellyfish_spec(160, 12, 9),
        Scale::Laptop => jellyfish_spec(60, 10, 7),
        Scale::Tiny => jellyfish_spec(20, 8, 5),
    }
}

/// Normalized throughput versus fraction of failed links, for any spec: the
/// sweep is the base spec with a `+fail_links=f` transform chained on per
/// item.
pub struct FailureSweep;

impl Experiment for FailureSweep {
    fn name(&self) -> &'static str {
        "failure_sweep"
    }

    fn describe(&self) -> &'static str {
        "Throughput vs failed-link fraction for any --topo spec (generic sweep)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn supports_traffic_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        let base = failure_base(ctx);
        failure_fractions(ctx.scale)
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                WorkItem::with_spec(
                    i,
                    format!("fail_links={f}"),
                    base.clone().with_transform(ScenarioTransform::FailLinks(f)),
                )
            })
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let f = failure_fractions(ctx.scale)[item.index];
        let mut ds = Dataset::new();
        let spec = item.spec();
        // The sweep's inner loop runs on the live-session API: the item's
        // `+fail_links=f` transform becomes a churn event applied to the
        // memoized base, and the measurement a throughput query. Both paths
        // call the same `ScenarioTransform` with the same seed on the same
        // cached base, so the output is byte-identical to the snapshot path
        // this replaced.
        let mut session = ctx
            .session(spec, ctx.seed)
            .unwrap_or_else(|e| panic!("{}: cannot build '{spec}': {e}", item.label))
            .with_throughput_options(sweep_opts());
        ds.push_meta(format!("topo:{}", item.label), spec.to_string());
        record_traffic_meta(ctx, &mut ds);
        session
            .apply(&ChurnEvent::FailLinks { fraction: f })
            .unwrap_or_else(|e| panic!("{}: churn '{spec}' failed: {e}", item.label));
        let reply = session
            .query(&Query::Throughput { tseed: None })
            .unwrap_or_else(|e| panic!("{}: throughput on '{spec}' failed: {e}", item.label));
        let Reply::Throughput { result } = reply else {
            unreachable!("throughput query answers with a throughput reply")
        };
        ds.push_point("Normalized throughput", f, result.normalized);
        ItemResult::new(item.index, ds)
    }
}
