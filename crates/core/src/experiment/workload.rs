//! Workload-generic experiments: the consumers of the `--traffic <spec>`
//! override ([`RunCtx::with_traffic`]), mirroring how [`super::generic`]
//! consumes `--topo`.
//!
//! Each experiment fixes one base fabric (a scale-sized Jellyfish, or the
//! `--topo` override) and sweeps a *workload* axis across it: registered
//! traffic patterns (`throughput_vs_workload`), Zipf skew exponents
//! (`fairness_under_skew`), or incast fan-in degrees (`incast_degradation`).
//! A `--traffic` override replaces the whole axis with the given spec, so
//! any registered workload can be pointed at any registered fabric with no
//! code changes. Work items carry their [`TrafficSpec`] the same way
//! spec-driven topology items carry their [`TopoSpec`], and every dataset
//! records both specs in its provenance metadata.
//!
//! Workloads are evaluated through the lazy [`FlowStream`] path
//! (`jellyfish_traffic::stream`): flows are aggregated or turned into
//! connections as they are generated, never materialized as a whole.

use super::catalog::{jellyfish_spec, sweep_opts};
use super::{Dataset, Experiment, ItemResult, RunCtx, Snapshot, WorkItem};
use crate::figures::Scale;
use crate::metrics::jain_fairness_index;
use jellyfish_flow::throughput::normalized_throughput_stream;
use jellyfish_sim::fluid::max_min_fair_allocation;
use jellyfish_sim::routing::{PathPolicy, TransportPolicy};
use jellyfish_sim::workload::build_connections_stream;
use jellyfish_topology::TopoSpec;
use jellyfish_traffic::{FlowStream, ServerMap, TrafficSpec};
use std::sync::Arc;

/// The base fabric the workload axes run against: the `--topo` override, or
/// a scale-sized default Jellyfish.
fn workload_base(ctx: &RunCtx) -> TopoSpec {
    if let Some(spec) = ctx.topo() {
        return spec.clone();
    }
    match ctx.scale {
        Scale::Paper => jellyfish_spec(100, 12, 9),
        Scale::Laptop => jellyfish_spec(40, 10, 7),
        Scale::Tiny => jellyfish_spec(16, 8, 5),
    }
}

/// The workload axis: the `--traffic` override collapses the sweep to that
/// single spec; otherwise the experiment's defaults (which must parse — they
/// are registered strings).
fn workload_axis(ctx: &RunCtx, defaults: &[&str]) -> Vec<TrafficSpec> {
    if let Some(spec) = ctx.traffic() {
        return vec![spec.clone()];
    }
    defaults
        .iter()
        .map(|s| s.parse().unwrap_or_else(|e| panic!("default workload '{s}': {e}")))
        .collect()
}

/// One work item per axis workload, each carrying the shared base topology
/// and its own traffic spec.
fn workload_items(ctx: &RunCtx, defaults: &[&str]) -> Vec<WorkItem> {
    let base = workload_base(ctx);
    workload_axis(ctx, defaults)
        .into_iter()
        .enumerate()
        .map(|(i, tspec)| {
            WorkItem::with_spec(i, tspec.to_string(), base.clone()).with_traffic(tspec)
        })
        .collect()
}

/// Resolves a workload item: the memoized base snapshot, its server map,
/// and the item's flow stream (seeded by `ctx.seed ^ index`), with both
/// specs recorded in the dataset's provenance metadata.
fn resolve(
    ctx: &RunCtx,
    item: &WorkItem,
    ds: &mut Dataset,
) -> (Arc<Snapshot>, ServerMap, FlowStream) {
    let spec = item.spec();
    let snap = ctx
        .spec_snapshot(spec, ctx.seed)
        .unwrap_or_else(|e| panic!("{}: cannot build '{spec}': {e}", item.label));
    ds.push_meta("topo", spec.to_string());
    let tspec = item.traffic();
    ds.push_meta(format!("traffic:{}", item.label), tspec.to_string());
    let servers = ServerMap::new(&snap.topology);
    let stream = tspec
        .stream(&servers, ctx.seed ^ item.index as u64)
        .unwrap_or_else(|e| panic!("workload '{tspec}' does not build on '{spec}': {e}"));
    (snap, servers, stream)
}

/// Column headers shared by the stream-throughput tables.
pub(crate) const WORKLOAD_THROUGHPUT_COLUMNS: [&str; 4] =
    ["workload", "flows", "commodities", "normalized_throughput"];

/// The shared stream-throughput row: aggregate the item's stream to switch
/// demands (lazily), solve, report.
fn throughput_row(ctx: &RunCtx, item: &WorkItem) -> ItemResult {
    let mut ds = Dataset::new();
    let (snap, servers, stream) = resolve(ctx, item, &mut ds);
    let flows = stream.exact_len().expect("registered workload streams know their size") as f64;
    let r = normalized_throughput_stream(&snap.topology, &servers, stream, sweep_opts());
    ds.set_columns(&WORKLOAD_THROUGHPUT_COLUMNS);
    ds.push_row(item.label.clone(), vec![flows, r.commodities as f64, r.normalized]);
    ItemResult::new(item.index, ds)
}

// -------------------------------------------------- throughput_vs_workload

/// The default workload axis of [`ThroughputVsWorkload`].
const THROUGHPUT_WORKLOADS: [&str; 5] =
    ["permutation", "stride:k=4", "all2all", "hotspot:fraction=0.25", "zipf:s=1.2"];

/// Normalized throughput of one fabric across the registered workload
/// patterns: how much the paper's permutation-only evaluation flatters (or
/// understates) a topology under skewed and structured load.
pub struct ThroughputVsWorkload;

impl Experiment for ThroughputVsWorkload {
    fn name(&self) -> &'static str {
        "throughput_vs_workload"
    }

    fn describe(&self) -> &'static str {
        "Normalized throughput across workload patterns (generic, --traffic)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn supports_traffic_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        workload_items(ctx, &THROUGHPUT_WORKLOADS)
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        throughput_row(ctx, item)
    }
}

// ----------------------------------------------------- fairness_under_skew

/// The Zipf skew exponents [`FairnessUnderSkew`] sweeps per scale.
fn skew_axis(scale: Scale) -> &'static [&'static str] {
    match scale {
        Scale::Paper => {
            &["zipf:s=0.25", "zipf:s=0.5", "zipf:s=1", "zipf:s=1.5", "zipf:s=2", "zipf:s=3"]
        }
        Scale::Laptop => &["zipf:s=0.5", "zipf:s=1", "zipf:s=1.5", "zipf:s=2"],
        Scale::Tiny => &["zipf:s=0.5", "zipf:s=1.2", "zipf:s=2"],
    }
}

/// Column headers of the `fairness_under_skew` table.
pub(crate) const FAIRNESS_COLUMNS: [&str; 4] =
    ["workload", "flows", "jain_index", "mean_throughput"];

/// Per-connection fairness (Jain's index over the max-min fluid allocation)
/// as destination skew grows: rack-level Zipf workloads concentrate load on
/// few ToRs, and the fluid allocation shows who starves.
pub struct FairnessUnderSkew;

impl Experiment for FairnessUnderSkew {
    fn name(&self) -> &'static str {
        "fairness_under_skew"
    }

    fn describe(&self) -> &'static str {
        "Jain fairness of max-min allocations vs workload skew (--traffic)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn supports_traffic_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        workload_items(ctx, skew_axis(ctx.scale))
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let mut ds = Dataset::new();
        let (snap, servers, stream) = resolve(ctx, item, &mut ds);
        let conns = build_connections_stream(
            &snap.csr,
            &servers,
            stream,
            PathPolicy::ksp8(),
            TransportPolicy::Mptcp { subflows: 8 },
            ctx.seed ^ item.index as u64,
        );
        let report = max_min_fair_allocation(&conns);
        let jain = jain_fairness_index(&report.throughputs);
        ds.set_columns(&FAIRNESS_COLUMNS);
        ds.push_row(item.label.clone(), vec![conns.len() as f64, jain, report.mean_throughput()]);
        ItemResult::new(item.index, ds)
    }
}

// ------------------------------------------------------ incast_degradation

/// The incast fan-in degrees [`IncastDegradation`] sweeps per scale (all
/// well under the smallest default fabric's server count).
fn incast_axis(scale: Scale) -> &'static [&'static str] {
    match scale {
        Scale::Paper => &[
            "incast:fanin=2,targets=4",
            "incast:fanin=8,targets=4",
            "incast:fanin=32,targets=4",
            "incast:fanin=64,targets=4",
        ],
        Scale::Laptop => &[
            "incast:fanin=2,targets=4",
            "incast:fanin=4,targets=4",
            "incast:fanin=8,targets=4",
            "incast:fanin=16,targets=4",
        ],
        Scale::Tiny => {
            &["incast:fanin=2,targets=4", "incast:fanin=4,targets=4", "incast:fanin=8,targets=4"]
        }
    }
}

/// Normalized throughput as incast fan-in grows: many-to-one traffic
/// concentrates demand on single ToR downlinks, the regime where fabric-side
/// capacity stops helping.
pub struct IncastDegradation;

impl Experiment for IncastDegradation {
    fn name(&self) -> &'static str {
        "incast_degradation"
    }

    fn describe(&self) -> &'static str {
        "Normalized throughput vs incast fan-in (generic, --traffic)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn supports_traffic_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        workload_items(ctx, incast_axis(ctx.scale))
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        throughput_row(ctx, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::find;

    #[test]
    fn workload_axis_collapses_under_an_override() {
        let ctx = RunCtx::new(Scale::Tiny, 7);
        let exp = find("throughput_vs_workload").unwrap();
        assert_eq!(exp.work_items(&ctx).len(), THROUGHPUT_WORKLOADS.len());
        let ctx = ctx.with_traffic("stride:k=3".parse().unwrap());
        let items = exp.work_items(&ctx);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].traffic().to_string(), "stride:k=3");
    }

    #[test]
    fn throughput_vs_workload_produces_one_row_per_workload() {
        let ctx = RunCtx::new(Scale::Tiny, 7);
        let ds = find("throughput_vs_workload").unwrap().run(&ctx);
        assert_eq!(ds.rows.len(), THROUGHPUT_WORKLOADS.len());
        assert_eq!(ds.columns, WORKLOAD_THROUGHPUT_COLUMNS);
        for row in &ds.rows {
            assert!(row.values[0] > 0.0, "{}: no flows", row.label);
            assert!(
                row.values[2] > 0.0 && row.values[2] <= 1.0 + 1e-9,
                "{}: throughput {}",
                row.label,
                row.values[2]
            );
        }
        // The permutation row is present and labelled by its spec string.
        assert!(ds.rows.iter().any(|r| r.label == "permutation"));
    }

    #[test]
    fn fairness_degrades_with_skew() {
        let ctx = RunCtx::new(Scale::Tiny, 7);
        let ds = find("fairness_under_skew").unwrap().run(&ctx);
        assert_eq!(ds.rows.len(), skew_axis(Scale::Tiny).len());
        for row in &ds.rows {
            let jain = row.values[1];
            assert!(jain > 0.0 && jain <= 1.0 + 1e-9, "{}: jain {jain}", row.label);
        }
        // Heavier skew cannot be fairer than the lightest by a wide margin.
        let first = ds.rows.first().unwrap().values[1];
        let last = ds.rows.last().unwrap().values[1];
        assert!(last <= first + 0.05, "jain rose with skew: {first} -> {last}");
    }

    #[test]
    fn incast_throughput_is_monotone_non_increasing_in_fanin() {
        let ctx = RunCtx::new(Scale::Tiny, 7);
        let ds = find("incast_degradation").unwrap().run(&ctx);
        let tputs: Vec<f64> = ds.rows.iter().map(|r| r.values[2]).collect();
        assert_eq!(tputs.len(), incast_axis(Scale::Tiny).len());
        for pair in tputs.windows(2) {
            assert!(pair[1] <= pair[0] + 0.05, "throughput rose with fan-in: {tputs:?}");
        }
    }
}
