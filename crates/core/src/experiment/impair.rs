//! Graceful-degradation experiments: how the paper's topologies hold up on
//! *impaired* fabrics (loss, burst loss, jitter, reordering, duplication),
//! driven by the `+impair=` scenario transform of the spec grammar.
//!
//! Three spec-generic experiments join the registry here:
//!
//! * [`ThroughputVsLoss`] — packet-level throughput versus i.i.d. wire-loss
//!   probability, Jellyfish (8-KSP) against a same-server-count leaf-spine
//!   (ECMP), both under MPTCP.
//! * [`LatencyHistogramExp`] — the distribution of Karn-filtered RTT
//!   samples on an ideal versus a jittery fabric, as a
//!   [`crate::metrics::LatencyHistogram`] series per topology.
//! * [`ImpairedFailureSweep`] — the `failure_sweep` axis rerun on a lossy,
//!   jittery fabric, with an uncoupled 8-flow TCP series alongside MPTCP to
//!   show LIA's latency-aware window coupling rescuing throughput when
//!   paths jitter.
//!
//! Every work item's spec carries its full impairment chain, so provenance
//! (`# topo:` metadata), sharding and `figures launch` merges treat
//! impaired runs exactly like any other spec-driven sweep. Impairment RNG
//! seeds derive from `(ctx.seed, impair config)` via
//! [`ScenarioTransform::derived_seed`] — pure functions of the fragment
//! metadata, hence bit-reproducible across shards and workers.
//!
//! With `--topo <spec>`, the override replaces the default topology pair;
//! an `+impair=` chain on the override seeds each experiment's impairment
//! axis (e.g. `throughput_vs_loss` keeps the override's jitter while
//! sweeping its `loss` field).

use super::catalog::jellyfish_spec;
use super::{Dataset, Experiment, ItemResult, RunCtx, Snapshot, WorkItem};
use crate::figures::Scale;
use crate::metrics::LatencyHistogram;
use crate::service::ChurnEvent;
use jellyfish_sim::net::{LinkParams, Network};
use jellyfish_sim::{
    build_connections, PathPolicy, SimConfig, SimReport, Simulator, TransportPolicy,
};
use jellyfish_topology::spec::{ImpairConfig, ScenarioTransform};
use jellyfish_topology::{CsrGraph, TopoSpec, Topology};
use jellyfish_traffic::{ServerMap, TrafficMatrix};
use std::sync::Arc;

/// Same-server-count leaf-spine counterpart of the scale's default
/// Jellyfish (60 / 180 / 480 servers at tiny / laptop / paper).
fn leafspine_spec(leaves: usize, spines: usize, servers: usize) -> TopoSpec {
    TopoSpec::new("leafspine")
        .with_param("leaf", leaves)
        .with_param("spine", spines)
        .with_param("servers", servers)
}

/// The default topology pair per scale, or the `--topo` override alone.
fn impair_bases(ctx: &RunCtx) -> Vec<(String, TopoSpec)> {
    if let Some(spec) = ctx.topo() {
        return vec![(spec.to_string(), spec.clone())];
    }
    let (jf, ls) = match ctx.scale {
        Scale::Paper => (jellyfish_spec(160, 12, 9), leafspine_spec(40, 12, 12)),
        Scale::Laptop => (jellyfish_spec(60, 10, 7), leafspine_spec(20, 10, 9)),
        Scale::Tiny => (jellyfish_spec(20, 8, 5), leafspine_spec(10, 5, 6)),
    };
    vec![("jellyfish".into(), jf), ("leafspine".into(), ls)]
}

/// Path diversity policy matching the paper's pairings: 8 shortest paths on
/// random graphs, ECMP on Clos fabrics.
fn policy_for(spec: &TopoSpec) -> PathPolicy {
    if spec.generator() == "jellyfish" {
        PathPolicy::ksp8()
    } else {
        PathPolicy::ecmp8()
    }
}

/// Packet-sim durations (the Table 1 settings).
fn sim_duration(scale: Scale) -> f64 {
    match scale {
        Scale::Paper => 20.0,
        Scale::Laptop => 8.0,
        Scale::Tiny => 4.0,
    }
}

/// Runs the packet engine on a resolved topology, attaching the item
/// spec's impairment (if any) with a seed derived exactly like every other
/// transform seed. Pure in `(topology, spec, transport, seeds, duration)`;
/// takes the topology and its CSR directly so both snapshot-backed and
/// live-session callers can feed it.
fn simulate(
    topo: &Topology,
    csr: &CsrGraph,
    spec: &TopoSpec,
    transport: TransportPolicy,
    base_seed: u64,
    traffic_seed: u64,
    duration: f64,
) -> SimReport {
    let servers = ServerMap::new(topo);
    let tm = TrafficMatrix::random_permutation(&servers, traffic_seed);
    let conns = build_connections(csr, &servers, &tm, policy_for(spec), transport, traffic_seed);
    let mut net = Network::build(csr, &servers, LinkParams::default());
    if let Some(cfg) = spec.impairment() {
        net = net.with_impairment(cfg, ScenarioTransform::Impair(cfg).derived_seed(base_seed));
    }
    let config =
        SimConfig { duration, warmup: duration * 0.25, seed: traffic_seed, ..Default::default() };
    Simulator::new(net, conns, config).run()
}

/// Resolves an item's spec into a snapshot, recording provenance.
fn resolve(ctx: &RunCtx, item: &WorkItem, ds: &mut Dataset) -> Arc<Snapshot> {
    let spec = item.spec();
    let snap = ctx
        .spec_snapshot(spec, ctx.seed)
        .unwrap_or_else(|e| panic!("{}: cannot build '{spec}': {e}", item.label));
    ds.push_meta(format!("topo:{}", item.label), spec.to_string());
    snap
}

// -------------------------------------------------------- throughput_vs_loss

/// The wire-loss axis per scale.
fn loss_fractions(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Paper => &[0.0, 0.002, 0.005, 0.01, 0.02, 0.05],
        Scale::Laptop => &[0.0, 0.005, 0.01, 0.02, 0.05],
        Scale::Tiny => &[0.0, 0.01, 0.03],
    }
}

/// MPTCP throughput versus i.i.d. wire-loss probability, per topology.
pub struct ThroughputVsLoss;

impl ThroughputVsLoss {
    fn items(ctx: &RunCtx) -> Vec<(String, String, TopoSpec)> {
        let mut out = Vec::new();
        for (base_label, base) in impair_bases(ctx) {
            let seed_cfg = base.impairment().unwrap_or_default();
            for &loss in loss_fractions(ctx.scale) {
                let cfg = ImpairConfig { loss, ..seed_cfg };
                let spec = base.without_impairment().with_transform(ScenarioTransform::Impair(cfg));
                out.push((base_label.clone(), format!("{base_label} loss={loss}"), spec));
            }
        }
        out
    }
}

impl Experiment for ThroughputVsLoss {
    fn name(&self) -> &'static str {
        "throughput_vs_loss"
    }

    fn describe(&self) -> &'static str {
        "MPTCP throughput vs wire-loss probability, jellyfish vs leaf-spine (impaired sweep)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        Self::items(ctx)
            .into_iter()
            .enumerate()
            .map(|(i, (_, label, spec))| WorkItem::with_spec(i, label, spec))
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let (series, _, _) = &Self::items(ctx)[item.index];
        let loss = loss_fractions(ctx.scale)[item.index % loss_fractions(ctx.scale).len()];
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, &mut ds);
        let report = simulate(
            &snap.topology,
            &snap.csr,
            item.spec(),
            TransportPolicy::Mptcp { subflows: 8 },
            ctx.seed,
            ctx.seed ^ 0x1055,
            sim_duration(ctx.scale),
        );
        ds.push_point(series, loss, report.mean_throughput());
        ItemResult::new(item.index, ds)
    }
}

// -------------------------------------------------------- latency_histogram

/// Histogram shape: 50 bins of 20 ms cover RTTs up to one second; the last
/// bin absorbs the RTO-dominated tail.
const HIST_BIN_WIDTH: f64 = 0.02;
const HIST_BINS: usize = 50;

/// The jittery fabric the ideal one is compared against (unless the
/// `--topo` override carries its own `+impair=` chain).
fn default_jitter() -> ImpairConfig {
    ImpairConfig { jitter_ms: 5.0, ..Default::default() }
}

/// RTT distribution on ideal versus jittery fabrics, per topology.
pub struct LatencyHistogramExp;

impl LatencyHistogramExp {
    fn items(ctx: &RunCtx) -> Vec<(String, TopoSpec)> {
        let mut out = Vec::new();
        for (base_label, base) in impair_bases(ctx) {
            let impaired_cfg = base.impairment().unwrap_or_else(default_jitter);
            let ideal = base.without_impairment();
            out.push((format!("{base_label} ideal"), ideal.clone()));
            out.push((
                format!("{base_label} impaired"),
                ideal.with_transform(ScenarioTransform::Impair(impaired_cfg)),
            ));
        }
        out
    }
}

impl Experiment for LatencyHistogramExp {
    fn name(&self) -> &'static str {
        "latency_histogram"
    }

    fn describe(&self) -> &'static str {
        "RTT sample histogram, ideal vs jittery fabric (impaired sweep)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        Self::items(ctx)
            .into_iter()
            .enumerate()
            .map(|(i, (label, spec))| WorkItem::with_spec(i, label, spec))
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let mut ds = Dataset::new();
        let snap = resolve(ctx, item, &mut ds);
        let report = simulate(
            &snap.topology,
            &snap.csr,
            item.spec(),
            TransportPolicy::Mptcp { subflows: 8 },
            ctx.seed,
            ctx.seed ^ 0x1A7E,
            sim_duration(ctx.scale),
        );
        let hist = LatencyHistogram::from_samples(&report.rtt_samples, HIST_BIN_WIDTH, HIST_BINS);
        ds.push_meta(format!("rtt_samples:{}", item.label), hist.total.to_string());
        for i in 0..hist.counts.len() {
            ds.push_point(&item.label, hist.bin_upper(i), hist.fraction(i));
        }
        ItemResult::new(item.index, ds)
    }
}

// --------------------------------------------------- impaired_failure_sweep

/// Replicates the `failure_sweep` axis (kept in sync by a registry test).
fn failure_fractions(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Paper | Scale::Laptop => &[0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
        Scale::Tiny => &[0.0, 0.10, 0.20],
    }
}

/// The lossy, jittery fabric the failure sweep runs on (override `+impair=`
/// fields take precedence).
fn degraded_fabric(base: &TopoSpec) -> ImpairConfig {
    let defaults = ImpairConfig { loss: 0.005, jitter_ms: 5.0, ..Default::default() };
    match base.impairment() {
        Some(user) => defaults.merged(&user),
        None => defaults,
    }
}

/// `failure_sweep` on an impaired fabric, with a TCP series alongside MPTCP.
pub struct ImpairedFailureSweep;

impl ImpairedFailureSweep {
    /// `(series label, base spec, transport)` per series.
    fn series(ctx: &RunCtx) -> Vec<(String, TopoSpec, TransportPolicy)> {
        let mptcp = TransportPolicy::Mptcp { subflows: 8 };
        let tcp8 = TransportPolicy::Tcp { flows: 8 };
        if let Some(spec) = ctx.topo() {
            return vec![
                (format!("{spec} mptcp8"), spec.clone(), mptcp),
                (format!("{spec} tcp8"), spec.clone(), tcp8),
            ];
        }
        let [(_, jf), (_, ls)]: [(String, TopoSpec); 2] =
            impair_bases(ctx).try_into().expect("default bases are a pair");
        vec![
            ("jellyfish mptcp8".into(), jf.clone(), mptcp),
            ("jellyfish tcp8".into(), jf, tcp8),
            ("leafspine mptcp8".into(), ls, mptcp),
        ]
    }

    fn items(ctx: &RunCtx) -> Vec<(String, TopoSpec, TransportPolicy, f64)> {
        let mut out = Vec::new();
        for (series, base, transport) in Self::series(ctx) {
            let cfg = degraded_fabric(&base);
            for &f in failure_fractions(ctx.scale) {
                let spec = base
                    .without_impairment()
                    .with_transform(ScenarioTransform::FailLinks(f))
                    .with_transform(ScenarioTransform::Impair(cfg));
                out.push((series.clone(), spec, transport, f));
            }
        }
        out
    }
}

impl Experiment for ImpairedFailureSweep {
    fn name(&self) -> &'static str {
        "impaired_failure_sweep"
    }

    fn describe(&self) -> &'static str {
        "Throughput vs failed links on a lossy, jittery fabric; MPTCP vs TCP (impaired sweep)"
    }

    fn supports_topo_override(&self) -> bool {
        true
    }

    fn work_items(&self, ctx: &RunCtx) -> Vec<WorkItem> {
        Self::items(ctx)
            .into_iter()
            .enumerate()
            .map(|(i, (series, spec, _, f))| {
                WorkItem::with_spec(i, format!("{series} fail={f}"), spec)
            })
            .collect()
    }

    fn run_item(&self, ctx: &RunCtx, item: &WorkItem) -> ItemResult {
        let (series, _, transport, f) = Self::items(ctx)[item.index].clone();
        let mut ds = Dataset::new();
        let spec = item.spec();
        // Live-session inner loop, mirroring `failure_sweep`: the item's
        // `+fail_links=f` transform is applied as a churn event to the
        // memoized base (the `+impair=` link is a topology no-op — the
        // packet engine attaches it below), byte-identical to the snapshot
        // path this replaced.
        let mut session = ctx
            .session(spec, ctx.seed)
            .unwrap_or_else(|e| panic!("{}: cannot build '{spec}': {e}", item.label));
        ds.push_meta(format!("topo:{}", item.label), spec.to_string());
        session
            .apply(&ChurnEvent::FailLinks { fraction: f })
            .unwrap_or_else(|e| panic!("{}: churn '{spec}' failed: {e}", item.label));
        let report = simulate(
            session.topology(),
            session.csr(),
            spec,
            transport,
            ctx.seed,
            ctx.seed ^ 0xFA11,
            sim_duration(ctx.scale),
        );
        ds.push_point(&series, f, report.mean_throughput());
        ItemResult::new(item.index, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_cover_the_axes_and_carry_impairment() {
        let ctx = RunCtx::new(Scale::Tiny, 7);
        let tvl = ThroughputVsLoss.work_items(&ctx);
        assert_eq!(tvl.len(), 2 * loss_fractions(Scale::Tiny).len());
        assert!(tvl.iter().all(|i| i.spec().impairment().is_some()));
        // The swept field is the loss probability.
        assert_eq!(tvl[1].spec().impairment().unwrap().loss, 0.01);
        assert_eq!(tvl[0].spec().impairment().unwrap().loss, 0.0);

        let lh = LatencyHistogramExp.work_items(&ctx);
        assert_eq!(lh.len(), 4);
        assert!(lh[0].spec().impairment().is_none(), "even items are the ideal fabric");
        assert_eq!(lh[1].spec().impairment().unwrap().jitter_ms, 5.0);

        let ifs = ImpairedFailureSweep.work_items(&ctx);
        assert_eq!(ifs.len(), 3 * failure_fractions(Scale::Tiny).len());
        for item in &ifs {
            let cfg = item.spec().impairment().unwrap();
            assert_eq!((cfg.loss, cfg.jitter_ms), (0.005, 5.0));
        }
    }

    #[test]
    fn fractions_match_the_unimpaired_failure_sweep() {
        // impaired_failure_sweep mirrors failure_sweep's x axis so the two
        // plots are comparable point-for-point.
        use crate::experiment::find;
        for scale in [Scale::Tiny, Scale::Laptop] {
            let ctx = RunCtx::new(scale, 7);
            let plain: Vec<String> = find("failure_sweep")
                .unwrap()
                .work_items(&ctx)
                .iter()
                .map(|i| i.label.clone())
                .collect();
            let fractions: Vec<String> =
                failure_fractions(scale).iter().map(|f| format!("fail_links={f}")).collect();
            assert_eq!(plain, fractions);
        }
    }

    #[test]
    fn override_impairment_seeds_the_axes() {
        let spec: TopoSpec =
            "jellyfish:switches=16,ports=8,degree=5+impair=jitter_ms:2,queue:16".parse().unwrap();
        let ctx = RunCtx::new(Scale::Tiny, 7).with_topo(spec);
        // throughput_vs_loss keeps the override's jitter/queue on every point.
        for item in ThroughputVsLoss.work_items(&ctx) {
            let cfg = item.spec().impairment().unwrap();
            assert_eq!(cfg.jitter_ms, 2.0);
            assert_eq!(cfg.queue, Some(16));
        }
        // latency_histogram uses it as the impaired variant.
        let lh = LatencyHistogramExp.work_items(&ctx);
        assert_eq!(lh.len(), 2);
        assert_eq!(lh[1].spec().impairment().unwrap().jitter_ms, 2.0);
        // impaired_failure_sweep merges it over the degraded-fabric defaults.
        let ifs = ImpairedFailureSweep.work_items(&ctx);
        let cfg = ifs[0].spec().impairment().unwrap();
        assert_eq!(cfg.jitter_ms, 2.0, "override field wins");
        assert_eq!(cfg.loss, 0.005, "untouched defaults persist");
    }
}
